"""E14/E15 — the benchmarks behind ``BENCH_audit_pipeline.json``.

**E14 (audit pipeline).** A synthetic, mixed-density disclosure log over an
E11-style hospital registry (``n = 3`` candidate records on top of a
populated background table): query answers range from dense implication
sets to sparse SELECT outputs, and — like any real query log — popular
queries repeat heavily (Zipf-weighted sampling, ≥30% duplicate answers
guaranteed).  Three pipelines audit the same log:

* ``seed``     — the original per-event loop (compile + decide per event);
* ``serial``   — the batched engine with one worker (dedupe + verdict cache);
* ``parallel`` — the batched engine fanning decisions out to a process pool.

**E15 (serial decision path).** A margin/interval sweep over a 12-record
hypercube (``|Ω| = 4096``) under the subcube prior family: build the
Corollary 4.14 safety-margin index for one audit query, then margin-test a
batch of random disclosures.  The identical sweep runs twice — once on the
packed-bitmask :class:`~repro.core.worlds.PropertySet` kernels and once on
the ``frozenset`` reference implementation
(:mod:`~repro.possibilistic._reference`) — and the artifact records the
serial-path speedup after asserting margins and verdicts are identical.

**E17 (probabilistic hot path).** Two measurements of PR-4's perf work.
The *kernel* half times the scalar vs frontier-batched Bernstein
branch-and-bound on deep-subdivision quadratic-well tensors (minimum
``eps`` strictly inside the box — the worst case for the enclosure) across
an ``n`` sweep, recording per-box cost and the speedup per dimension; the
speedup is regime-dependent — large in the overhead-bound small-``n``
regime, bounded by memory bandwidth at ``n = 8`` — and the artifact
records the whole sweep rather than a single cherry-picked point.  The
*pool* half audits the E14 log through the forced process pool twice,
once with per-task futures (``chunk_size=1``, the pre-PR-4 dispatch) and
once with adaptive chunking, recording the dispatch telemetry
(per-task overhead, chunk sizes, EWMA task cost) and the engine's
:meth:`~repro.audit.BatchAuditEngine.pool_break_even` estimate.

**E18 (incremental re-audit).** The streaming scenario behind PR-5: the
E14 log is audited once and persisted to a :class:`~repro.audit.store.
VerdictStore`; then 5% more events arrive and the grown log is re-audited
three ways — from scratch through the serial reference loop, incrementally
with a cold (empty) store, and incrementally with the warm store loaded
from disk by a fresh process-like auditor.  The warm run must be
verdict-identical to the serial one and is expected to be ≥5x faster at
full size (only the appended tail needs decisions; everything else is a
store hit).

**E19 (verdict-store backends).** The two persistent-store backends head
to head on a production-shaped workload.  The *warm probe* half writes
100k synthetic ``(key, verdict)`` pairs through each backend, then — from
a fresh store object per repeat, so open cost is inside the timed region
exactly as it is for a cold process resuming an audit — issues the one
batched :meth:`~repro.audit.store.VerdictStoreBase.probe_many` an audit
performs and asserts every key comes back.  The JSON reference backend
must parse and decode the whole document to answer anything; the sharded
SQLite backend opens lazily and answers off the ``(key, seq)`` index, so
the acceptance bound is a ≥3x warm-probe throughput win at full size.
The *soak* half forks 4 writer processes that append disjoint key ranges
to one store and flush concurrently (WAL + busy-timeout + commit retry
on sqlite, lock-file merge-on-flush on json); a reader process must then
see exactly the union with zero ``load_failures``.

**E22 (symbolic decision backend).** ``Safe_K(A, B)`` by SAT over ``n``
presence variables vs by ``2^n`` world masks, the same bounded-support
disclosures decided under every supported possibilistic family through
both backends.  Mask timings stop at the per-family feasibility caps
(the family sweeps are ≈ ``4^n``; points beyond carry an explicit
infeasibility marker, never a fabricated number), symbolic timings
continue to ``n = 32`` — a space the mask representation cannot even
construct — with the big-``n`` subcube decision re-timed alone as the
acceptance headline (< 10 s).  Statuses are asserted identical wherever
both backends ran.

**E21/E23 (online gateway + scale-out).** A real asyncio gateway replays
a seeded Zipf trace (12k events, 120 tenants, 8 connections) end to end:
group-commit journal, cross-tenant micro-batched decisions, shared
SQLite store.  Recorded: sustained decisions/sec (best of ``repeats``
replay rounds — single-core noise; invariants asserted every round), p50
and p99 latency, honest shed accounting, and the batching counters.  The
E23 leg reruns the workload with forked shard executors and a mid-trace
executor ``kill -9``; journal replay must reconstruct every verdict
bit-identical to the offline audit.

The artifact records events/sec for each pipeline, the verdict-cache hit
rate, the measured duplicate fraction, and the speedups; every compared
pair of runs is asserted verdict-identical before anything is written.

Run ``python -m repro.perf.bench`` (or ``make bench``; ``make bench-smoke``
for a down-scaled run).
"""

from __future__ import annotations

import argparse
import math
import multiprocessing
import os
import random
import sys
import tempfile
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from .. import _bitops, _native
from ..audit import (
    AuditPolicy,
    AuditReport,
    BatchAuditEngine,
    DisclosureLog,
    OfflineAuditor,
    PriorAssumption,
    VerdictStore,
    make_decider,
    open_verdict_store,
)
from ..core.verdict import AuditVerdict
from ..core.worlds import HypercubeSpace
from ..db import (
    CandidateUniverse,
    ColumnType,
    Database,
    TableSchema,
    parse_boolean_query,
    parse_select_query,
)
from ..possibilistic import _reference
from ..probabilistic import (
    decide_nonnegative_on_box,
    decide_nonnegative_on_box_batched,
)
from ..possibilistic.families import SubcubeFamily
from ..possibilistic.intervals import FamilyIntervalOracle
from ..possibilistic.margins import SafetyMarginIndex
from ..runtime import CircuitBreaker
from . import Stopwatch, write_bench_json

DEFAULT_EVENTS = 250
DEFAULT_WORKERS = 4
DEFAULT_SEED = 7
DEFAULT_OUTPUT = "BENCH_audit_pipeline.json"

DEFAULT_SERIAL_N = 12
DEFAULT_SERIAL_CANDIDATES = 6
DEFAULT_SERIAL_DISCLOSURES = 200

DEFAULT_RESILIENCE_REPEATS = 3
DEFAULT_RESILIENCE_BUDGET = 30.0

DEFAULT_INCREMENTAL_APPEND_FRACTION = 0.05
DEFAULT_INCREMENTAL_REPEATS = 3

DEFAULT_STORE_PAIRS = 100_000
DEFAULT_STORE_REPEATS = 3
DEFAULT_STORE_WRITERS = 4
#: E19 acceptance bound: sqlite warm-probe throughput over the json
#: reference at the full 100k-pair size (advisory below full size).
STORE_WARM_TARGET_SPEEDUP = 3.0

DEFAULT_KERNEL_DIMS = (4, 5, 6, 8)
DEFAULT_KERNEL_BOXES = 1500
DEFAULT_KERNEL_REPEATS = 3

DEFAULT_GATEWAY_EVENTS = 12_000
DEFAULT_GATEWAY_TENANTS = 120
DEFAULT_GATEWAY_CONNECTIONS = 8
DEFAULT_GATEWAY_QUEUE_LIMIT = 64
DEFAULT_GATEWAY_WORKERS = 2  # E23: forked shard-executor processes
DEFAULT_GATEWAY_REPEATS = 3  # best-of rounds (single-core noise floor)

DEFAULT_SYMBOLIC_DIMS = (6, 8, 10, 16, 24, 32)
#: Largest ``n`` the mask path is timed at, per family — beyond these a
#: single point dominates the whole bench run (the ignorant family's
#: explicit interval sweep is ≈ 60 s at ``n = 10``), which is exactly the
#: scaling E22 exists to record.  Points above the cap carry an explicit
#: ``"infeasible"`` marker instead of a fabricated number.
SYMBOLIC_MASK_CAPS = {
    "possibilistic-ignorant": 8,
    "possibilistic-unrestricted": 10,
    "possibilistic-subcubes": 10,
}
#: E22 acceptance bound: the big-``n`` subcube decision (mask-infeasible)
#: must resolve within this many seconds.
SYMBOLIC_BIG_N_BUDGET = 10.0

DEFAULT_NATIVE_DIMS = (4, 6, 8)
DEFAULT_NATIVE_BOXES = 2000
DEFAULT_NATIVE_MASK_DIMS = (12, 14)
DEFAULT_NATIVE_MASK_ORIGINS = 256
DEFAULT_NATIVE_MASK_DISCLOSURES = 400
DEFAULT_NATIVE_REPEATS = 3
#: E20 acceptance bounds at the full workload sizes (advisory below them):
#: the compiled kernel over the scalar reference at the largest dimension,
#: and the word-array margin sweep over its big-int reference at n ≥ 12.
NATIVE_KERNEL_TARGET_SPEEDUP = 3.0
NATIVE_MASK_TARGET_SPEEDUP = 2.0
#: Depth of the quadratic well: the interior minimum sits this far above
#: zero, forcing the branch-and-bound to subdivide until the Bernstein
#: enclosure resolves ``eps`` — a deep-subdivision adversarial workload.
KERNEL_WELL_EPS = 1e-7

#: The E11-style audit query: is Bob's HIV diagnosis disclosed?
AUDIT_QUERY = (
    "EXISTS(SELECT * FROM diagnoses WHERE patient = 'Bob' AND disease = 'hiv')"
)


def build_registry(background_rows: int = 48) -> CandidateUniverse:
    """The E14 hospital registry: 3 candidate records over a populated table.

    The candidate set is deliberately small (the paper's Section 6 point:
    after coarse disclosures few worlds stay relevant) while the table
    itself is not — background rows make every query evaluation scan a
    realistically sized relation.
    """
    db = Database()
    db.create_table(
        TableSchema.build(
            "diagnoses", patient=ColumnType.TEXT, disease=ColumnType.TEXT
        )
    )
    diseases = ("flu", "hiv", "hepatitis", "measles")
    for i in range(background_rows):
        db.insert(
            "diagnoses", patient=f"patient{i:03d}", disease=diseases[i % 4]
        )
    candidates = [
        db.insert("diagnoses", patient="Bob", disease="hiv"),
        db.insert("diagnoses", patient="Carol", disease="hiv"),
        db.hypothetical_record("diagnoses", patient="Dana", disease="hiv"),
    ]
    return CandidateUniverse(db, candidates)


def _exists(patient: str) -> str:
    return f"EXISTS(SELECT * FROM diagnoses WHERE patient = '{patient}')"


def query_pool(universe: CandidateUniverse) -> List[Any]:
    """Mixed-density query shapes over the candidate records.

    Answer sets span the density spectrum: implications and negated counts
    compile to dense (6-world) sets, plain EXISTS to half-cubes, conjunction
    and SELECT answers to sparse (1–2 world) sets.
    """
    patients = ("Bob", "Carol", "Dana")
    texts: List[str] = []
    for p in patients:
        texts.append(_exists(p))
        texts.append(f"NOT {_exists(p)}")
    for p in patients:
        for q in patients:
            if p == q:
                continue
            texts.append(f"{_exists(p)} IMPLIES {_exists(q)}")
    for i, p in enumerate(patients):
        for q in patients[i + 1 :]:
            texts.append(f"{_exists(p)} OR {_exists(q)}")
            texts.append(f"{_exists(p)} AND {_exists(q)}")
            texts.append(f"NOT {_exists(p)} OR NOT {_exists(q)}")
    # Counts over the whole relation: thresholds around the background HIV
    # tally make the answer depend on exactly how many candidates are real.
    background_hiv = 12  # background_rows // 4 at the default size
    for k in range(background_hiv, background_hiv + 4):
        texts.append(f"COUNT(diagnoses WHERE disease = 'hiv') >= {k}")
        texts.append(f"NOT COUNT(diagnoses WHERE disease = 'hiv') >= {k}")
    # Compound audit-shaped disclosures (dense, §1.1-style).
    texts.append(
        f"({_exists('Bob')} IMPLIES {_exists('Carol')}) AND "
        f"({_exists('Dana')} IMPLIES {_exists('Bob')})"
    )
    texts.append(
        f"({_exists('Carol')} OR {_exists('Dana')}) AND "
        f"(NOT {_exists('Dana')} OR {_exists('Bob')})"
    )
    queries: List[Any] = [parse_boolean_query(text) for text in texts]
    # SELECT answers: exact projected rows, typically pinning single worlds.
    for p in patients:
        queries.append(
            parse_select_query(
                f"SELECT disease FROM diagnoses WHERE patient = '{p}'"
            )
        )
    queries.append(
        parse_select_query("SELECT patient FROM diagnoses WHERE disease = 'hiv'")
    )
    return queries


def build_mixed_density_log(
    universe: CandidateUniverse,
    n_events: int = DEFAULT_EVENTS,
    seed: int = DEFAULT_SEED,
) -> DisclosureLog:
    """A Zipf-weighted synthetic log: popular queries dominate, as in real
    workloads, guaranteeing a high duplicate-answer fraction."""
    pool = query_pool(universe)
    rnd = random.Random(seed)
    rnd.shuffle(pool)
    weights = [1.0 / rank for rank in range(1, len(pool) + 1)]
    log = DisclosureLog()
    for t, query in enumerate(rnd.choices(pool, weights=weights, k=n_events)):
        log.record(t, f"user{t % 17:02d}", query)
    return log


def duplicate_fraction(engine: BatchAuditEngine, log: DisclosureLog) -> float:
    """Fraction of events whose disclosed set repeats an earlier event's."""
    sets = engine.compile_log(log)
    return 1.0 - len({s.fingerprint() for s in sets}) / len(sets) if sets else 0.0


def _statuses(report: AuditReport) -> List[str]:
    return [finding.verdict.status.value for finding in report.findings]


# ---------------------------------------------------------------------------
# E15 — packed-mask serial decision path vs the frozenset reference
# ---------------------------------------------------------------------------


def _serial_path_workload(
    n: int, n_candidates: int, n_disclosures: int, seed: int
) -> Tuple[List[int], FrozenSet[int], List[FrozenSet[int]]]:
    """Candidates ``C``, audit query ``A`` and disclosure batch for E15.

    ``A`` is a random half of ``Ω`` forced to contain some candidates (so
    margins are non-trivial).  Half the disclosures are "healed" — widened
    by exactly the margins they intersect — so the sweep exercises both
    margin-test outcomes; the rest stay raw random and almost surely fail.
    The shaping pass uses a throwaway reference oracle and is never timed.
    """
    rnd = random.Random(seed)
    size = 1 << n
    candidates = sorted(rnd.sample(range(size), n_candidates))
    audited = set(rnd.sample(range(size), size // 2))
    audited.update(candidates[: max(1, n_candidates // 2)])
    audited_frozen = frozenset(audited)

    shaping = _reference.RefSubcubeOracle(n, candidates)
    margins = _reference.ref_margin_index(shaping, audited_frozen)

    disclosures: List[FrozenSet[int]] = []
    for i in range(n_disclosures):
        b = set(rnd.sample(range(size), rnd.randrange(size // 4, 3 * size // 4)))
        if i % 2 == 0:
            # Margins live in Ā, so widening B never adds worlds of A ∩ B:
            # one pass reaches the margin-condition fixpoint.
            for w1 in audited_frozen & b:
                margin = margins.get(w1)
                if margin is not None:
                    b |= margin
        disclosures.append(frozenset(b))
    return candidates, audited_frozen, disclosures


def run_serial_path_bench(
    n: int = DEFAULT_SERIAL_N,
    n_candidates: int = DEFAULT_SERIAL_CANDIDATES,
    n_disclosures: int = DEFAULT_SERIAL_DISCLOSURES,
    seed: int = DEFAULT_SEED,
) -> Dict[str, Any]:
    """Run the E15 margin/interval sweep through both backends and compare.

    Each backend receives the workload in its native representation up
    front (packed masks vs frozensets); the timed region is exactly the
    serial decision path — margin-index construction (minimal intervals +
    Proposition 4.10 partitions for every origin in ``A ∩ C``) followed by
    the margin test over every disclosure.
    """
    candidates, audited_worlds, disclosures = _serial_path_workload(
        n, n_candidates, n_disclosures, seed
    )
    space = HypercubeSpace(n)
    audited = space.from_mask(_bitops.mask_of(audited_worlds, space.size))
    disclosed_sets = [
        space.from_mask(_bitops.mask_of(b, space.size)) for b in disclosures
    ]

    family = SubcubeFamily(space)
    candidate_set = space.property_set(candidates)
    with Stopwatch() as mask_build:
        oracle = FamilyIntervalOracle(candidate_set, family)
        index = SafetyMarginIndex(oracle, audited, require_tight=False)
    with Stopwatch() as mask_test:
        mask_verdicts = [index.test(b) for b in disclosed_sets]

    with Stopwatch() as ref_build:
        ref_oracle = _reference.RefSubcubeOracle(n, candidates)
        ref_margins = _reference.ref_margin_index(ref_oracle, audited_worlds)
    with Stopwatch() as ref_test:
        ref_verdicts = [
            _reference.ref_margin_test(ref_margins, audited_worlds, b)
            for b in disclosures
        ]

    if mask_verdicts != ref_verdicts:
        raise AssertionError(
            "mask backend and frozenset reference disagree on margin verdicts"
        )
    mask_margins = {
        w1: frozenset(index.margin(w1))
        for w1 in audited_worlds & frozenset(candidates)
    }
    if mask_margins != ref_margins:
        raise AssertionError(
            "mask backend and frozenset reference computed different margins"
        )

    mask_total = mask_build.elapsed + mask_test.elapsed
    ref_total = ref_build.elapsed + ref_test.elapsed
    return {
        "benchmark": "serial_path",
        "workload": {
            "n": n,
            "space_size": space.size,
            "candidates": n_candidates,
            "audited_size": len(audited_worlds),
            "disclosures": n_disclosures,
            "safe_fraction": round(sum(mask_verdicts) / len(mask_verdicts), 4),
            "seed": seed,
        },
        "mask_backend": {
            "build_seconds": round(mask_build.elapsed, 6),
            "test_seconds": round(mask_test.elapsed, 6),
            "seconds": round(mask_total, 6),
            "tests_per_sec": round(n_disclosures / mask_test.elapsed, 1),
        },
        "frozenset_reference": {
            "build_seconds": round(ref_build.elapsed, 6),
            "test_seconds": round(ref_test.elapsed, 6),
            "seconds": round(ref_total, 6),
            "tests_per_sec": round(n_disclosures / ref_test.elapsed, 1),
        },
        "speedup_serial_path": round(ref_total / mask_total, 2),
        "verdict_identical": True,
    }


# ---------------------------------------------------------------------------
# E16 — clean-path overhead of the resilience layer
# ---------------------------------------------------------------------------


def run_resilience_bench(
    n_events: int = DEFAULT_EVENTS,
    seed: int = DEFAULT_SEED,
    repeats: int = DEFAULT_RESILIENCE_REPEATS,
    decision_budget: float = DEFAULT_RESILIENCE_BUDGET,
) -> Dict[str, Any]:
    """Measure what the resilience layer costs when nothing goes wrong.

    The E14 log is audited twice per repeat through fresh single-worker
    engines: once plain, once *armed* — a per-decision deadline budget plus
    an explicit circuit breaker, i.e. every resilience probe live on the
    hot path.  No fault plan is installed and the budget is generous, so
    both runs take the identical decision path; the artifact records the
    best-of-``repeats`` wall clock for each and their overhead fraction.
    Verdicts are asserted identical and the armed run is asserted clean
    (zero degradation counters) before anything is reported.
    """
    universe = build_registry()
    log = build_mixed_density_log(universe, n_events=n_events, seed=seed)
    policy = AuditPolicy(
        audit_query=parse_boolean_query(AUDIT_QUERY),
        assumption=PriorAssumption.PRODUCT,
        name="bench-resilience",
    )

    plain_best = armed_best = float("inf")
    plain_report = armed_report = None
    for _ in range(max(1, repeats)):
        plain_engine = BatchAuditEngine(universe, policy, n_workers=1)
        with Stopwatch() as plain_clock:
            plain_report = plain_engine.audit_log(log)
        plain_best = min(plain_best, plain_clock.elapsed)

        armed_engine = BatchAuditEngine(
            universe,
            policy,
            n_workers=1,
            decision_budget=decision_budget,
            breaker=CircuitBreaker(),
        )
        with Stopwatch() as armed_clock:
            armed_report = armed_engine.audit_log(log)
        armed_best = min(armed_best, armed_clock.elapsed)

    if _statuses(armed_report) != _statuses(plain_report):
        raise AssertionError("resilience-armed engine changed verdicts")
    stats = armed_report.runtime_stats
    if stats is not None and stats.any_degradation:
        raise AssertionError(
            f"clean-path run reported degradation: {stats}"
        )

    events = len(list(log))
    overhead = armed_best / plain_best - 1.0
    return {
        "benchmark": "resilience_overhead",
        "workload": {
            "events": events,
            "repeats": repeats,
            "decision_budget_seconds": decision_budget,
            "seed": seed,
        },
        "engine_plain": {
            "seconds": round(plain_best, 6),
            "events_per_sec": round(events / plain_best, 1),
        },
        "engine_armed": {
            "seconds": round(armed_best, 6),
            "events_per_sec": round(events / armed_best, 1),
            "runtime_stats": stats.as_dict() if stats is not None else None,
        },
        "overhead_fraction": round(overhead, 4),
        "verdict_identical": True,
    }


# ---------------------------------------------------------------------------
# E18 — incremental re-audit against a persistent verdict store
# ---------------------------------------------------------------------------


def run_incremental_bench(
    n_events: int = DEFAULT_EVENTS,
    seed: int = DEFAULT_SEED,
    append_fraction: float = DEFAULT_INCREMENTAL_APPEND_FRACTION,
    repeats: int = DEFAULT_INCREMENTAL_REPEATS,
) -> Dict[str, Any]:
    """The PR-5 streaming scenario: audit, append 5%, re-audit.

    A store is primed by incrementally auditing the first
    ``1 - append_fraction`` of the E14 log (untimed: that work happened
    "yesterday").  The full grown log is then audited three ways, each
    best-of-``repeats`` from a fresh auditor:

    * ``serial_scratch``    — the per-event reference loop, no reuse;
    * ``incremental_cold``  — the incremental auditor with an empty store;
    * ``incremental_warm``  — a fresh auditor + fresh store object loading
      the primed file, modelling a new process resuming yesterday's audit.

    The primed file is restored byte-for-byte before every warm repeat so
    each one measures the same disk state.  All three reports are asserted
    verdict-identical before anything is recorded; the headline number is
    ``speedup_warm_vs_serial`` (acceptance bound ≥5x at full size).
    """
    universe = build_registry()
    log = build_mixed_density_log(universe, n_events=n_events, seed=seed)
    policy = AuditPolicy(
        audit_query=parse_boolean_query(AUDIT_QUERY),
        assumption=PriorAssumption.PRODUCT,
        name="bench-incremental",
    )
    n_append = max(1, int(round(n_events * append_fraction)))
    cut = n_events - n_append
    base_log = log.before(cut)
    events = len(list(log))

    serial_best = float("inf")
    serial_report = None
    for _ in range(max(1, repeats)):
        auditor = OfflineAuditor(universe, policy)
        with Stopwatch() as clock:
            serial_report = auditor.audit_log_serial(log)
        serial_best = min(serial_best, clock.elapsed)

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        path = os.path.join(tmp, "verdicts.json")

        cold_best = float("inf")
        cold_report = None
        cold_stats = None
        for _ in range(max(1, repeats)):
            if os.path.exists(path):
                os.remove(path)
            store = VerdictStore(path)
            with Stopwatch() as clock:
                cold_report = OfflineAuditor(universe, policy).audit_log_incremental(
                    log, store=store
                )
            if clock.elapsed < cold_best:
                cold_best = clock.elapsed
                cold_stats = store.stats
        os.remove(path)

        # Prime the store with "yesterday's" audit of the base prefix.
        OfflineAuditor(universe, policy).audit_log_incremental(
            base_log, store=VerdictStore(path)
        )
        with open(path, "rb") as handle:
            primed = handle.read()

        warm_best = float("inf")
        warm_report = None
        warm_stats = None
        for _ in range(max(1, repeats)):
            with open(path, "wb") as handle:
                handle.write(primed)
            store = VerdictStore(path)
            with Stopwatch() as clock:
                warm_report = OfflineAuditor(universe, policy).audit_log_incremental(
                    log, store=store
                )
            if clock.elapsed < warm_best:
                warm_best = clock.elapsed
                warm_stats = store.stats

    if _statuses(cold_report) != _statuses(serial_report):
        raise AssertionError("cold incremental audit disagrees with serial loop")
    if _statuses(warm_report) != _statuses(serial_report):
        raise AssertionError("warm incremental audit disagrees with serial loop")

    return {
        "benchmark": "incremental_audit",
        "workload": {
            "events": events,
            "append_events": n_append,
            "append_fraction": round(n_append / events, 4),
            "repeats": repeats,
            "assumption": policy.assumption.value,
            "seed": seed,
        },
        "serial_scratch": {
            "seconds": round(serial_best, 6),
            "events_per_sec": round(events / serial_best, 1),
        },
        "incremental_cold": {
            "seconds": round(cold_best, 6),
            "events_per_sec": round(events / cold_best, 1),
            "store": cold_stats.as_dict(),
        },
        "incremental_warm": {
            "seconds": round(warm_best, 6),
            "events_per_sec": round(events / warm_best, 1),
            "store": warm_stats.as_dict(),
        },
        "speedup_cold_vs_serial": round(serial_best / cold_best, 2),
        "speedup_warm_vs_serial": round(serial_best / warm_best, 2),
        "verdict_identical": True,
    }


# ---------------------------------------------------------------------------
# E19 — verdict-store backends: warm batched probe and concurrent writers
# ---------------------------------------------------------------------------

_STORE_VERDICT_METHODS = (
    "margin-index",
    "interval-oracle",
    "prop-3.10-composition",
    "bernstein-branch-bound",
)


def synthetic_store_pairs(
    n_pairs: int, seed: int, offset: int = 0
) -> List[Tuple[Tuple[str, str, str, float], AuditVerdict]]:
    """A deterministic production-shaped ``(key, verdict)`` workload.

    Keys mimic the engine's cache keys (digest pair + assumption + atol);
    verdicts mix SAFE and UNSAFE with small detail payloads.  Everything
    is a pure function of ``(seed, index)`` so concurrent writers can
    generate disjoint slices via ``offset`` and a reader can regenerate
    the exact union without any channel between processes.
    """
    pairs = []
    for i in range(offset, offset + n_pairs):
        key = (
            f"aud{seed:02d}{i:010d}",
            f"dis{seed:02d}{(i * 2654435761) % (1 << 32):08x}",
            "product",
            1e-09,
        )
        method = _STORE_VERDICT_METHODS[i % len(_STORE_VERDICT_METHODS)]
        if i % 5 == 0:
            verdict = AuditVerdict.unsafe(method, events=i % 13)
        else:
            verdict = AuditVerdict.safe(method, events=i % 13)
        pairs.append((key, verdict))
    return pairs


def _store_path(root: str, backend: str, name: str) -> str:
    suffix = ".json" if backend == "json" else ""
    return os.path.join(root, f"{name}-{backend}{suffix}")


def _store_soak_worker(
    backend: str, path: str, seed: int, offset: int, count: int
) -> None:
    """One E19 soak writer: append a disjoint key range, flush once, exit.

    Runs in a forked child; the exit code carries flush success back to
    the parent (0 = the store accepted the whole slice).
    """
    store = open_verdict_store(path, backend=backend)
    for key, verdict in synthetic_store_pairs(count, seed, offset=offset):
        store.put(key, verdict)
    flushed = store.flush()
    store.close()
    sys.exit(0 if flushed else 1)


def run_store_backend_bench(
    backend: str, root: str, pairs: List[Tuple[Any, AuditVerdict]], repeats: int
) -> Dict[str, Any]:
    """Write the workload through one backend, then time the warm probe.

    The timed warm-probe region is exactly what a cold process resuming
    an audit pays: constructing a fresh store object over the on-disk
    state plus the engine's one batched :meth:`probe_many` — open cost
    deliberately inside the clock, because that is where the two backends
    differ (wholesale JSON parse vs lazy sharded index lookups).
    """
    path = _store_path(root, backend, "warm")
    store = open_verdict_store(path, backend=backend)
    with Stopwatch() as write_clock:
        for key, verdict in pairs:
            store.put(key, verdict)
        if not store.flush():
            raise AssertionError(f"{backend} store failed to flush E19 workload")
    store.close()

    keys = [key for key, _ in pairs]
    probe_best = float("inf")
    probe_stats = None
    for _ in range(max(1, repeats)):
        with Stopwatch() as clock:
            warm = open_verdict_store(path, backend=backend)
            found = warm.probe_many(keys)
        if len(found) != len(keys):
            raise AssertionError(
                f"{backend} warm probe lost verdicts: {len(found)}/{len(keys)}"
            )
        if clock.elapsed < probe_best:
            probe_best = clock.elapsed
            probe_stats = warm.stats
        warm.close()

    return {
        "backend": backend,
        "write_seconds": round(write_clock.elapsed, 6),
        "writes_per_sec": round(len(pairs) / write_clock.elapsed, 1),
        "warm_probe_seconds": round(probe_best, 6),
        "warm_probes_per_sec": round(len(keys) / probe_best, 1),
        "store": probe_stats.as_dict(),
    }


def run_store_soak(
    backend: str, root: str, seed: int, n_writers: int, pairs_per_writer: int
) -> Dict[str, Any]:
    """Fork ``n_writers`` concurrent appenders, then read back the union.

    Every writer owns a disjoint index range and flushes once, all at
    roughly the same moment — the worst case for the commit path (WAL
    busy-retry on sqlite, lock-file merge-on-flush on json).  The reader
    must see every key from every writer with zero ``load_failures``.
    """
    path = _store_path(root, backend, "soak")
    workers = [
        multiprocessing.Process(
            target=_store_soak_worker,
            args=(backend, path, seed, w * pairs_per_writer, pairs_per_writer),
        )
        for w in range(n_writers)
    ]
    with Stopwatch() as clock:
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join()
    codes = [proc.exitcode for proc in workers]
    if any(codes):
        raise AssertionError(f"{backend} soak writers failed: exit codes {codes}")

    reader = open_verdict_store(path, backend=backend, read_only=True)
    keys = [
        key
        for key, _ in synthetic_store_pairs(n_writers * pairs_per_writer, seed)
    ]
    found = reader.probe_many(keys)
    if len(found) != len(keys):
        raise AssertionError(
            f"{backend} soak reader sees {len(found)}/{len(keys)} verdicts"
        )
    if reader.stats.load_failures:
        raise AssertionError(
            f"{backend} soak reader hit {reader.stats.load_failures} load failures"
        )
    reader.close()
    total = n_writers * pairs_per_writer
    return {
        "backend": backend,
        "writers": n_writers,
        "pairs_per_writer": pairs_per_writer,
        "seconds": round(clock.elapsed, 6),
        "writes_per_sec": round(total / clock.elapsed, 1),
        "union_complete": True,
        "load_failures": 0,
    }


def run_store_bench(
    n_pairs: int = DEFAULT_STORE_PAIRS,
    repeats: int = DEFAULT_STORE_REPEATS,
    n_writers: int = DEFAULT_STORE_WRITERS,
    seed: int = DEFAULT_SEED,
) -> Dict[str, Any]:
    """The full E19 section: warm-probe head-to-head plus concurrency soak.

    ``warm_probe_target_met`` is recorded, not asserted — the ≥3x bound
    is an acceptance criterion at the full 100k-pair size; smoke-scaled
    runs report whatever they measure.
    """
    pairs = synthetic_store_pairs(n_pairs, seed)
    soak_per_writer = max(1, n_pairs // (n_writers * 4))
    with tempfile.TemporaryDirectory(prefix="repro-bench-e19-") as root:
        json_row = run_store_backend_bench("json", root, pairs, repeats)
        sqlite_row = run_store_backend_bench("sqlite", root, pairs, repeats)
        soaks = [
            run_store_soak(backend, root, seed + 1, n_writers, soak_per_writer)
            for backend in ("json", "sqlite")
        ]
    speedup = round(
        json_row["warm_probe_seconds"] / sqlite_row["warm_probe_seconds"], 2
    )
    return {
        "benchmark": "store_backends",
        "workload": {
            "pairs": n_pairs,
            "repeats": repeats,
            "soak_writers": n_writers,
            "soak_pairs_per_writer": soak_per_writer,
            "seed": seed,
        },
        "json": json_row,
        "sqlite": sqlite_row,
        "speedup_sqlite_vs_json": speedup,
        "warm_probe_target": STORE_WARM_TARGET_SPEEDUP,
        "warm_probe_target_met": speedup >= STORE_WARM_TARGET_SPEEDUP,
        "concurrent_soak": soaks,
    }


# ---------------------------------------------------------------------------
# E17 — frontier-batched Bernstein kernel and amortized pool dispatch
# ---------------------------------------------------------------------------


def quadratic_well_tensor(n: int, seed: int, eps: float) -> np.ndarray:
    """An adversarial near-boundary gap-style tensor: (p−c)ᵀQ(p−c) + eps.

    Q is random PSD and c interior, so the minimum ``eps`` sits strictly
    inside the box — the worst case for branch-and-bound, which must
    subdivide deeply before the Bernstein enclosure tightens around it.
    """
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(n, n))
    q = m @ m.T / n
    c = rng.uniform(0.3, 0.7, size=n)
    tensor = np.zeros((3,) * n)
    tensor[(0,) * n] = float(c @ q @ c) + eps
    lin = -2.0 * (q @ c)
    for i in range(n):
        idx = [0] * n
        idx[i] = 1
        tensor[tuple(idx)] += lin[i]
        idx[i] = 2
        tensor[tuple(idx)] += q[i, i]
        for j in range(i + 1, n):
            idx = [0] * n
            idx[i] = 1
            idx[j] = 1
            tensor[tuple(idx)] += 2.0 * q[i, j]
    return tensor


def _format_break_even(break_even: Optional[float]) -> Optional[float]:
    """JSON-friendly break-even task count, or None.

    None covers every "no number" case — no data, a single worker, or a
    pool that never breaks even (infinite break-even).  Emitting the
    *string* ``"inf"`` here, as an earlier revision did, silently turned
    a numeric column into a mixed-type one and broke downstream
    comparisons that assumed ``float | null``.
    """
    if break_even is None or math.isinf(break_even):
        return None
    return round(break_even, 1)


def run_kernel_bench(
    dims: Sequence[int] = DEFAULT_KERNEL_DIMS,
    max_boxes: int = DEFAULT_KERNEL_BOXES,
    repeats: int = DEFAULT_KERNEL_REPEATS,
    seed: int = DEFAULT_SEED,
) -> Dict[str, Any]:
    """Time the scalar vs frontier-batched kernel on deep-subdivision wells.

    Each dimension gets one quadratic-well tensor whose interior minimum
    (``+eps``) keeps both kernels subdividing until ``max_boxes``; the
    timed quantity is best-of-``repeats`` wall clock, normalised per box
    explored so the two kernels are comparable even when their frontier
    bookkeeping explores marginally different counts.  Decisions are
    asserted equivalent before anything is recorded.

    The speedup column is *regime-dependent* and reported per dimension on
    purpose: at small ``n`` the scalar kernel is dominated by per-box
    Python/ufunc dispatch overhead and batching wins ≥5x; by ``n = 8`` a
    single coefficient block is ~52 KB and both kernels are memory-
    bandwidth-bound, so the honest ratio compresses to ~2x.
    """
    rows = []
    for n in dims:
        tensor = quadratic_well_tensor(n, seed=seed, eps=KERNEL_WELL_EPS)

        scalar_best = batched_best = float("inf")
        scalar_decision = batched_decision = None
        for _ in range(max(1, repeats)):
            with Stopwatch() as clock:
                scalar_decision = decide_nonnegative_on_box(
                    tensor, max_boxes=max_boxes
                )
            scalar_best = min(scalar_best, clock.elapsed)
            with Stopwatch() as clock:
                batched_decision = decide_nonnegative_on_box_batched(
                    tensor, max_boxes=max_boxes
                )
            batched_best = min(batched_best, clock.elapsed)

        if batched_decision.nonnegative != scalar_decision.nonnegative:
            raise AssertionError(
                f"kernel disagreement at n={n}: "
                f"scalar={scalar_decision.nonnegative} "
                f"batched={batched_decision.nonnegative}"
            )

        scalar_us = scalar_best / max(1, scalar_decision.boxes_explored) * 1e6
        batched_us = batched_best / max(1, batched_decision.boxes_explored) * 1e6
        rows.append(
            {
                "n": n,
                "verdict": str(scalar_decision.nonnegative),
                "scalar_boxes": scalar_decision.boxes_explored,
                "batched_boxes": batched_decision.boxes_explored,
                "scalar_us_per_box": round(scalar_us, 2),
                "batched_us_per_box": round(batched_us, 2),
                "speedup": round(scalar_us / batched_us, 2),
            }
        )

    return {
        "benchmark": "bernstein_kernel",
        "workload": {
            "well_eps": KERNEL_WELL_EPS,
            "max_boxes": max_boxes,
            "repeats": repeats,
            "seed": seed,
        },
        "dims": rows,
        "speedup_peak": max(row["speedup"] for row in rows),
        "regime_note": (
            "speedup is overhead-bound at small n (>=5x) and memory-"
            "bandwidth-bound at n=8 (~2x); see DESIGN.md E17"
        ),
        "verdict_identical": True,
    }


def run_pool_dispatch_bench(
    n_events: int = DEFAULT_EVENTS,
    n_workers: int = DEFAULT_WORKERS,
    seed: int = DEFAULT_SEED,
) -> Dict[str, Any]:
    """Audit the E14 log through the forced pool, per-task vs chunked.

    ``chunk_size=1`` reproduces the pre-PR-4 dispatch (one future and one
    full pickled payload per unique decision); the adaptive run ships
    ~:data:`~repro.audit.engine.DEFAULT_CHUNK_SIZE`-task chunks against a
    worker-side batch context.  Verdicts are asserted identical, and the
    dispatch telemetry plus the break-even estimate land in the artifact.
    The break-even model assumes ``n_workers``-way concurrency, so the
    recorded ``cpu_count`` matters for reading it: on a single-core box
    the pool cannot actually win and the wall-clock ratio stays near 1x
    no matter what the model projects — there the telemetry (per-task
    dispatch overhead, chunk sizes) is the point of the measurement.
    """
    universe = build_registry()
    log = build_mixed_density_log(universe, n_events=n_events, seed=seed)
    policy = AuditPolicy(
        audit_query=parse_boolean_query(AUDIT_QUERY),
        assumption=PriorAssumption.PRODUCT,
        name="bench-pool-dispatch",
    )

    per_task_engine = BatchAuditEngine(
        universe, policy, n_workers=n_workers, parallel_threshold=0, chunk_size=1
    )
    with Stopwatch() as per_task_clock:
        per_task_report = per_task_engine.audit_log(log)

    chunked_engine = BatchAuditEngine(
        universe, policy, n_workers=n_workers, parallel_threshold=0
    )
    with Stopwatch() as chunked_clock:
        chunked_report = chunked_engine.audit_log(log)

    if _statuses(chunked_report) != _statuses(per_task_report):
        raise AssertionError("chunked pool dispatch changed verdicts")

    events = len(list(log))
    return {
        "benchmark": "pool_dispatch",
        "workload": {
            "events": events,
            "n_workers": n_workers,
            "cpu_count": os.cpu_count(),
            "seed": seed,
        },
        "per_task": {
            "seconds": round(per_task_clock.elapsed, 6),
            "events_per_sec": round(events / per_task_clock.elapsed, 1),
            "dispatch": per_task_engine.dispatch_stats.as_dict(),
        },
        "chunked": {
            "seconds": round(chunked_clock.elapsed, 6),
            "events_per_sec": round(events / chunked_clock.elapsed, 1),
            "dispatch": chunked_engine.dispatch_stats.as_dict(),
        },
        "speedup_chunked_vs_per_task": round(
            per_task_clock.elapsed / chunked_clock.elapsed, 2
        ),
        "pool_break_even_tasks": _format_break_even(
            chunked_engine.pool_break_even()
        ),
        "verdict_identical": True,
    }


def run_probabilistic_bench(
    dims: Sequence[int] = DEFAULT_KERNEL_DIMS,
    max_boxes: int = DEFAULT_KERNEL_BOXES,
    repeats: int = DEFAULT_KERNEL_REPEATS,
    n_events: int = DEFAULT_EVENTS,
    n_workers: int = DEFAULT_WORKERS,
    seed: int = DEFAULT_SEED,
) -> Dict[str, Any]:
    """The full E17 section: kernel sweep plus pool-dispatch economics."""
    return {
        "benchmark": "probabilistic_hot_path",
        "kernel": run_kernel_bench(
            dims=dims, max_boxes=max_boxes, repeats=repeats, seed=seed
        ),
        "pool": run_pool_dispatch_bench(
            n_events=n_events, n_workers=n_workers, seed=seed
        ),
    }


# ---------------------------------------------------------------------------
# E20 — native decision kernels: compiled Bernstein loop + word-array sweeps
# ---------------------------------------------------------------------------


def _native_mask_workload(
    n: int, n_origins: int, n_disclosures: int, seed: int
) -> Tuple[SafetyMarginIndex, List[Any]]:
    """A warm margin index plus a disclosure batch for the E20 mask sweep.

    The index's per-origin margins are fully pre-filled before anything is
    timed, so the measured region is exactly the containment sweep the two
    backends implement differently — one ``(k, nwords)`` AND-NOT matrix op
    (:meth:`~repro.possibilistic.margins.SafetyMarginIndex.test`) against
    one big-int AND-NOT per origin (:meth:`test_bigint`).  Three quarters
    of the disclosures are healed to contain every margin they touch, so
    the big-int reference cannot short-circuit its way to a cheap loss.
    """
    rnd = random.Random(seed)
    space = HypercubeSpace(n)
    size = space.size
    candidates = sorted(rnd.sample(range(size), n_origins))
    audited_worlds = set(rnd.sample(range(size), size // 2))
    audited_worlds.update(candidates)
    family = SubcubeFamily(space)
    oracle = FamilyIntervalOracle(space.property_set(candidates), family)
    audited = space.from_mask(_bitops.mask_of(audited_worlds, size))
    index = SafetyMarginIndex(oracle, audited, require_tight=False)
    margins = {w: index.margin(w).mask for w in candidates}  # warm pre-fill

    disclosed = []
    for i in range(n_disclosures):
        b = set(rnd.sample(range(size), rnd.randrange(size // 4, 3 * size // 4)))
        b_mask = _bitops.mask_of(b, size)
        if i % 4 != 0:
            for w in candidates:
                if (b_mask >> w) & 1:
                    b_mask |= margins[w]
        disclosed.append(space.from_mask(b_mask))
    return index, disclosed


def run_native_bench(
    dims: Sequence[int] = DEFAULT_NATIVE_DIMS,
    max_boxes: int = DEFAULT_NATIVE_BOXES,
    mask_dims: Sequence[int] = DEFAULT_NATIVE_MASK_DIMS,
    mask_origins: int = DEFAULT_NATIVE_MASK_ORIGINS,
    mask_disclosures: int = DEFAULT_NATIVE_MASK_DISCLOSURES,
    repeats: int = DEFAULT_NATIVE_REPEATS,
    seed: int = DEFAULT_SEED,
) -> Dict[str, Any]:
    """The E20 section: compiled kernel and word-array sweep head-to-heads.

    **Kernel half** — each dimension's quadratic well runs through three
    implementations: the scalar reference, the batched NumPy fallback
    (``REPRO_NATIVE=off``) and the compiled fused-split kernel when built.
    Decisions are asserted equivalent and per-box times recorded.  The
    ratio is regime-dependent: within the ``max_boxes`` budget here the
    frontier stays cache-resident and the fused kernel wins big even at
    ``n = 8``; at very deep searches (hundreds of thousands of boxes) every
    implementation is DRAM-bandwidth-bound and the ratios compress toward
    1x — that regime is a memory problem, not a dispatch problem.

    **Mask half** — the word-array margin sweep against its big-int
    reference on a pre-filled index (big ``Ω``: masks of ``2**n`` bits),
    verdicts asserted identical.
    """
    backend = _native.backend()
    kernel_rows = []
    try:
        for n in dims:
            tensor = quadratic_well_tensor(n, seed=seed, eps=KERNEL_WELL_EPS)
            scalar_best = fallback_best = native_best = float("inf")
            scalar_dec = fallback_dec = native_dec = None
            for _ in range(max(1, repeats)):
                with Stopwatch() as clock:
                    scalar_dec = decide_nonnegative_on_box(
                        tensor, max_boxes=max_boxes
                    )
                scalar_best = min(scalar_best, clock.elapsed)
                _native.configure("off")
                with Stopwatch() as clock:
                    fallback_dec = decide_nonnegative_on_box_batched(
                        tensor, max_boxes=max_boxes
                    )
                fallback_best = min(fallback_best, clock.elapsed)
                if backend.fused_split is not None:
                    _native.configure("auto")
                    with Stopwatch() as clock:
                        native_dec = decide_nonnegative_on_box_batched(
                            tensor, max_boxes=max_boxes
                        )
                    native_best = min(native_best, clock.elapsed)
            if fallback_dec.nonnegative != scalar_dec.nonnegative:
                raise AssertionError(f"fallback kernel disagreement at n={n}")
            if native_dec is not None and (
                native_dec.nonnegative != scalar_dec.nonnegative
            ):
                raise AssertionError(f"native kernel disagreement at n={n}")

            scalar_us = scalar_best / max(1, scalar_dec.boxes_explored) * 1e6
            fallback_us = (
                fallback_best / max(1, fallback_dec.boxes_explored) * 1e6
            )
            row = {
                "n": n,
                "verdict": str(scalar_dec.nonnegative),
                "scalar_us_per_box": round(scalar_us, 2),
                "fallback_us_per_box": round(fallback_us, 2),
                "speedup_fallback_vs_scalar": round(scalar_us / fallback_us, 2),
            }
            if native_dec is not None:
                native_us = (
                    native_best / max(1, native_dec.boxes_explored) * 1e6
                )
                row["native_us_per_box"] = round(native_us, 2)
                row["speedup_native_vs_scalar"] = round(scalar_us / native_us, 2)
                row["speedup_native_vs_fallback"] = round(
                    fallback_us / native_us, 2
                )
                if native_dec.boxes_explored != fallback_dec.boxes_explored:
                    raise AssertionError(
                        f"native kernel explored a different tree at n={n}"
                    )
            kernel_rows.append(row)
    finally:
        _native.configure(None)

    mask_rows = []
    for n in mask_dims:
        # Halve the origin count past n=12: the (untimed) margin pre-fill
        # pays one interval partition per origin and its cost grows with
        # |Ω|, while the timed sweep comparison needs fewer rows to
        # separate the backends once masks are 2 KB each.
        n_origins = mask_origins if n <= 12 else max(32, mask_origins // 2)
        index, disclosed = _native_mask_workload(
            n, n_origins, mask_disclosures, seed
        )
        word_best = bigint_best = float("inf")
        word_verdicts = bigint_verdicts = None
        for _ in range(max(1, repeats)):
            with Stopwatch() as clock:
                word_verdicts = [index.test(b) for b in disclosed]
            word_best = min(word_best, clock.elapsed)
            with Stopwatch() as clock:
                bigint_verdicts = [index.test_bigint(b) for b in disclosed]
            bigint_best = min(bigint_best, clock.elapsed)
        if word_verdicts != bigint_verdicts:
            raise AssertionError(
                f"word-array and big-int margin sweeps disagree at n={n}"
            )
        mask_rows.append(
            {
                "n": n,
                "space_size": 1 << n,
                "origins": n_origins,
                "disclosures": mask_disclosures,
                "safe_fraction": round(
                    sum(word_verdicts) / len(word_verdicts), 4
                ),
                "word_seconds": round(word_best, 6),
                "bigint_seconds": round(bigint_best, 6),
                "word_tests_per_sec": round(mask_disclosures / word_best, 1),
                "speedup_word_vs_bigint": round(bigint_best / word_best, 2),
            }
        )

    native_speedups = [
        row["speedup_native_vs_scalar"]
        for row in kernel_rows
        if "speedup_native_vs_scalar" in row
    ]
    return {
        "benchmark": "native_kernels",
        "backend": {
            "name": backend.name,
            "mode": backend.mode,
            "load_error": backend.load_error,
        },
        "workload": {
            "well_eps": KERNEL_WELL_EPS,
            "max_boxes": max_boxes,
            "repeats": repeats,
            "seed": seed,
        },
        "kernel": kernel_rows,
        "mask_sweep": mask_rows,
        "kernel_target_speedup": NATIVE_KERNEL_TARGET_SPEEDUP,
        "kernel_target_met": (
            bool(native_speedups)
            and native_speedups[-1] >= NATIVE_KERNEL_TARGET_SPEEDUP
        ),
        "mask_target_speedup": NATIVE_MASK_TARGET_SPEEDUP,
        "mask_target_met": all(
            row["speedup_word_vs_bigint"] >= NATIVE_MASK_TARGET_SPEEDUP
            for row in mask_rows
        )
        if mask_rows
        else False,
        "regime_note": (
            "kernel ratios hold while the frontier is cache-resident (the "
            "max_boxes budget here); at 100k+ box searches all three "
            "implementations become DRAM-bandwidth-bound and compress "
            "toward 1x"
        ),
        "verdict_identical": True,
    }


# ---------------------------------------------------------------------------
# E21 — the online gateway: sustained decisions/sec under multi-tenant load
# ---------------------------------------------------------------------------


def _recovered_gateway_statuses(
    universe, policy, root, workers: int
) -> Dict[int, str]:
    """Replay a (possibly multi-executor) gateway's journals, bit for bit.

    Builds one fresh :class:`~repro.service.shard.ShardManager` per
    executor journal directory over the surviving verdict store, runs
    startup recovery, and reads back each recovered tenant's per-event
    verdicts from its durable records (own journal + group-commit slice)
    — exactly what a restarted gateway would serve.
    """
    from ..audit import DisclosureLog
    from ..audit.log import DisclosureEvent
    from ..audit.store_sql import SqliteVerdictStore
    from ..service import ShardManager

    if workers > 1:
        journal_dirs = [
            root / "journals" / f"exec-{index:02d}" for index in range(workers)
        ]
    else:
        journal_dirs = [root / "journals"]
    statuses: Dict[int, str] = {}
    for journal_dir in journal_dirs:
        manager = ShardManager(
            universe,
            policy,
            journal_dir=journal_dir,
            store=SqliteVerdictStore(root / "store"),
        )
        counts = manager.recover_all()
        wal = {}
        if manager.commit_log.path.exists():
            wal = manager.commit_log.replay(repair=False).by_tenant()
        for tenant in counts:
            shard = manager.tenants[tenant]
            records = list(shard.journal.replay(repair=False).records)
            records += wal.get(tenant, [])
            if not records:
                continue
            log = DisclosureLog(
                DisclosureEvent(
                    time=r.time,
                    user=r.user,
                    query=parse_boolean_query(r.query_text),
                    note=r.note,
                )
                for r in records
            )
            for finding in shard.auditor.audit_log(log).findings:
                statuses[finding.event.time] = finding.verdict.status.value
        manager.close()
    return statuses


def run_gateway_bench(
    n_events: int = DEFAULT_GATEWAY_EVENTS,
    n_tenants: int = DEFAULT_GATEWAY_TENANTS,
    n_connections: int = DEFAULT_GATEWAY_CONNECTIONS,
    queue_limit: int = DEFAULT_GATEWAY_QUEUE_LIMIT,
    seed: int = DEFAULT_SEED,
    workers: int = 1,
    kill_executor: bool = False,
    repeats: int = 1,
) -> Dict[str, Any]:
    """The E21/E23 section: a gateway replaying a seeded Zipf trace.

    A real asyncio gateway (TCP on an ephemeral loopback port, group-commit
    journal, shared SQLite verdict store) serves a Zipf-skewed trace over
    ``n_tenants`` tenants through ``n_connections`` concurrent client
    connections.  Recorded: sustained decisions/sec (journal fsync and
    event-loop time included — this is end-to-end, not engine-only), p50
    and p99 decision latency, the *honest* shed count — sheds are retried
    and counted, never hidden — and the group-commit batching counters
    (rounds, mean depth, fsyncs amortised away).  The run ends in a
    SIGTERM-style drain; ``clean_drain`` asserts nothing was dropped
    silently.  Verdict cross-check: every per-event status the live
    gateway answered must equal a batched offline audit of the same
    events.

    With ``workers > 1`` (the E23 configuration) tenants partition across
    forked executor processes; ``kill_executor=True`` SIGKILLs one
    executor halfway through the trace — its partition sheds with retry
    hints, the process respawns and replays its journals, and after the
    drain the journals are replayed into fresh managers and asserted
    bit-identical to the offline audit.
    """
    import asyncio
    import gc as _gc
    import os as _os
    import pathlib
    import signal as _signal
    import tempfile

    from ..audit.store_sql import SqliteVerdictStore
    from ..service import AuditGateway, GatewayClient, ShardManager
    from ..service.trace import hospital_pool, zipf_trace

    # Collect the earlier sections' garbage before the timed replay, so
    # the gateway's post-recovery ``gc.freeze`` pins a compact heap and
    # the measurement is of the gateway, not of E14–E20's leftovers.
    _gc.collect()

    universe, policy, pool = hospital_pool()
    trace = zipf_trace(
        n_events=n_events, n_tenants=n_tenants, seed=seed, pool=pool
    )

    # Reference offline audit, built once: per-event verdicts are
    # tenant-independent (they key on the disclosed set), so one engine
    # pass over the full trace is the reference every replay round — and
    # every recovery — is checked against.
    log = DisclosureLog()
    for event in trace:
        log.record(
            event.time, event.user, parse_boolean_query(event.query_text)
        )
    reference = BatchAuditEngine(universe, policy, n_workers=1).audit_log(log)
    expected = {
        finding.event.time: finding.verdict.status.value
        for finding in reference.findings
    }

    def replay_once() -> Dict[str, Any]:
        latencies: List[float] = []
        sheds = 0
        retries = 0
        responses: Dict[int, str] = {}

        async def client_task(gateway, events) -> None:
            nonlocal sheds, retries
            async with GatewayClient(
                "127.0.0.1", gateway.port, "bench", request_timeout=None
            ) as client:
                for event in events:
                    while True:
                        with Stopwatch() as clock:
                            response = await client.decide(
                                event.user,
                                event.query_text,
                                time=event.time,
                                tenant=event.tenant,
                            )
                        if response.get("decision") == "shed":
                            sheds += 1
                            retries += 1
                            await asyncio.sleep(
                                response["retry_after_ms"] / 1000.0
                            )
                            continue
                        latencies.append(clock.elapsed)
                        responses[event.time] = response["status"]
                        break

        async def killer_task(gateway) -> bool:
            """SIGKILL one executor once half the trace has been decided."""
            while len(responses) < n_events // 2:
                await asyncio.sleep(0.01)
            pids = gateway.executor_pids()
            if not pids:
                return False
            _os.kill(pids[0], _signal.SIGKILL)
            return True

        async def run(tmp: str) -> Dict[str, Any]:
            root = pathlib.Path(tmp)
            manager = ShardManager(
                universe,
                policy,
                journal_dir=root / "journals",
                store=SqliteVerdictStore(root / "store"),
            )
            gateway = AuditGateway(
                manager,
                port=0,
                queue_limit=queue_limit,
                drain_budget=30.0,
                workers=workers,
            )
            await gateway.start()
            # Tenants are partitioned across connections (round-robin by
            # first appearance), so per-tenant event order — the order
            # that matters for composition state — is preserved within
            # each connection.
            lanes: List[List[Any]] = [[] for _ in range(n_connections)]
            lane_of: Dict[str, int] = {}
            for event in trace:
                lane = lane_of.setdefault(
                    event.tenant, len(lane_of) % n_connections
                )
                lanes[lane].append(event)
            tasks = [client_task(gateway, lane) for lane in lanes if lane]
            killed = False
            with Stopwatch() as clock:
                if kill_executor and workers > 1:
                    results = await asyncio.gather(killer_task(gateway), *tasks)
                    killed = bool(results[0])
                else:
                    await asyncio.gather(*tasks)
            report = await gateway.drain()
            return {"seconds": clock.elapsed, "drain": report, "killed": killed}

        with tempfile.TemporaryDirectory(prefix="repro-gateway-bench-") as tmp:
            outcome = asyncio.run(run(tmp))
            recovered: Optional[Dict[int, str]] = None
            if kill_executor:
                recovered = _recovered_gateway_statuses(
                    universe, policy, pathlib.Path(tmp), workers
                )

        if responses != expected:
            raise AssertionError(
                "gateway verdicts diverge from the offline audit"
            )
        if recovered is not None:
            # The post-kill recovery must hold every decided verdict, bit
            # for bit — replayed journals are the gateway's source of
            # truth.
            missing = set(expected) - set(recovered)
            diverged = {t for t in recovered if recovered[t] != expected[t]}
            if missing or diverged:
                raise AssertionError(
                    f"journal recovery diverges from the offline audit "
                    f"({len(missing)} missing, {len(diverged)} diverged)"
                )
        latencies.sort()
        return {
            "latencies": latencies,
            "sheds": sheds,
            "retries": retries,
            "outcome": outcome,
            "recovered": recovered,
        }

    # Absolute throughput on a single shared core is noisy run to run;
    # like the other sections' ``repeats``, replay the trace ``repeats``
    # times and record the fastest round.  The invariants — verdict
    # identity, clean drain, bit-identical recovery — are asserted on
    # *every* round, not just the recorded one.
    rounds = [replay_once() for _ in range(max(1, repeats))]
    best = min(rounds, key=lambda r: r["outcome"]["seconds"])
    latencies = best["latencies"]
    sheds = best["sheds"]
    retries = best["retries"]
    outcome = best["outcome"]
    recovered = best["recovered"]
    elapsed = outcome["seconds"]
    drain = outcome["drain"]

    def percentile(fraction: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(fraction * len(latencies)))]

    return {
        "workload": {
            "events": n_events,
            "tenants": n_tenants,
            "connections": n_connections,
            "queue_limit": queue_limit,
            "seed": seed,
            "workers": workers,
            "repeats": max(1, repeats),
        },
        "throughput": {
            "seconds": round(elapsed, 6),
            "decisions_per_sec": round(len(latencies) / elapsed, 1),
        },
        "latency_ms": {
            "p50": round(percentile(0.50) * 1e3, 3),
            "p99": round(percentile(0.99) * 1e3, 3),
            "max": round(latencies[-1] * 1e3, 3) if latencies else 0.0,
        },
        "admission": {
            "shed": sheds,
            "shed_rate": round(sheds / (len(latencies) + sheds), 4)
            if latencies or sheds
            else 0.0,
            "retries": retries,
        },
        "drain": {
            "clean_drain": bool(
                drain["flushed"] and drain["drain_shed"] == 0
            ),
            "drain_shed": drain["drain_shed"],
            "flushed": drain["flushed"],
            "decided": drain["decided"],
        },
        "batching": drain.get("batching", {}),
        "recovery": (
            None
            if recovered is None
            else {
                "executor_killed": outcome["killed"],
                "recovered_events": len(recovered),
                "bit_identical": True,
            }
        ),
        "verdict_identical": True,
    }


# -------------------------------------------------------------------------------
# E22 — symbolic decision backend: mask-vs-SAT crossover and the big-n regime


def _symbolic_universe_records(n: int):
    """A width-``n`` single-table database: candidates ``v = 0 .. n-1``.

    Half the records are actually inserted, half hypothetical, so answer
    sets are non-trivial at every ``n``.
    """
    db = Database()
    db.create_table(TableSchema("t", (("v", ColumnType.INTEGER),)))
    records = [db.insert("t", v=i) for i in range(n // 2)]
    records += [db.hypothetical_record("t", v=i) for i in range(n // 2, n)]
    return db, records


def _symbolic_queries():
    """The E22 audit query and disclosure batch (bounded support).

    Every query mentions only records with ``v ≤ 5``, so formula support
    stays constant as ``n`` grows — the regime where the subcube CEGAR
    loop is ``n``-independent.  (Wide-support cardinality disclosures can
    exceed the solver budget and surface as honest UNKNOWNs; the
    randomized suite covers that path, the benchmark records the feasible
    one.)
    """
    from ..db.query import AtLeast, ColumnCompare, Comparison, Exists, column_eq

    audit_query = Exists("t", column_eq("v", 0))
    disclosures = [
        AtLeast("t", ColumnCompare("v", Comparison.LE, 3), 2),
        Exists("t", column_eq("v", 1)),
        AtLeast("t", ColumnCompare("v", Comparison.LE, 5), 3),
    ]
    return audit_query, disclosures


def run_symbolic_bench(
    dims: Sequence[int] = DEFAULT_SYMBOLIC_DIMS,
    mask_caps: Optional[Dict[str, int]] = None,
    seed: int = DEFAULT_SEED,
) -> Dict[str, Any]:
    """The E22 section: ``Safe_K`` by SAT vs by ``2^n`` world masks.

    For each dimension the same three disclosures are decided under every
    supported possibilistic family through both backends; mask timings
    stop at :data:`SYMBOLIC_MASK_CAPS` (the sweep is ≈ ``4^n``) with an
    explicit infeasibility marker, symbolic timings continue into the
    ``n > 20`` regime the mask representation cannot even construct.
    Statuses are asserted identical wherever both backends ran.  The
    largest mask-infeasible dimension's subcube decision is re-timed alone
    as the acceptance headline (< :data:`SYMBOLIC_BIG_N_BUDGET` s).
    """
    from ..runtime.budget import Budget
    from ..symbolic import backend_name
    from ..symbolic.decide import SUPPORTED, audit_symbolic
    from ..symbolic.universe import SymbolicUniverse

    if mask_caps is None:
        mask_caps = SYMBOLIC_MASK_CAPS
    audit_query, disclosures = _symbolic_queries()
    rows: List[Dict[str, Any]] = []
    big_n: Optional[Dict[str, Any]] = None
    for n in dims:
        db, records = _symbolic_universe_records(n)
        symbolic_universe = SymbolicUniverse(db, records)
        pairs = [symbolic_universe.pair(audit_query, q) for q in disclosures]
        mask_universe = None
        if n <= max(mask_caps.values()):
            mask_universe = CandidateUniverse(db, records)
        for family in SUPPORTED:
            row: Dict[str, Any] = {"n": n, "assumption": family}
            with Stopwatch() as symbolic_clock:
                verdicts = [
                    audit_symbolic(
                        family, pair, budget=Budget(SYMBOLIC_BIG_N_BUDGET)
                    )
                    for pair in pairs
                ]
            row["symbolic_seconds"] = round(symbolic_clock.elapsed, 6)
            row["statuses"] = [v.status.value for v in verdicts]
            if mask_universe is not None and n <= mask_caps[family]:
                assumption = PriorAssumption(family)
                with Stopwatch() as mask_clock:
                    decider = make_decider(mask_universe.space, assumption)
                    audited = mask_universe.compile_boolean(audit_query)
                    mask_statuses = [
                        decider(
                            audited, mask_universe.compile_answer(q)
                        ).status.value
                        for q in disclosures
                    ]
                if mask_statuses != row["statuses"]:
                    raise AssertionError(
                        f"E22 backend disagreement at n={n} {family}: "
                        f"mask={mask_statuses} symbolic={row['statuses']}"
                    )
                row["mask_seconds"] = round(mask_clock.elapsed, 6)
                row["speedup_symbolic_vs_mask"] = round(
                    mask_clock.elapsed / max(symbolic_clock.elapsed, 1e-9), 1
                )
                row["verdict_identical"] = True
            else:
                row["mask_seconds"] = None
                row["mask"] = (
                    f"infeasible: 2^{n} worlds"
                    if n > 20
                    else f"not measured: ~4^{n} interval sweep beyond "
                    f"{mask_caps[family]}-dim cap"
                )
            rows.append(row)
        if n >= 24:
            with Stopwatch() as headline_clock:
                verdict = audit_symbolic(
                    "possibilistic-subcubes",
                    symbolic_universe.pair(audit_query, disclosures[0]),
                    budget=Budget(SYMBOLIC_BIG_N_BUDGET),
                )
            big_n = {
                "n": n,
                "assumption": "possibilistic-subcubes",
                "seconds": round(headline_clock.elapsed, 6),
                "status": verdict.status.value,
                "method": verdict.method,
                "cegar_rounds": verdict.details.get("cegar_rounds"),
                "budget_seconds": SYMBOLIC_BIG_N_BUDGET,
                "under_budget": headline_clock.elapsed < SYMBOLIC_BIG_N_BUDGET
                and verdict.is_decided,
            }
    return {
        "workload": {
            "dims": list(dims),
            "decisions_per_point": len(disclosures),
            "families": list(SUPPORTED),
            "mask_caps": dict(mask_caps),
            "seed": seed,
        },
        "backend": {"name": backend_name()},
        "crossover": rows,
        "big_n": big_n,
    }


def run_bench(
    n_events: int = DEFAULT_EVENTS,
    n_workers: int = DEFAULT_WORKERS,
    seed: int = DEFAULT_SEED,
    assumption: PriorAssumption = PriorAssumption.PRODUCT,
    serial_n: int = DEFAULT_SERIAL_N,
    serial_disclosures: int = DEFAULT_SERIAL_DISCLOSURES,
    resilience_repeats: int = DEFAULT_RESILIENCE_REPEATS,
    kernel_dims: Sequence[int] = DEFAULT_KERNEL_DIMS,
    kernel_boxes: int = DEFAULT_KERNEL_BOXES,
    kernel_repeats: int = DEFAULT_KERNEL_REPEATS,
    incremental_repeats: int = DEFAULT_INCREMENTAL_REPEATS,
    store_pairs: int = DEFAULT_STORE_PAIRS,
    store_repeats: int = DEFAULT_STORE_REPEATS,
    store_writers: int = DEFAULT_STORE_WRITERS,
    native_dims: Sequence[int] = DEFAULT_NATIVE_DIMS,
    native_boxes: int = DEFAULT_NATIVE_BOXES,
    native_mask_dims: Sequence[int] = DEFAULT_NATIVE_MASK_DIMS,
    native_mask_disclosures: int = DEFAULT_NATIVE_MASK_DISCLOSURES,
    native_repeats: int = DEFAULT_NATIVE_REPEATS,
    gateway_events: int = DEFAULT_GATEWAY_EVENTS,
    gateway_tenants: int = DEFAULT_GATEWAY_TENANTS,
    gateway_connections: int = DEFAULT_GATEWAY_CONNECTIONS,
    gateway_queue_limit: int = DEFAULT_GATEWAY_QUEUE_LIMIT,
    gateway_workers: int = DEFAULT_GATEWAY_WORKERS,
    gateway_repeats: int = DEFAULT_GATEWAY_REPEATS,
    symbolic_dims: Sequence[int] = DEFAULT_SYMBOLIC_DIMS,
) -> Dict[str, Any]:
    """Audit one synthetic log through all three pipelines and compare.

    Also runs the E15 serial-path sweep (at ``serial_n`` records), the E16
    resilience-overhead measurement, the E17 probabilistic hot-path
    section (kernel sweep over ``kernel_dims`` + pool dispatch economics),
    the E18 incremental re-audit measurement, the E19 verdict-store
    backend head-to-head (``store_pairs`` warm probe + concurrency soak),
    the E21 online-gateway replay (``gateway_events`` over
    ``gateway_tenants`` tenants), the E22 symbolic-backend crossover
    (mask vs SAT over ``symbolic_dims``, into the mask-infeasible
    ``n > 20`` regime), and the E23 gateway scale-out leg (the E21
    workload with ``gateway_workers`` forked shard executors and a
    mid-trace executor ``kill -9``, recovery asserted bit-identical),
    embedding all these sections in the returned document.
    """
    universe = build_registry()
    log = build_mixed_density_log(universe, n_events=n_events, seed=seed)
    policy = AuditPolicy(
        audit_query=parse_boolean_query(AUDIT_QUERY),
        assumption=assumption,
        name="bench-audit-pipeline",
    )

    auditor = OfflineAuditor(universe, policy)
    with Stopwatch() as seed_clock:
        seed_report = auditor.audit_log_serial(log)

    serial_engine = BatchAuditEngine(universe, policy, n_workers=1)
    with Stopwatch() as serial_clock:
        serial_report = serial_engine.audit_log(log)

    parallel_engine = BatchAuditEngine(universe, policy, n_workers=n_workers)
    with Stopwatch() as parallel_clock:
        parallel_report = parallel_engine.audit_log(log)

    # Forced-pool run: bypass the adaptive small-batch gate so the true
    # fork/pickle cost of the fan-out is on record alongside the default.
    forced_engine = BatchAuditEngine(
        universe, policy, n_workers=n_workers, parallel_threshold=0
    )
    with Stopwatch() as forced_clock:
        forced_report = forced_engine.audit_log(log)

    # Warm-cache rerun: the steady-state cost of re-auditing a known log.
    with Stopwatch() as warm_clock:
        warm_report = serial_engine.audit_log(log)

    if _statuses(serial_report) != _statuses(seed_report):
        raise AssertionError("batched engine disagrees with the seed loop")
    if _statuses(parallel_report) != _statuses(serial_report):
        raise AssertionError("parallel and serial engine reports differ")
    if _statuses(forced_report) != _statuses(serial_report):
        raise AssertionError("forced-pool engine report differs from serial")
    if _statuses(warm_report) != _statuses(serial_report):
        raise AssertionError("warm-cache rerun differs from cold run")

    events = len(list(log))
    dup = duplicate_fraction(serial_engine, log)
    document: Dict[str, Any] = {
        "benchmark": "audit_pipeline",
        "workload": {
            "events": events,
            "unique_answers": len(
                {s.fingerprint() for s in serial_engine.compile_log(log)}
            ),
            "duplicate_fraction": round(dup, 4),
            "n": universe.space.n,
            "assumption": assumption.value,
            "seed": seed,
        },
        "seed_loop": {
            "seconds": round(seed_clock.elapsed, 6),
            "events_per_sec": round(events / seed_clock.elapsed, 1),
        },
        "engine_serial": {
            "seconds": round(serial_clock.elapsed, 6),
            "events_per_sec": round(events / serial_clock.elapsed, 1),
            "cache": serial_report.cache_stats.as_dict(),
        },
        "engine_parallel": {
            "seconds": round(parallel_clock.elapsed, 6),
            "events_per_sec": round(events / parallel_clock.elapsed, 1),
            "n_workers": n_workers,
            "pool_engaged": parallel_engine.pool_engaged,
            "cache": parallel_report.cache_stats.as_dict(),
        },
        "engine_pool_forced": {
            "seconds": round(forced_clock.elapsed, 6),
            "events_per_sec": round(events / forced_clock.elapsed, 1),
            "n_workers": n_workers,
            "pool_engaged": forced_engine.pool_engaged,
            "dispatch": forced_engine.dispatch_stats.as_dict(),
            "pool_break_even_tasks": _format_break_even(
                forced_engine.pool_break_even()
            ),
        },
        "engine_warm": {
            "seconds": round(warm_clock.elapsed, 6),
            "events_per_sec": round(events / warm_clock.elapsed, 1),
        },
        "speedup_parallel_vs_seed": round(
            seed_clock.elapsed / parallel_clock.elapsed, 2
        ),
        "speedup_serial_vs_seed": round(
            seed_clock.elapsed / serial_clock.elapsed, 2
        ),
        "speedup_warm_vs_seed": round(seed_clock.elapsed / warm_clock.elapsed, 2),
        "verdict_identical": True,
        "counts": serial_report.counts(),
    }
    document["serial_path"] = run_serial_path_bench(
        n=serial_n, n_disclosures=serial_disclosures, seed=seed
    )
    document["resilience"] = run_resilience_bench(
        n_events=n_events, seed=seed, repeats=resilience_repeats
    )
    document["probabilistic"] = run_probabilistic_bench(
        dims=kernel_dims,
        max_boxes=kernel_boxes,
        repeats=kernel_repeats,
        n_events=n_events,
        n_workers=n_workers,
        seed=seed,
    )
    document["incremental"] = run_incremental_bench(
        n_events=n_events, seed=seed, repeats=incremental_repeats
    )
    document["store"] = run_store_bench(
        n_pairs=store_pairs,
        repeats=store_repeats,
        n_writers=store_writers,
        seed=seed,
    )
    document["native"] = run_native_bench(
        dims=native_dims,
        max_boxes=native_boxes,
        mask_dims=native_mask_dims,
        mask_disclosures=native_mask_disclosures,
        repeats=native_repeats,
        seed=seed,
    )
    document["gateway"] = run_gateway_bench(
        n_events=gateway_events,
        n_tenants=gateway_tenants,
        n_connections=gateway_connections,
        queue_limit=gateway_queue_limit,
        seed=seed,
        repeats=gateway_repeats,
    )
    # E23 — the same workload with multi-process shard executors and a
    # mid-trace kill -9 of one executor (recovery asserted bit-identical).
    document["gateway_scaleout"] = run_gateway_bench(
        n_events=gateway_events,
        n_tenants=gateway_tenants,
        n_connections=gateway_connections,
        queue_limit=gateway_queue_limit,
        seed=seed,
        workers=gateway_workers,
        kill_executor=True,
        repeats=gateway_repeats,
    )
    document["gateway_scaleout"]["speedup_vs_e21"] = round(
        document["gateway_scaleout"]["throughput"]["decisions_per_sec"]
        / document["gateway"]["throughput"]["decisions_per_sec"],
        2,
    )
    document["symbolic"] = run_symbolic_bench(dims=symbolic_dims, seed=seed)
    return document


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench",
        description="Benchmark the batched audit engine and write BENCH_audit_pipeline.json",
    )
    parser.add_argument("--events", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--assumption",
        choices=[a.value for a in PriorAssumption],
        default=PriorAssumption.PRODUCT.value,
    )
    parser.add_argument("--serial-n", type=int, default=DEFAULT_SERIAL_N)
    parser.add_argument(
        "--serial-disclosures", type=int, default=DEFAULT_SERIAL_DISCLOSURES
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="down-scale every workload for a quick CI sanity run",
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    resilience_repeats = DEFAULT_RESILIENCE_REPEATS
    kernel_dims: Sequence[int] = DEFAULT_KERNEL_DIMS
    kernel_boxes = DEFAULT_KERNEL_BOXES
    kernel_repeats = DEFAULT_KERNEL_REPEATS
    incremental_repeats = DEFAULT_INCREMENTAL_REPEATS
    store_pairs = DEFAULT_STORE_PAIRS
    store_repeats = DEFAULT_STORE_REPEATS
    native_dims: Sequence[int] = DEFAULT_NATIVE_DIMS
    native_boxes = DEFAULT_NATIVE_BOXES
    native_mask_dims: Sequence[int] = DEFAULT_NATIVE_MASK_DIMS
    native_mask_disclosures = DEFAULT_NATIVE_MASK_DISCLOSURES
    native_repeats = DEFAULT_NATIVE_REPEATS
    gateway_events = DEFAULT_GATEWAY_EVENTS
    gateway_tenants = DEFAULT_GATEWAY_TENANTS
    gateway_connections = DEFAULT_GATEWAY_CONNECTIONS
    gateway_repeats = DEFAULT_GATEWAY_REPEATS
    symbolic_dims: Sequence[int] = DEFAULT_SYMBOLIC_DIMS
    if args.smoke:
        args.events = min(args.events, 60)
        args.serial_n = min(args.serial_n, 8)
        args.serial_disclosures = min(args.serial_disclosures, 40)
        resilience_repeats = 1
        kernel_dims = (3, 4)
        kernel_boxes = 400
        kernel_repeats = 1
        incremental_repeats = 1
        store_pairs = 5_000
        store_repeats = 1
        native_dims = (3, 4)
        native_boxes = 400
        native_mask_dims = (10,)
        native_mask_disclosures = 60
        native_repeats = 1
        gateway_events = 400
        gateway_tenants = 24
        gateway_connections = 4
        gateway_repeats = 1
        symbolic_dims = (6, 8)

    document = run_bench(
        n_events=args.events,
        n_workers=args.workers,
        seed=args.seed,
        assumption=PriorAssumption(args.assumption),
        serial_n=args.serial_n,
        serial_disclosures=args.serial_disclosures,
        resilience_repeats=resilience_repeats,
        kernel_dims=kernel_dims,
        kernel_boxes=kernel_boxes,
        kernel_repeats=kernel_repeats,
        incremental_repeats=incremental_repeats,
        store_pairs=store_pairs,
        store_repeats=store_repeats,
        native_dims=native_dims,
        native_boxes=native_boxes,
        native_mask_dims=native_mask_dims,
        native_mask_disclosures=native_mask_disclosures,
        native_repeats=native_repeats,
        gateway_events=gateway_events,
        gateway_tenants=gateway_tenants,
        gateway_connections=gateway_connections,
        gateway_repeats=gateway_repeats,
        symbolic_dims=symbolic_dims,
    )
    path = write_bench_json(args.output, document)
    workload = document["workload"]
    print(f"wrote {path}")
    print(
        f"events={workload['events']}  unique answers={workload['unique_answers']}  "
        f"duplicates={workload['duplicate_fraction']:.0%}"
    )
    for name in (
        "seed_loop",
        "engine_serial",
        "engine_parallel",
        "engine_pool_forced",
        "engine_warm",
    ):
        row = document[name]
        print(f"{name:16s} {row['seconds']*1e3:9.1f} ms  {row['events_per_sec']:10.0f} ev/s")
    print(
        f"speedup vs seed: serial {document['speedup_serial_vs_seed']}x  "
        f"parallel({args.workers}w) {document['speedup_parallel_vs_seed']}x  "
        f"warm {document['speedup_warm_vs_seed']}x"
    )
    serial_path = document["serial_path"]
    sp_workload = serial_path["workload"]
    print(
        f"serial path (n={sp_workload['n']}, |Ω|={sp_workload['space_size']}, "
        f"{sp_workload['disclosures']} disclosures): "
        f"mask {serial_path['mask_backend']['seconds']*1e3:.1f} ms vs "
        f"frozenset {serial_path['frozenset_reference']['seconds']*1e3:.1f} ms "
        f"→ {serial_path['speedup_serial_path']}x"
    )
    resilience = document["resilience"]
    print(
        f"resilience overhead (budget "
        f"{resilience['workload']['decision_budget_seconds']}s + breaker): "
        f"plain {resilience['engine_plain']['seconds']*1e3:.1f} ms vs "
        f"armed {resilience['engine_armed']['seconds']*1e3:.1f} ms "
        f"→ {resilience['overhead_fraction']:+.1%}"
    )
    probabilistic = document["probabilistic"]
    for row in probabilistic["kernel"]["dims"]:
        print(
            f"kernel n={row['n']}: scalar {row['scalar_us_per_box']:7.1f} µs/box  "
            f"batched {row['batched_us_per_box']:7.1f} µs/box  "
            f"→ {row['speedup']}x"
        )
    pool = probabilistic["pool"]
    chunked = pool["chunked"]["dispatch"]
    print(
        f"pool dispatch ({pool['workload']['n_workers']}w on "
        f"{pool['workload']['cpu_count']} cpu): per-task "
        f"{pool['per_task']['seconds']*1e3:.1f} ms vs chunked "
        f"{pool['chunked']['seconds']*1e3:.1f} ms "
        f"→ {pool['speedup_chunked_vs_per_task']}x  "
        f"(overhead {chunked['per_task_overhead'] or 0:.2e} s/task, "
        f"break-even {pool['pool_break_even_tasks']} tasks)"
    )
    incremental = document["incremental"]
    warm_store = incremental["incremental_warm"]["store"]
    print(
        f"incremental re-audit (+{incremental['workload']['append_events']} events): "
        f"serial {incremental['serial_scratch']['seconds']*1e3:.1f} ms vs "
        f"cold {incremental['incremental_cold']['seconds']*1e3:.1f} ms vs "
        f"warm {incremental['incremental_warm']['seconds']*1e3:.1f} ms "
        f"→ warm {incremental['speedup_warm_vs_serial']}x "
        f"({warm_store['hits']} store hits)"
    )
    store_doc = document["store"]
    print(
        f"store warm probe ({store_doc['workload']['pairs']} pairs): "
        f"json {store_doc['json']['warm_probe_seconds']*1e3:.1f} ms vs "
        f"sqlite {store_doc['sqlite']['warm_probe_seconds']*1e3:.1f} ms "
        f"→ {store_doc['speedup_sqlite_vs_json']}x "
        f"(target ≥{store_doc['warm_probe_target']}x: "
        f"{'met' if store_doc['warm_probe_target_met'] else 'not met'})"
    )
    for soak in store_doc["concurrent_soak"]:
        print(
            f"store soak [{soak['backend']}]: {soak['writers']} writers x "
            f"{soak['pairs_per_writer']} pairs in {soak['seconds']*1e3:.1f} ms, "
            f"union complete, 0 load failures"
        )
    native_doc = document["native"]
    print(f"native backend: {native_doc['backend']['name']}")
    for row in native_doc["kernel"]:
        native_part = (
            f"  native {row['native_us_per_box']:7.1f} µs/box "
            f"→ {row['speedup_native_vs_scalar']}x"
            if "native_us_per_box" in row
            else "  (extension not built)"
        )
        print(
            f"native kernel n={row['n']}: scalar "
            f"{row['scalar_us_per_box']:7.1f} µs/box  fallback "
            f"{row['fallback_us_per_box']:7.1f} µs/box"
            f"{native_part}"
        )
    for row in native_doc["mask_sweep"]:
        print(
            f"mask sweep n={row['n']} (|Ω|={row['space_size']}, "
            f"{row['origins']} origins): bigint "
            f"{row['bigint_seconds']*1e3:.1f} ms vs word "
            f"{row['word_seconds']*1e3:.1f} ms "
            f"→ {row['speedup_word_vs_bigint']}x"
        )
    gateway = document["gateway"]
    gw_workload = gateway["workload"]
    print(
        f"gateway ({gw_workload['events']} events / {gw_workload['tenants']} "
        f"tenants / {gw_workload['connections']} conns): "
        f"{gateway['throughput']['decisions_per_sec']:.0f} decisions/s  "
        f"p50 {gateway['latency_ms']['p50']:.1f} ms  "
        f"p99 {gateway['latency_ms']['p99']:.1f} ms  "
        f"shed rate {gateway['admission']['shed_rate']:.1%}  "
        f"drain {'clean' if gateway['drain']['clean_drain'] else 'DIRTY'}"
    )
    batching = gateway["batching"]
    print(
        f"gateway batching: {batching.get('commit_rounds', 0)} commit rounds  "
        f"mean depth {batching.get('batch_mean', 0.0):.1f}  "
        f"max {batching.get('batch_max', 0)}  "
        f"fsyncs saved {batching.get('fsyncs_saved', 0)}"
    )
    scaleout = document["gateway_scaleout"]
    so_batching = scaleout["batching"]
    so_recovery = scaleout["recovery"] or {}
    print(
        f"gateway scale-out ({scaleout['workload']['workers']} executors, "
        f"kill -9 mid-trace): "
        f"{scaleout['throughput']['decisions_per_sec']:.0f} decisions/s "
        f"({scaleout['speedup_vs_e21']}x vs single)  "
        f"p99 {scaleout['latency_ms']['p99']:.1f} ms  "
        f"restarts {so_batching.get('executor_restarts', 0)}  "
        f"recovery {'bit-identical' if so_recovery.get('bit_identical') else 'UNVERIFIED'}"
    )
    symbolic = document["symbolic"]
    print(f"symbolic backend: {symbolic['backend']['name']}")
    for row in symbolic["crossover"]:
        mask_part = (
            f"mask {row['mask_seconds']*1e3:9.1f} ms "
            f"→ {row['speedup_symbolic_vs_mask']}x"
            if row["mask_seconds"] is not None
            else f"mask {row['mask']}"
        )
        print(
            f"symbolic n={row['n']:2d} [{row['assumption']}]: "
            f"sat {row['symbolic_seconds']*1e3:7.1f} ms  {mask_part}"
        )
    if symbolic["big_n"] is not None:
        head = symbolic["big_n"]
        print(
            f"symbolic big-n headline: n={head['n']} subcubes decided "
            f"{head['status']} in {head['seconds']*1e3:.1f} ms "
            f"({'within' if head['under_budget'] else 'OVER'} "
            f"{head['budget_seconds']}s budget)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

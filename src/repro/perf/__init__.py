"""Performance instrumentation shared by the audit engine and benchmarks.

Small, dependency-free helpers: :class:`CacheStats` counters (surfaced on
:class:`~repro.audit.offline.AuditReport` and by the interval oracles),
a :class:`Stopwatch` for wall-clock sections, and the ``BENCH_*.json``
artifact writer used to track the perf trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

__all__ = [
    "CacheStats",
    "Stopwatch",
    "machine_info",
    "write_bench_json",
]


@dataclass
class CacheStats:
    """Hit/miss counters of one cache, with a derived hit rate.

    ``hits`` counts lookups served without recomputation — including
    duplicates answered by a decision scheduled earlier in the same batch.
    """

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combined counters of two caches (e.g. verdict + compile caches)."""
        return CacheStats(self.hits + other.hits, self.misses + other.misses)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __str__(self) -> str:
        return f"{self.hits} hits / {self.misses} misses ({self.hit_rate:.1%})"


class Stopwatch:
    """Context manager measuring a wall-clock section.

    >>> with Stopwatch() as clock:
    ...     do_work()
    >>> clock.elapsed  # seconds
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._start = None


def machine_info() -> Dict[str, Any]:
    """The environment fields stamped into every bench artifact.

    Besides the interpreter and host, this records the NumPy version and
    which decision-kernel backend (``native`` or ``numpy-fallback``) was
    selected — a bench number is meaningless without knowing which kernel
    produced it.  Lazy imports keep this module dependency-free for
    callers that never write artifacts.
    """
    info: Dict[str, Any] = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }
    try:
        import numpy

        info["numpy"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        info["numpy"] = None
    try:
        from .. import _native

        info["kernel_backend"] = _native.backend_name()
    except Exception:  # pragma: no cover - backend probing must never fail
        info["kernel_backend"] = None
    try:
        import z3  # type: ignore[import-not-found]

        info["z3"] = z3.get_version_string()
    except Exception:
        info["z3"] = None
    try:
        from ..symbolic import backend_name

        info["decision_backend"] = backend_name()
    except Exception:  # pragma: no cover - backend probing must never fail
        info["decision_backend"] = None
    return info


def write_bench_json(
    path: Union[str, pathlib.Path], document: Dict[str, Any]
) -> pathlib.Path:
    """Write a ``BENCH_*.json`` artifact (machine info added under ``env``).

    The artifact is the cross-PR perf record: benchmarks append measured
    events/sec, cache hit rates and speedups here so regressions are visible
    in review diffs.
    """
    path = pathlib.Path(path)
    document = dict(document)
    document.setdefault("env", machine_info())
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path

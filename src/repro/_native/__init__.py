"""Backend selection for the native decision kernels (E20).

Two interchangeable implementations of the hot kernels live behind this
package:

* an optional C extension (``repro._native._kernels``) built best-effort by
  ``setup.py build_ext`` — a fused de Casteljau split + enclosure kernel
  that replaces three NumPy sweeps with one pass over the preallocated
  ``(batch, 3**n)`` pools, and
* the mandatory pure-NumPy fallback, which is simply the existing vectorised
  code path in :mod:`repro.probabilistic.exact`.

Selection is a process-wide singleton resolved lazily on first use and
toggled by the ``REPRO_NATIVE`` environment variable:

``auto``     (default) use the C extension when it imports, else fall back
             silently — a missing compiler must never change a verdict.
``off``      never import the extension; the NumPy path runs with zero
             native code loaded.
``require``  raise :class:`~repro.exceptions.NativeBackendError` when the
             extension cannot be loaded — for CI legs that must prove the
             compiled path is actually exercised.

The chaos harness participates through the ``native-load`` fault site
(:mod:`repro.runtime.faults`): a fired probe during :func:`configure` makes
the extension look unloadable, which forces the fallback under ``auto`` and
raises under ``require``.  Faults move provenance (which backend ran), never
verdicts — both backends are verdict-identical by construction and the
randomized three-way suite in ``tests/probabilistic/test_native_kernel.py``
enforces it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..exceptions import NativeBackendError
from ..runtime import faults

__all__ = [
    "Backend",
    "ENV_NATIVE",
    "MODES",
    "backend",
    "backend_name",
    "configure",
    "native_loaded",
]

ENV_NATIVE = "REPRO_NATIVE"
MODES = ("auto", "off", "require")

#: Backend names as reported on RuntimeStats / bench env blocks.
NATIVE = "native"
FALLBACK = "numpy-fallback"


@dataclass(frozen=True)
class Backend:
    """The resolved kernel backend for this process.

    ``fused_split`` is the raw C entry point (or ``None`` on the fallback):

    ``fused_split(parents, axes, left, right, child_min, corners,
    corner_idx, n)`` — for each row ``i`` of ``parents`` (a C-contiguous
    ``(count, 3**n)`` float64 block) split along ``axes[i]`` with the exact
    midpoint de Casteljau arithmetic of
    :func:`repro.probabilistic.exact.bernstein_split`, writing the child
    coefficient rows into ``left[i]`` / ``right[i]``, the per-child
    coefficient minima into ``child_min[:count]`` / ``child_min[count:]``,
    and gathering the corner coefficients ``row[corner_idx]`` of each child
    into ``corners``.  One pass, no intermediate sweeps.

    ``select_axes(sel, ubs, best_axis, n)`` is the compiled counterpart of
    :func:`repro.probabilistic.exact._lazy_split_axes`: per-row worst
    split-axis selection gated by the inherited variation bounds in ``ubs``
    (tightened in place), writing the chosen axes into ``best_axis``.  Both
    entry points are ``None`` on the fallback.
    """

    name: str
    mode: str
    fused_split: Optional[Callable[..., Any]]
    select_axes: Optional[Callable[..., Any]] = None
    load_error: Optional[str] = None


_BACKEND: Optional[Backend] = None


def _load_extension() -> "tuple[Optional[Any], Optional[str]]":
    """Import the compiled module; any failure is reported, never raised."""
    if faults.fire(faults.NATIVE_LOAD):
        return None, "fault-injected: native-load"
    try:
        from . import _kernels  # type: ignore[attr-defined]
    except Exception as exc:  # pragma: no cover - depends on build env
        return None, f"{type(exc).__name__}: {exc}"
    return _kernels, None


def configure(mode: Optional[str] = None) -> Backend:
    """Resolve (and cache) the backend; ``mode=None`` re-reads the env.

    Explicit modes override ``REPRO_NATIVE`` — tests use this to pin the
    fallback (``configure("off")``) around an equivalence run and restore
    the environment's choice afterwards with ``configure(None)``.
    """
    global _BACKEND
    if mode is None:
        mode = os.environ.get(ENV_NATIVE, "auto").strip().lower() or "auto"
    if mode not in MODES:
        raise ValueError(
            f"unknown {ENV_NATIVE} mode {mode!r}; expected one of {', '.join(MODES)}"
        )
    if mode == "off":
        _BACKEND = Backend(name=FALLBACK, mode=mode, fused_split=None)
        return _BACKEND
    module, error = _load_extension()
    if module is not None:
        _BACKEND = Backend(
            name=NATIVE,
            mode=mode,
            fused_split=module.fused_split,
            select_axes=module.select_axes,
        )
        return _BACKEND
    if mode == "require":
        raise NativeBackendError(
            f"{ENV_NATIVE}=require but the native extension failed to load: {error}"
        )
    _BACKEND = Backend(name=FALLBACK, mode=mode, fused_split=None, load_error=error)
    return _BACKEND


def backend() -> Backend:
    """The cached backend, resolving it from the environment on first use."""
    if _BACKEND is None:
        return configure(None)
    return _BACKEND


def backend_name() -> str:
    return backend().name


def native_loaded() -> bool:
    return backend().fused_split is not None

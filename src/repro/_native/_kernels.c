/* Fused de Casteljau split + enclosure kernel for the batched Bernstein
 * branch and bound (repro.probabilistic.exact).
 *
 * One pass per box over the C-contiguous (count, 3**n) coefficient pool:
 * midpoint split along the box's worst axis, per-child coefficient minimum
 * (the Bernstein lower bound), and corner-coefficient gather (exact values,
 * the UNSAFE witness check) — replacing three separate NumPy sweeps, which
 * is the memory-bandwidth fix at n = 8 where each sweep re-streams ~6561
 * doubles per child from DRAM.
 *
 * The arithmetic mirrors exact.bernstein_split bit for bit:
 *     m01 = 0.5*(b0+b1); m12 = 0.5*(b1+b2); mid = 0.5*(m01+m12)
 * (multiplication by 0.5 is exact; the sums are evaluated in the same
 * order as the NumPy path, and no expression here has the mul-add shape
 * that FP contraction could fuse), so verdicts are identical to the
 * fallback by construction — enforced by the randomized three-way suite in
 * tests/probabilistic/test_native_kernel.py.
 */

#define PY_SSIZE_T_CLEAN
#define NPY_NO_DEPRECATED_API NPY_1_7_API_VERSION

#include <Python.h>
#include <math.h>
#include <numpy/arrayobject.h>

static int
check_array(PyArrayObject *arr, int typenum, int ndim, const char *name)
{
    if (!PyArray_Check(arr)) {
        PyErr_Format(PyExc_TypeError, "%s: expected an ndarray", name);
        return 0;
    }
    if (PyArray_NDIM(arr) != ndim) {
        PyErr_Format(PyExc_ValueError, "%s: expected %d dimensions, got %d",
                     name, ndim, PyArray_NDIM(arr));
        return 0;
    }
    if (!PyArray_EquivTypenums(PyArray_TYPE(arr), typenum)) {
        PyErr_Format(PyExc_TypeError, "%s: wrong dtype", name);
        return 0;
    }
    if (!PyArray_IS_C_CONTIGUOUS(arr)) {
        PyErr_Format(PyExc_ValueError, "%s: must be C-contiguous", name);
        return 0;
    }
    return 1;
}

/* fused_split(parents, axes, left, right, child_min, corners, corner_idx, n)
 *
 * parents    (count, 3**n) float64   parent coefficient rows
 * axes       (count,)      int64     split axis per row (0 .. n-1)
 * left       (count, 3**n) float64   out: low-half children
 * right      (count, 3**n) float64   out: high-half children
 * child_min  (2*count,)    float64   out: min coeff, left rows then right
 * corners    (2*count, 2**n) float64 out: corner coeffs, same row layout
 * corner_idx (2**n,)       int64     flat corner positions (exact._corner_flat)
 * n          int                     tensor rank
 */
static PyObject *
fused_split(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyArrayObject *parents, *axes, *left, *right, *child_min, *corners,
        *corner_idx;
    int n;
    npy_intp pow3[21];
    npy_intp count, size, ncorner, i;

    if (!PyArg_ParseTuple(args, "O!O!O!O!O!O!O!i",
                          &PyArray_Type, &parents, &PyArray_Type, &axes,
                          &PyArray_Type, &left, &PyArray_Type, &right,
                          &PyArray_Type, &child_min, &PyArray_Type, &corners,
                          &PyArray_Type, &corner_idx, &n))
        return NULL;

    if (!check_array(parents, NPY_DOUBLE, 2, "parents") ||
        !check_array(axes, NPY_INT64, 1, "axes") ||
        !check_array(left, NPY_DOUBLE, 2, "left") ||
        !check_array(right, NPY_DOUBLE, 2, "right") ||
        !check_array(child_min, NPY_DOUBLE, 1, "child_min") ||
        !check_array(corners, NPY_DOUBLE, 2, "corners") ||
        !check_array(corner_idx, NPY_INT64, 1, "corner_idx"))
        return NULL;

    if (n < 1 || n > 20) {
        PyErr_Format(PyExc_ValueError, "n out of range: %d", n);
        return NULL;
    }
    pow3[0] = 1;
    for (i = 0; i < n; i++)
        pow3[i + 1] = pow3[i] * 3;

    count = PyArray_DIM(parents, 0);
    size = PyArray_DIM(parents, 1);
    ncorner = PyArray_DIM(corner_idx, 0);

    if (size != pow3[n]) {
        PyErr_Format(PyExc_ValueError,
                     "parents row length %" NPY_INTP_FMT
                     " does not match 3**%d", size, n);
        return NULL;
    }
    if (PyArray_DIM(axes, 0) != count ||
        PyArray_DIM(left, 0) != count || PyArray_DIM(left, 1) != size ||
        PyArray_DIM(right, 0) != count || PyArray_DIM(right, 1) != size ||
        PyArray_DIM(child_min, 0) != 2 * count ||
        PyArray_DIM(corners, 0) != 2 * count ||
        PyArray_DIM(corners, 1) != ncorner) {
        PyErr_SetString(PyExc_ValueError, "output buffer shapes do not match");
        return NULL;
    }

    {
        const double *P = (const double *)PyArray_DATA(parents);
        const npy_int64 *A = (const npy_int64 *)PyArray_DATA(axes);
        const npy_int64 *CI = (const npy_int64 *)PyArray_DATA(corner_idx);
        double *L = (double *)PyArray_DATA(left);
        double *R = (double *)PyArray_DATA(right);
        double *M = (double *)PyArray_DATA(child_min);
        double *C = (double *)PyArray_DATA(corners);
        int bad_axis = 0, bad_corner = 0;
        npy_intp k;

        for (k = 0; k < count; k++) {
            if (A[k] < 0 || A[k] >= n)
                bad_axis = 1;
        }
        for (k = 0; k < ncorner; k++) {
            if (CI[k] < 0 || CI[k] >= size)
                bad_corner = 1;
        }
        if (bad_axis) {
            PyErr_SetString(PyExc_ValueError, "axes entry out of range");
            return NULL;
        }
        if (bad_corner) {
            PyErr_SetString(PyExc_ValueError, "corner_idx entry out of range");
            return NULL;
        }

        Py_BEGIN_ALLOW_THREADS
        for (i = 0; i < count; i++) {
            const double *p = P + i * size;
            double *l = L + i * size;
            double *r = R + i * size;
            double *cl = C + i * ncorner;
            double *cr = C + (count + i) * ncorner;
            const npy_intp post = pow3[n - 1 - A[i]];
            const npy_intp step = 3 * post;
            double lmin = INFINITY, rmin = INFINITY;
            npy_intp base, j;

            for (base = 0; base < size; base += step) {
                const double *pb = p + base;
                double *lb = l + base;
                double *rb = r + base;
                for (j = 0; j < post; j++) {
                    const double b0 = pb[j];
                    const double b1 = pb[j + post];
                    const double b2 = pb[j + 2 * post];
                    const double m01 = 0.5 * (b0 + b1);
                    const double m12 = 0.5 * (b1 + b2);
                    const double mid = 0.5 * (m01 + m12);
                    lb[j] = b0;
                    lb[j + post] = m01;
                    lb[j + 2 * post] = mid;
                    rb[j] = mid;
                    rb[j + post] = m12;
                    rb[j + 2 * post] = b2;
                    if (b0 < lmin) lmin = b0;
                    if (m01 < lmin) lmin = m01;
                    if (mid < lmin) lmin = mid;
                    if (mid < rmin) rmin = mid;
                    if (m12 < rmin) rmin = m12;
                    if (b2 < rmin) rmin = b2;
                }
            }
            M[i] = lmin;
            M[count + i] = rmin;
            for (j = 0; j < ncorner; j++) {
                cl[j] = l[CI[j]];
                cr[j] = r[CI[j]];
            }
        }
        Py_END_ALLOW_THREADS
    }
    Py_RETURN_NONE;
}

/* select_axes(sel, ubs, best_axis, n)
 *
 * sel       (count, 3**n) float64   coefficient rows
 * ubs       (count, n)    float64   per-axis variation upper bounds,
 *                                   tightened IN PLACE on measured axes
 * best_axis (count,)      int64     out: worst split axis per row
 * n         int                     tensor rank
 *
 * The compiled counterpart of exact._lazy_split_axes, row at a time: keep
 * measuring the largest still-unmeasured bound until no remaining bound can
 * beat the best measured axis (first index wins ties, matching np.argmax).
 * A measurement is one strided max|adjacent diff| pass over the row — the
 * same subtractions as exact._axis_variation in the same precision, and max
 * reductions are order-independent, so the chosen axes (and the tightened
 * bounds the children inherit) are bit-identical to the NumPy path.
 */
static PyObject *
select_axes(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyArrayObject *sel, *ubs, *best_axis;
    int n;
    npy_intp pow3[21];
    npy_intp count, size, i;

    if (!PyArg_ParseTuple(args, "O!O!O!i",
                          &PyArray_Type, &sel, &PyArray_Type, &ubs,
                          &PyArray_Type, &best_axis, &n))
        return NULL;

    if (!check_array(sel, NPY_DOUBLE, 2, "sel") ||
        !check_array(ubs, NPY_DOUBLE, 2, "ubs") ||
        !check_array(best_axis, NPY_INT64, 1, "best_axis"))
        return NULL;

    if (n < 1 || n > 20) {
        PyErr_Format(PyExc_ValueError, "n out of range: %d", n);
        return NULL;
    }
    pow3[0] = 1;
    for (i = 0; i < n; i++)
        pow3[i + 1] = pow3[i] * 3;

    count = PyArray_DIM(sel, 0);
    size = PyArray_DIM(sel, 1);
    if (size != pow3[n]) {
        PyErr_Format(PyExc_ValueError,
                     "sel row length %" NPY_INTP_FMT
                     " does not match 3**%d", size, n);
        return NULL;
    }
    if (PyArray_DIM(ubs, 0) != count || PyArray_DIM(ubs, 1) != n ||
        PyArray_DIM(best_axis, 0) != count) {
        PyErr_SetString(PyExc_ValueError, "buffer shapes do not match");
        return NULL;
    }

    {
        const double *S = (const double *)PyArray_DATA(sel);
        double *U = (double *)PyArray_DATA(ubs);
        npy_int64 *BA = (npy_int64 *)PyArray_DATA(best_axis);

        Py_BEGIN_ALLOW_THREADS
        for (i = 0; i < count; i++) {
            const double *row = S + i * size;
            double *ub = U + i * n;
            double masked[21];
            double best = -INFINITY;
            npy_intp best_ax = n;  /* sentinel: any tie triggers a measure */
            npy_intp ax;

            for (ax = 0; ax < n; ax++)
                masked[ax] = ub[ax];
            for (;;) {
                npy_intp cand = 0;
                double cand_ub, var;
                npy_intp post, step, base, j;

                for (ax = 1; ax < n; ax++)
                    if (masked[ax] > masked[cand])
                        cand = ax;
                cand_ub = masked[cand];
                if (!(cand_ub > best || (cand_ub == best && cand < best_ax)))
                    break;
                post = pow3[n - 1 - cand];
                step = 3 * post;
                var = -INFINITY;
                for (base = 0; base < size; base += step) {
                    const double *rb = row + base;
                    for (j = 0; j < post; j++) {
                        /* fabs+fmax == max(d, -d) for the finite values here
                         * (a -0.0/+0.0 difference cannot change any later
                         * comparison), and the form vectorises. */
                        const double a0 = fabs(rb[j + post] - rb[j]);
                        const double a1 = fabs(rb[j + 2 * post] - rb[j + post]);
                        const double a = a0 > a1 ? a0 : a1;
                        if (a > var) var = a;
                    }
                }
                ub[cand] = var;
                masked[cand] = -INFINITY;
                if (var > best || (var == best && cand < best_ax)) {
                    best = var;
                    best_ax = cand;
                }
            }
            BA[i] = best_ax;
        }
        Py_END_ALLOW_THREADS
    }
    Py_RETURN_NONE;
}

static PyMethodDef kernel_methods[] = {
    {"fused_split", fused_split, METH_VARARGS,
     "Fused de Casteljau split + min enclosure + corner gather."},
    {"select_axes", select_axes, METH_VARARGS,
     "Lazy per-row worst-split-axis selection with in-place bound tightening."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernels_module = {
    PyModuleDef_HEAD_INIT,
    "repro._native._kernels",
    "Compiled hot loops for the Bernstein branch and bound.",
    -1,
    kernel_methods,
    NULL, NULL, NULL, NULL,
};

PyMODINIT_FUNC
PyInit__kernels(void)
{
    import_array();
    return PyModule_Create(&kernels_module);
}

"""A minimal semidefinite feasibility solver built on alternating projections.

The sum-of-squares heuristic of Section 6.2 is "proven using semidefinite
programming" (Proposition 6.4).  No SDP package is available offline, so we
implement the one primitive the heuristic needs: find positive semidefinite
matrices ``Q₁, …, Q_k`` satisfying a set of affine constraints.  Both the PSD
cone and an affine subspace are easy to project onto (eigenvalue clipping
and a least-squares step respectively), and alternating projections between
two closed convex sets converge to a point of their intersection whenever it
is non-empty — which is exactly a feasibility oracle.

See DESIGN.md ("Substitutions") for why this preserves the paper's observable
behaviour: found certificates are re-verified symbolically by the callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import SolverConfigurationError, StageTimeoutError
from ..runtime import faults
from ..runtime.budget import Budget

#: Eigenvalues above this (relative to the largest) are kept in PSD projections.
_EIG_CLIP = 0.0

#: Residual checks between budget polls / stall checks in the iterative solvers.
_CHECK_EVERY = 50


def project_psd(matrix: np.ndarray) -> np.ndarray:
    """The nearest (Frobenius) positive semidefinite matrix.

    Symmetrises first, then clips negative eigenvalues to zero.
    """
    sym = 0.5 * (matrix + matrix.T)
    eigenvalues, eigenvectors = np.linalg.eigh(sym)
    clipped = np.clip(eigenvalues, _EIG_CLIP, None)
    return (eigenvectors * clipped) @ eigenvectors.T


@dataclass
class AffineSystem:
    """The affine constraints ``A·v = b`` over the concatenated matrix entries.

    Rows are built sparsely via ``add_constraint`` and densified once.  The
    projection ``v ↦ v − Aᵀ(AAᵀ)⁺(Av − b)`` is precomputed through a
    pseudo-inverse so each iteration is two mat-vecs.
    """

    dimension: int

    def __post_init__(self) -> None:
        self._rows: List[Dict[int, float]] = []
        self._rhs: List[float] = []
        self._matrix: Optional[np.ndarray] = None
        self._gram_pinv: Optional[np.ndarray] = None

    def add_constraint(self, coefficients: Dict[int, float], rhs: float) -> None:
        """Add one row ``Σ coeff[i]·v[i] = rhs``."""
        if self._matrix is not None:
            raise RuntimeError("system already finalised")
        self._rows.append(dict(coefficients))
        self._rhs.append(float(rhs))

    @property
    def n_constraints(self) -> int:
        return len(self._rows)

    def finalise(self) -> None:
        matrix = np.zeros((len(self._rows), self.dimension))
        for r, row in enumerate(self._rows):
            for col, coef in row.items():
                matrix[r, col] = coef
        self._matrix = matrix
        self._gram_pinv = np.linalg.pinv(matrix @ matrix.T, rcond=1e-12)

    def project(self, vector: np.ndarray) -> np.ndarray:
        """Orthogonal projection onto the affine subspace."""
        if self._matrix is None:
            self.finalise()
        residual = self._matrix @ vector - np.asarray(self._rhs)
        return vector - self._matrix.T @ (self._gram_pinv @ residual)

    def residual_norm(self, vector: np.ndarray) -> float:
        if self._matrix is None:
            self.finalise()
        if self._matrix.shape[0] == 0:
            return 0.0
        return float(np.max(np.abs(self._matrix @ vector - np.asarray(self._rhs))))

    def is_consistent(self, tol: float = 1e-9) -> bool:
        """Whether the affine system alone admits a solution."""
        if self._matrix is None:
            self.finalise()
        if self._matrix.shape[0] == 0:
            return True
        solution, *_ = np.linalg.lstsq(self._matrix, np.asarray(self._rhs), rcond=None)
        return self.residual_norm(solution) <= tol


@dataclass(frozen=True)
class FeasibilityResult:
    """Outcome of the alternating-projection run."""

    matrices: Optional[List[np.ndarray]]
    iterations: int
    affine_residual: float
    psd_residual: float

    @property
    def feasible(self) -> bool:
        return self.matrices is not None


def _split(vector: np.ndarray, sizes: Sequence[int]) -> List[np.ndarray]:
    blocks = []
    offset = 0
    for size in sizes:
        blocks.append(vector[offset : offset + size * size].reshape(size, size))
        offset += size * size
    return blocks


def _join(blocks: Sequence[np.ndarray]) -> np.ndarray:
    return np.concatenate([block.ravel() for block in blocks])


def _alternating_projections(
    block_sizes: Sequence[int],
    system: AffineSystem,
    max_iterations: int,
    tolerance: float,
    rng: np.random.Generator,
    budget: Optional[Budget] = None,
) -> FeasibilityResult:
    """Von Neumann alternating projections between the PSD cone and the
    affine subspace.  Reliable when the intersection has interior; slow on
    boundary (rank-deficient) solutions, hence used as a fallback.

    Convergence guard: residuals that stop improving by ≥1% across 40
    checks (2000 iterations) abort early — infeasible systems plateau, and
    grinding out the remaining iteration budget on them proves nothing.  An
    expired ``budget`` aborts at the next residual check.
    """
    total = int(sum(size * size for size in block_sizes))
    vector = rng.normal(0.0, 1e-3, size=total)
    best_residual = np.inf
    checks_since_improvement = 0
    for iteration in range(1, max_iterations + 1):
        vector = system.project(vector)
        blocks = [project_psd(block) for block in _split(vector, block_sizes)]
        vector = _join(blocks)
        residual = system.residual_norm(vector)
        if residual <= tolerance:
            return FeasibilityResult(
                matrices=blocks,
                iterations=iteration,
                affine_residual=residual,
                psd_residual=0.0,
            )
        if residual < best_residual * 0.99:
            best_residual = min(best_residual, residual)
            checks_since_improvement = 0
        elif iteration % _CHECK_EVERY == 0:
            best_residual = min(best_residual, residual)
            checks_since_improvement += 1
            if checks_since_improvement >= 40 or (
                budget is not None and budget.expired
            ):
                return FeasibilityResult(
                    matrices=None,
                    iterations=iteration,
                    affine_residual=best_residual,
                    psd_residual=0.0,
                )
        else:
            best_residual = min(best_residual, residual)
    return FeasibilityResult(
        matrices=None,
        iterations=max_iterations,
        affine_residual=best_residual,
        psd_residual=0.0,
    )


def _burer_monteiro(
    block_sizes: Sequence[int],
    system: AffineSystem,
    restarts: int,
    tolerance: float,
    rng: np.random.Generator,
    budget: Optional[Budget] = None,
) -> FeasibilityResult:
    """Burer–Monteiro factorisation: parametrise each block as ``L·Lᵀ``
    (automatically PSD) and minimise ``‖A·vec − b‖²`` over the factors with
    L-BFGS.  Non-convex, but full-rank factors make spurious local minima
    rare in practice; any output is re-verified by the caller anyway."""
    from scipy import optimize as sp_optimize

    if system._matrix is None:  # noqa: SLF001 - intra-module access
        system.finalise()
    a_matrix = system._matrix  # noqa: SLF001
    b_vector = np.asarray(system._rhs)  # noqa: SLF001
    sizes = list(block_sizes)
    factor_len = int(sum(size * size for size in sizes))

    def unpack(theta: np.ndarray) -> List[np.ndarray]:
        factors = []
        offset = 0
        for size in sizes:
            factors.append(theta[offset : offset + size * size].reshape(size, size))
            offset += size * size
        return factors

    def objective(theta: np.ndarray):
        factors = unpack(theta)
        vector = _join([f @ f.T for f in factors])
        residual = a_matrix @ vector - b_vector
        value = float(residual @ residual)
        back = a_matrix.T @ residual  # d(value)/d(vec), up to factor 2
        grads = []
        offset = 0
        for f, size in zip(factors, sizes):
            m = back[offset : offset + size * size].reshape(size, size)
            grads.append((2.0 * (m + m.T) @ f).ravel())
            offset += size * size
        return value, np.concatenate(grads)

    iterations = 0
    best = np.inf
    for restart in range(restarts):
        if restart and budget is not None and budget.expired:
            break  # deadline passed: report the best residual seen so far
        theta0 = rng.normal(0.0, 0.5, size=factor_len)
        result = sp_optimize.minimize(
            objective, theta0, jac=True, method="L-BFGS-B",
            options={"maxiter": 8000, "maxfun": 20000, "ftol": 1e-20, "gtol": 1e-16},
        )
        iterations += int(result.nit)
        value = float(result.fun)
        best = min(best, value)
        blocks = [f @ f.T for f in unpack(np.asarray(result.x))]
        residual = system.residual_norm(_join(blocks))
        if residual <= tolerance:
            return FeasibilityResult(
                matrices=blocks,
                iterations=iterations,
                affine_residual=residual,
                psd_residual=0.0,
            )
    return FeasibilityResult(
        matrices=None,
        iterations=iterations,
        affine_residual=float(np.sqrt(max(best, 0.0))),
        psd_residual=0.0,
    )


def _admm(
    block_sizes: Sequence[int],
    system: AffineSystem,
    max_iterations: int,
    tolerance: float,
    budget: Optional[Budget] = None,
) -> FeasibilityResult:
    """Douglas–Rachford / ADMM splitting between the PSD cone and the
    affine subspace.  Unlike plain alternating projections, the dual
    variable lets the iterates slide along tangential intersections, which
    is exactly the geometry of rank-deficient SOS solutions."""
    total = int(sum(size * size for size in block_sizes))
    z = np.zeros(total)
    u = np.zeros(total)
    x = z
    check_every = _CHECK_EVERY
    best_residual = np.inf
    checks_since_improvement = 0
    for iteration in range(1, max_iterations + 1):
        x = _join([project_psd(m) for m in _split(z - u, block_sizes)])
        z = system.project(x + u)
        u = u + x - z
        if iteration % check_every == 0:
            residual = system.residual_norm(x)
            if residual <= tolerance:
                return FeasibilityResult(
                    matrices=_split(x, block_sizes),
                    iterations=iteration,
                    affine_residual=residual,
                    psd_residual=0.0,
                )
            # Stall detection: infeasible systems plateau; feasible ones keep
            # descending.  Give up after 40 checks (2000 iterations) without
            # at least a 1% improvement, or when the deadline budget dies.
            if residual < best_residual * 0.99:
                best_residual = residual
                checks_since_improvement = 0
            else:
                checks_since_improvement += 1
            if checks_since_improvement >= 40 or (
                budget is not None and budget.expired
            ):
                return FeasibilityResult(
                    matrices=None,
                    iterations=iteration,
                    affine_residual=residual,
                    psd_residual=0.0,
                )
    residual = system.residual_norm(x)
    if residual <= tolerance:
        return FeasibilityResult(
            matrices=_split(x, block_sizes),
            iterations=max_iterations,
            affine_residual=residual,
            psd_residual=0.0,
        )
    return FeasibilityResult(
        matrices=None,
        iterations=max_iterations,
        affine_residual=residual,
        psd_residual=0.0,
    )


def solve_psd_feasibility(
    block_sizes: Sequence[int],
    system: AffineSystem,
    max_iterations: int = 4000,
    tolerance: float = 1e-9,
    rng: Optional[np.random.Generator] = None,
    budget: Optional[Budget] = None,
) -> FeasibilityResult:
    """Find PSD blocks satisfying ``system``.

    Strategy: ADMM splitting first (fast and robust, including on the
    boundary-rank solutions typical of exact SOS decompositions), then a
    Burer–Monteiro factorisation restart as a fallback.  A ``None`` result
    means *not found within budget*, never *infeasible*.

    ``budget`` optionally bounds the solve's wall clock: both stages poll
    it at their residual checks and bail out with a not-found result, so a
    caller's deadline cannot be blown by a pathological system.  Malformed
    arguments raise :class:`~repro.exceptions.SolverConfigurationError`
    (a :class:`ValueError`) naming the offence.
    """
    block_sizes = list(block_sizes)
    if not block_sizes:
        raise SolverConfigurationError("at least one PSD block is required")
    for position, size in enumerate(block_sizes):
        if int(size) != size or size < 1:
            raise SolverConfigurationError(
                f"block size #{position} must be a positive integer, got {size!r}"
            )
    if not isinstance(system, AffineSystem):
        raise SolverConfigurationError(
            f"system must be an AffineSystem, got {type(system).__name__}"
        )
    if max_iterations < 1:
        raise SolverConfigurationError(
            f"max_iterations must be positive, got {max_iterations}"
        )
    if not tolerance > 0.0:
        raise SolverConfigurationError(
            f"tolerance must be positive, got {tolerance}"
        )
    total = int(sum(size * size for size in block_sizes))
    if system.dimension != total:
        raise SolverConfigurationError(
            f"affine system over {system.dimension} entries, blocks give {total}"
        )
    if faults.fire(faults.SOLVER_TIMEOUT):
        raise StageTimeoutError("injected solver timeout (chaos harness)")
    if faults.fire(faults.NONCONVERGENCE):
        # Simulated nonconvergence: the honest "not found within budget"
        # shape callers must already survive (matrices=None is never
        # interpreted as infeasibility).
        return FeasibilityResult(
            matrices=None,
            iterations=0,
            affine_residual=float("inf"),
            psd_residual=0.0,
        )
    rng = rng or np.random.default_rng(0)
    result = _admm(block_sizes, system, max_iterations, tolerance, budget=budget)
    if result.feasible:
        return result
    if result.affine_residual > 1000 * max(tolerance, 1e-12):
        # ADMM stalled far from feasibility: almost certainly infeasible;
        # don't burn a Burer–Monteiro pass on it.
        return result
    if budget is not None and budget.expired:
        return result
    fallback = _burer_monteiro(
        block_sizes,
        system,
        restarts=2,
        tolerance=max(tolerance, 5e-7),
        rng=rng,
        budget=budget,
    )
    if fallback.feasible:
        return fallback
    return result

"""The MAX-CUT hardness reduction (Theorem 6.2), reconstructed.

Theorem 6.2: unless P = NP, there is an algebraic family ``Π`` with
``r = poly(N)`` constraints of degree ≤ 2 for which deciding
``Safe_Π(A, B)`` takes super-polynomial time.  The paper sketches a
reduction from (a restricted decision version of) MAX-CUT and defers
details to the full version; we reconstruct a concrete reduction with the
same structure and validate it computationally on small graphs.

**Our encoding.**  Given a graph ``G`` on ``t`` vertices and a bound ``k``,
work over the hypercube ``{0,1}^{t+1}`` and the *reduced* product-family
program of Section 6.1 (variables ``p₁, …, p_{t+1}``):

* ``p_i(1 − p_i) = 0`` for ``i ≤ t`` — vertex parameters are forced Boolean
  (degree-2 equalities), encoding a cut side per vertex;
* ``cut(p) − k ≥ 0`` with ``cut(p) = Σ_{(i,j)∈E} (p_i + p_j − 2 p_i p_j)``
  (degree 2) — the chosen assignment must cut at least ``k`` edges;
* ``A = B = X_{t+1}``: the audited and disclosed property are both
  "record ``t+1`` is present".  The privacy-violation condition
  ``P[AB] > P[A]·P[B]`` becomes ``p_{t+1}(1 − p_{t+1}) > 0``, satisfiable
  exactly by a non-deterministic last coordinate and *independent* of the
  graph part.

Hence ``K(A, B, Π_G)`` is non-empty iff some cut of ``G`` has size ≥ ``k``:
deciding safety for this constraint family decides MAX-CUT.  All
constraints have degree ≤ 2 and there are ``t + 2 = poly(N)`` of them, as
the theorem requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..core.worlds import HypercubeSpace, PropertySet
from .polynomial import Polynomial
from .program import PolynomialProgram


@dataclass(frozen=True)
class Graph:
    """A simple undirected graph on vertices ``0 .. n_vertices-1``."""

    n_vertices: int
    edges: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        for u, v in self.edges:
            if not (0 <= u < self.n_vertices and 0 <= v < self.n_vertices):
                raise ValueError(f"edge ({u},{v}) outside vertex range")
            if u == v:
                raise ValueError("self-loops are not allowed")

    @classmethod
    def from_edges(cls, n_vertices: int, edges) -> "Graph":
        canonical = tuple(sorted((min(u, v), max(u, v)) for u, v in edges))
        return cls(n_vertices, tuple(dict.fromkeys(canonical)))

    @classmethod
    def random(
        cls, n_vertices: int, edge_probability: float, rng: np.random.Generator
    ) -> "Graph":
        edges = [
            (u, v)
            for u in range(n_vertices)
            for v in range(u + 1, n_vertices)
            if rng.random() < edge_probability
        ]
        return cls.from_edges(n_vertices, edges)

    def cut_size(self, side: Sequence[int]) -> int:
        """The number of edges crossing the cut described by 0/1 labels."""
        return sum(1 for u, v in self.edges if side[u] != side[v])

    def max_cut(self) -> Tuple[int, Tuple[int, ...]]:
        """Brute-force maximum cut (exponential; for validation on small t)."""
        best_size = 0
        best_side: Tuple[int, ...] = (0,) * self.n_vertices
        for bits in range(1 << self.n_vertices):
            side = tuple((bits >> i) & 1 for i in range(self.n_vertices))
            size = self.cut_size(side)
            if size > best_size:
                best_size, best_side = size, side
        return best_size, best_side


def cut_polynomial(graph: Graph, nvars: int) -> Polynomial:
    """``cut(p) = Σ_{(u,v)∈E} (p_u + p_v − 2 p_u p_v)`` over ``nvars`` variables."""
    total = Polynomial(nvars)
    for u, v in graph.edges:
        pu = Polynomial.variable(u, nvars)
        pv = Polynomial.variable(v, nvars)
        total = total + pu + pv - 2 * (pu * pv)
    return total


@dataclass(frozen=True)
class MaxCutReduction:
    """The reduction artifacts: spaces, sets and the constraint program."""

    graph: Graph
    threshold: int
    space: HypercubeSpace
    audited: PropertySet
    disclosed: PropertySet
    program: PolynomialProgram


def maxcut_reduction(graph: Graph, threshold: int) -> MaxCutReduction:
    """Build ``(A, B, Π_G)`` such that ``K(A, B, Π_G) ≠ ∅`` iff
    ``maxcut(G) ≥ threshold`` (our Theorem 6.2 reconstruction)."""
    t = graph.n_vertices
    if t + 1 > 24:
        raise ValueError("reduction space too large to materialise")
    space = HypercubeSpace(t + 1)
    audited = space.coordinate_set(t + 1)
    disclosed = audited
    nvars = t + 1
    program = PolynomialProgram(
        nvars=nvars, variable_names=[f"p{i + 1}" for i in range(nvars)]
    )
    for i in range(t):
        x = Polynomial.variable(i, nvars)
        program.add_equality(x - x * x)  # Boolean vertex parameters
    last = Polynomial.variable(t, nvars)
    program.add_inequality(last)
    program.add_inequality(1 - last)
    program.add_inequality(cut_polynomial(graph, nvars) - threshold)
    # P[AB] − P[A]P[B] = p_{t+1} − p_{t+1}² for A = B = X_{t+1}.
    program.add_strict(last - last * last)
    return MaxCutReduction(
        graph=graph,
        threshold=threshold,
        space=space,
        audited=audited,
        disclosed=disclosed,
        program=program,
    )


def k_set_is_empty(reduction: MaxCutReduction) -> bool:
    """Decide emptiness of ``K(A, B, Π_G)`` exactly.

    The Boolean equalities confine the graph coordinates to ``{0,1}^t``;
    with the last coordinate free, feasibility reduces to scanning cut
    assignments (sound and complete for this family — and exponential,
    which is the theorem's whole point).
    """
    program = reduction.program
    t = reduction.graph.n_vertices
    for bits in range(1 << t):
        point = [float((bits >> i) & 1) for i in range(t)] + [0.5]
        if program.is_satisfied(point):
            return False
    return True


def safe_under_graph_family(reduction: MaxCutReduction) -> bool:
    """``Safe_{Π_G}(A, B)`` — by Proposition 6.1, emptiness of ``K``."""
    return k_set_is_empty(reduction)


def reduction_is_faithful(graph: Graph, threshold: int) -> bool:
    """Validation predicate: ``K ≠ ∅  ⇔  maxcut(G) ≥ threshold``."""
    reduction = maxcut_reduction(graph, threshold)
    max_size, _ = graph.max_cut()
    return (not k_set_is_empty(reduction)) == (max_size >= threshold)

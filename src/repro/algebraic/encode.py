"""Encoding event probabilities as polynomials in Bernoulli parameters.

For a product distribution with parameters ``p = (p₁, …, p_n)`` (Eq. 17),
the probability of an event ``X ⊆ {0,1}^n`` is the *multilinear* polynomial

    ``P[X](p) = Σ_{ω ∈ X} Π_i p_i^{ω[i]} (1 − p_i)^{1 − ω[i]}``.

This module computes that polynomial (sparsely, via a signed Möbius
transform over the subset lattice), the *safety gap*
``g(p) = P[A]·P[B] − P[A∩B]`` whose nonnegativity on ``[0,1]^n`` is exactly
``Safe_{Π_m⁰}(A, B)`` (Proposition 3.8 + Eq. 11), and a dense
per-variable-degree-≤2 coefficient tensor of ``g`` used by the Bernstein
decision procedure.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
from typing import Tuple

import numpy as np

from ..core.worlds import HypercubeSpace, PropertySet
from ..exceptions import SpaceMismatchError
from .polynomial import Polynomial

#: Dimension guard for dense tensor computations (3^n entries).
MAX_TENSOR_DIMENSION = 12


def _hypercube_of(prop: PropertySet) -> HypercubeSpace:
    space = prop.space
    if not isinstance(space, HypercubeSpace):
        raise SpaceMismatchError(f"encoding requires a hypercube space, got {space!r}")
    return space


def event_multilinear_coeffs(event: PropertySet) -> np.ndarray:
    """Coefficients of ``P[X]`` in the multilinear basis, indexed by subset mask.

    Entry ``U`` is the coefficient of ``Π_{i ∈ U} p_i``, computed by the
    signed Möbius transform ``c_U = Σ_{ω ⊆ U, ω ∈ X} (−1)^{|U| − |ω|}`` in
    ``O(n · 2^n)``.
    """
    space = _hypercube_of(event)
    n = space.n
    size = 1 << n
    # Indicator straight from the packed mask: one to_bytes + one unpackbits.
    packed = np.frombuffer(
        event.mask.to_bytes((size + 7) // 8, "little"), dtype=np.uint8
    )
    coeffs = np.unpackbits(packed, bitorder="little", count=size).astype(np.float64)
    # Signed Möbius transform, one in-place vectorized pass per coordinate.
    # Bit ``i`` of the world index lands on axis ``n - 1 - i`` of the C-order
    # reshape, but the axis order is irrelevant: the per-axis updates commute.
    shaped = coeffs.reshape((2,) * n)
    for axis in range(n):
        view = np.moveaxis(shaped, axis, 0)
        view[1] -= view[0]
    return coeffs


def event_polynomial(event: PropertySet) -> Polynomial:
    """``P[X](p)`` as a sparse :class:`Polynomial` in ``n`` variables."""
    space = _hypercube_of(event)
    n = space.n
    coeffs = event_multilinear_coeffs(event)
    terms = {}
    for mask in np.flatnonzero(coeffs):
        mono = tuple((int(mask) >> i) & 1 for i in range(n))
        terms[mono] = float(coeffs[mask])
    return Polynomial(n, terms)


def safety_gap_polynomial(audited: PropertySet, disclosed: PropertySet) -> Polynomial:
    """``g(p) = P[A](p)·P[B](p) − P[A∩B](p)``.

    ``Safe_{Π_m⁰}(A, B)`` holds iff ``g ≥ 0`` on the box ``[0,1]^n``
    (Eq. 11 for the product family).
    """
    space = _hypercube_of(audited)
    space.check_same(disclosed.space)
    pa = event_polynomial(audited)
    pb = event_polynomial(disclosed)
    pab = event_polynomial(audited & disclosed)
    return pa * pb - pab


@lru_cache(maxsize=None)
def _ternary_codes(n: int) -> np.ndarray:
    """``tern[x] = Σ_i x_i · 3^(n-1-i)`` for every mask ``x`` in ``{0,1}^n``.

    Because exponents of a product of two multilinear monomials are at most
    2 per variable, base-3 digit sums never carry, so ``tern[i] + tern[j]``
    is the ternary code of the product monomial.  Digit ``i`` (coordinate
    ``i+1``) is placed at position ``3^(n-1-i)`` so that a C-order reshape
    to ``(3,)*n`` puts coordinate ``i+1`` on axis ``i``.

    Cached per ``n`` (and marked read-only): every tensor build for a space
    reuses one table instead of re-deriving ``2^n`` digit sums.
    """
    masks = np.arange(1 << n, dtype=np.int64)
    bits = (masks[:, None] >> np.arange(n, dtype=np.int64)) & 1
    codes = bits @ (3 ** np.arange(n - 1, -1, -1, dtype=np.int64))
    codes.flags.writeable = False
    return codes


def safety_gap_tensor(audited: PropertySet, disclosed: PropertySet) -> np.ndarray:
    """Dense coefficient tensor of the safety gap, shape ``(3,)*n``.

    Axis ``i`` indexes the exponent of ``p_{i+1}`` (0, 1 or 2).  Used by the
    Bernstein branch-and-bound decision procedure.  Guarded to ``n ≤ 12``.
    """
    space = _hypercube_of(audited)
    space.check_same(disclosed.space)
    n = space.n
    if n > MAX_TENSOR_DIMENSION:
        raise ValueError(
            f"dense gap tensor needs 3^{n} entries; limit is n ≤ {MAX_TENSOR_DIMENSION}"
        )
    ca = event_multilinear_coeffs(audited)
    cb = event_multilinear_coeffs(disclosed)
    cab = event_multilinear_coeffs(audited & disclosed)
    tern = _ternary_codes(n)
    flat = np.zeros(3**n)
    # Product P[A]·P[B]: convolve the two multilinear coefficient vectors.
    # Chunk over rows to bound the temporary outer-product memory.
    nonzero_a = np.flatnonzero(ca)
    nonzero_b = np.flatnonzero(cb)
    if nonzero_a.size and nonzero_b.size:
        codes_b = tern[nonzero_b]
        vals_b = cb[nonzero_b]
        chunk = max(1, (1 << 22) // max(1, nonzero_b.size))
        for start in range(0, nonzero_a.size, chunk):
            rows = nonzero_a[start : start + chunk]
            keys = (tern[rows][:, None] + codes_b[None, :]).ravel()
            weights = (ca[rows][:, None] * vals_b[None, :]).ravel()
            flat += np.bincount(keys, weights=weights, minlength=3**n)
    # Subtract P[AB] (multilinear, so its codes are already ternary-valid).
    nonzero_ab = np.flatnonzero(cab)
    np.subtract.at(flat, tern[nonzero_ab], cab[nonzero_ab])
    return flat.reshape((3,) * n)


class TensorCache:
    """Bounded LRU cache of safety-gap tensors keyed by pair fingerprint.

    Ablation sweeps and duplicate-heavy disclosure logs decide the same
    ``(A, B)`` pair against many prior families; the gap tensor depends only
    on the pair, so rebuilding it per decision is pure waste.  Keys are the
    cross-process-stable :meth:`~repro.core.worlds.PropertySet.fingerprint`
    digests, so a cache can be rebuilt consistently inside pool workers.
    Cached tensors are marked read-only — they are shared across decisions.
    """

    __slots__ = ("_capacity", "_entries", "hits", "misses")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"tensor cache capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._entries: "OrderedDict[Tuple[str, str], np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, audited: PropertySet, disclosed: PropertySet) -> np.ndarray:
        """The gap tensor for ``(audited, disclosed)``, built at most once."""
        key = (audited.fingerprint(), disclosed.fingerprint())
        tensor = self._entries.get(key)
        if tensor is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return tensor
        self.misses += 1
        tensor = safety_gap_tensor(audited, disclosed)
        tensor.flags.writeable = False
        self._entries[key] = tensor
        if len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
        return tensor

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "size": len(self._entries)}


def polynomial_from_tensor(tensor: np.ndarray) -> Polynomial:
    """Inverse of :func:`safety_gap_tensor` for testing: tensor → Polynomial."""
    n = tensor.ndim
    terms = {}
    for idx in np.argwhere(tensor != 0.0):
        terms[tuple(int(e) for e in idx)] = float(tensor[tuple(idx)])
    return Polynomial(n, terms)


def evaluate_gap(
    audited: PropertySet, disclosed: PropertySet, point: np.ndarray
) -> float:
    """Evaluate the safety gap at a Bernoulli vector without building polynomials.

    Direct ``O((|A| + |B| + |AB|) · n)`` computation; used by the numeric
    optimiser where polynomial expansion would be wasteful.
    """
    space = _hypercube_of(audited)
    from ..probabilistic.distributions import ProductDistribution

    dist = ProductDistribution(space, point)
    return dist.prob(audited) * dist.prob(disclosed) - dist.prob(audited & disclosed)

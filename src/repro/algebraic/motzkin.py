"""The Motzkin polynomial and friends (Section 6.2's cautionary examples).

Hilbert showed (non-constructively) that Σ² is a strict subset of the
nonnegative polynomials; Motzkin gave the first explicit witness:

    ``M(x, y, z) = x⁴y² + x²y⁴ + z⁶ − 3x²y²z²``,

nonnegative on all of ``R³`` (by AM–GM on the three monomials
``x⁴y², x²y⁴, z⁶``) yet not a sum of squares of polynomials.  Artin's
solution of Hilbert's 17th problem says it *is* a sum of squares of
rational functions — equivalently ``(x²+y²+z²)·M`` is SOS.

These are exercised by the E7 benchmark to validate the SOS solver's
discriminating power.
"""

from __future__ import annotations

from .polynomial import Polynomial


def motzkin_polynomial() -> Polynomial:
    """``M(x, y, z) = x⁴y² + x²y⁴ + z⁶ − 3x²y²z²``."""
    x = Polynomial.variable(0, 3)
    y = Polynomial.variable(1, 3)
    z = Polynomial.variable(2, 3)
    return x**4 * y**2 + x**2 * y**4 + z**6 - 3 * (x**2 * y**2 * z**2)


def motzkin_artin_lift() -> Polynomial:
    """``(x² + y² + z²) · M(x, y, z)``, which *is* a sum of squares.

    The standard witness for Artin's theorem applied to Motzkin's
    polynomial: multiplying by the SOS denominator ``x²+y²+z²`` lands back
    in Σ².
    """
    x = Polynomial.variable(0, 3)
    y = Polynomial.variable(1, 3)
    z = Polynomial.variable(2, 3)
    return (x**2 + y**2 + z**2) * motzkin_polynomial()


def motzkin_value(x: float, y: float, z: float) -> float:
    """Direct evaluation of ``M`` (used to test nonnegativity numerically)."""
    return x**4 * y**2 + x**2 * y**4 + z**6 - 3 * x**2 * y**2 * z**2


def amgm_gap(x: float, y: float, z: float) -> float:
    """The AM–GM slack showing ``M ≥ 0``:
    ``(x⁴y² + x²y⁴ + z⁶)/3 − (x⁴y²·x²y⁴·z⁶)^{1/3}``, always ≥ 0."""
    terms = (x**4 * y**2, x**2 * y**4, z**6)
    arithmetic = sum(terms) / 3.0
    geometric = (terms[0] * terms[1] * terms[2]) ** (1.0 / 3.0)
    return arithmetic - geometric

"""The sum-of-squares heuristic (Section 6.2, Proposition 6.4).

Σ² membership — "is this polynomial a sum of squares of polynomials?" — is
decided by finding a PSD Gram matrix ``Q`` with ``m(x)ᵀ Q m(x) = f(x)`` for a
monomial basis ``m``; that is a semidefinite feasibility problem
(Proposition 6.4: testable in poly(s) time for bounded degree), solved here
with :mod:`repro.algebraic.sdp`.

On top of plain membership we implement the constrained certificate the
privacy application needs: a Putinar-style decomposition

    ``g(p) = σ₀(p) + Σ_i σ_i(p) · p_i(1 − p_i)``,   σ's ∈ Σ²,

which certifies the safety gap ``g`` nonnegative on the box ``[0,1]^n`` and
hence ``Safe_{Π_m⁰}(A, B)``.  Every decomposition found numerically is
**re-verified by exact polynomial expansion** with an explicit residual
bound before being reported (the paper's heuristic "works remarkably well in
practice"; our verification step quantifies the "well").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.worlds import PropertySet
from ..exceptions import CertificateError, StageTimeoutError
from ..runtime import faults
from .encode import safety_gap_polynomial
from ..runtime.budget import Budget
from .polynomial import Monomial, Polynomial, monomials_up_to_degree
from .sdp import AffineSystem, solve_psd_feasibility

#: Max absolute residual coefficient for a certificate to be accepted.  A
#: certificate with residual r bounds the polynomial's box minimum by
#: ``−r · (number of monomials)``; callers report this ε-margin explicitly.
DEFAULT_RESIDUAL_TOL = 2e-6


@dataclass(frozen=True)
class SOSDecomposition:
    """A verified decomposition ``f = Σ_k (g_k)² (+ multiplier terms)``.

    Attributes
    ----------
    blocks:
        Per-block ``(multiplier, basis, gram)`` triples: the block
        contributes ``multiplier · m(x)ᵀ·Gram·m(x)``.
    residual:
        The max-abs coefficient of ``f − Σ blocks`` after exact expansion.
    iterations:
        Alternating-projection iterations used.
    """

    blocks: Tuple[Tuple[Polynomial, Tuple[Monomial, ...], np.ndarray], ...]
    residual: float
    iterations: int

    def squares(self, block: int = 0, tol: float = 1e-12) -> List[Polynomial]:
        """The explicit squared polynomials ``g_k`` of one block."""
        multiplier, basis, gram = self.blocks[block]
        nvars = multiplier.nvars
        eigenvalues, eigenvectors = np.linalg.eigh(gram)
        result = []
        for value, vector in zip(eigenvalues, eigenvectors.T):
            if value <= tol:
                continue
            poly = Polynomial.from_terms(
                nvars,
                [
                    (float(np.sqrt(value)) * float(c), mono)
                    for c, mono in zip(vector, basis)
                ],
            )
            result.append(poly)
        return result

    def expansion(self) -> Polynomial:
        """Exact expansion of the certificate (used by verification)."""
        nvars = self.blocks[0][0].nvars
        total = Polynomial(nvars)
        for multiplier, basis, gram in self.blocks:
            total = total + multiplier * _gram_polynomial(basis, gram, nvars)
        return total


def _gram_polynomial(
    basis: Sequence[Monomial], gram: np.ndarray, nvars: int
) -> Polynomial:
    """``m(x)ᵀ·Gram·m(x)`` expanded exactly."""
    terms: Dict[Monomial, float] = {}
    size = len(basis)
    for i in range(size):
        for j in range(size):
            coef = float(gram[i, j])
            if coef == 0.0:
                continue
            mono = tuple(a + b for a, b in zip(basis[i], basis[j]))
            terms[mono] = terms.get(mono, 0.0) + coef
    return Polynomial(nvars, terms)


def _build_system(
    target: Polynomial,
    blocks: Sequence[Tuple[Polynomial, Sequence[Monomial]]],
) -> Tuple[AffineSystem, List[int]]:
    """Affine constraints matching Σ_b mult_b·(mᵀQ_b m) to ``target``.

    One constraint per monomial achievable by any block or present in the
    target; unreachable target monomials make the system unsatisfiable and
    are caught early by :meth:`AffineSystem.is_consistent`.
    """
    nvars = target.nvars
    sizes = [len(basis) for _, basis in blocks]
    offsets = np.concatenate([[0], np.cumsum([s * s for s in sizes])])
    dimension = int(offsets[-1])
    # Map: monomial -> {flat index -> coefficient}.
    rows: Dict[Monomial, Dict[int, float]] = {}
    for b, (multiplier, basis) in enumerate(blocks):
        mult_terms = multiplier.coeffs
        for i, mono_i in enumerate(basis):
            for j, mono_j in enumerate(basis):
                flat = int(offsets[b]) + i * sizes[b] + j
                pair = tuple(a + c for a, c in zip(mono_i, mono_j))
                for mu, coef in mult_terms.items():
                    gamma = tuple(a + c for a, c in zip(pair, mu))
                    rows.setdefault(gamma, {})[flat] = (
                        rows.setdefault(gamma, {}).get(flat, 0.0) + coef
                    )
    for gamma in target.coeffs:
        rows.setdefault(gamma, {})
    system = AffineSystem(dimension)
    for gamma, coefficients in sorted(rows.items()):
        system.add_constraint(coefficients, target.coefficient(gamma))
    return system, sizes


def _attempt(
    target: Polynomial,
    blocks: Sequence[Tuple[Polynomial, Sequence[Monomial]]],
    max_iterations: int,
    residual_tol: float,
    rng: Optional[np.random.Generator],
    budget: Optional[Budget] = None,
) -> Optional[SOSDecomposition]:
    system, sizes = _build_system(target, blocks)
    if not system.is_consistent(tol=1e-9):
        return None
    result = solve_psd_feasibility(
        sizes,
        system,
        max_iterations=max_iterations,
        tolerance=residual_tol / 2,
        rng=rng,
        budget=budget,
    )
    if not result.feasible:
        return None
    decomposition = SOSDecomposition(
        blocks=tuple(
            (multiplier, tuple(basis), gram)
            for (multiplier, basis), gram in zip(blocks, result.matrices)
        ),
        residual=0.0,
        iterations=result.iterations,
    )
    residual = (target - decomposition.expansion()).max_abs_coefficient()
    if residual > residual_tol:
        return None
    return SOSDecomposition(
        blocks=decomposition.blocks, residual=residual, iterations=result.iterations
    )


def default_sos_basis(poly: Polynomial) -> List[Monomial]:
    """A pruned Gram basis for Σ² membership of ``poly``.

    Starts from all monomials of total degree ≤ ⌈deg(f)/2⌉ and prunes with
    cheap Newton-polytope necessary conditions: per-variable degree caps
    (``deg_i(m) ≤ ⌈deg_i(f)/2⌉``), a minimum-total-degree bound, and exact
    homogeneity when ``f`` is homogeneous.  Pruning both shrinks the SDP and
    conditions it (spurious monomials force thin zero-equality faces).
    """
    nvars = poly.nvars
    total = poly.total_degree()
    degree = (total + 1) // 2
    term_degrees = [sum(m) for m in poly.coeffs] or [0]
    min_degree = min(term_degrees)
    homogeneous = min_degree == total
    per_var_caps = [
        (poly.degree_in(i) + 1) // 2 if poly.degree_in(i) else 0
        for i in range(nvars)
    ]
    basis = []
    for mono in monomials_up_to_degree(nvars, degree):
        if any(e > cap for e, cap in zip(mono, per_var_caps)):
            continue
        if 2 * sum(mono) < min_degree:
            continue
        if homogeneous and sum(mono) != degree:
            continue
        basis.append(mono)
    return basis


def sos_decompose(
    poly: Polynomial,
    basis: Optional[Sequence[Monomial]] = None,
    max_iterations: int = 4000,
    residual_tol: float = DEFAULT_RESIDUAL_TOL,
    rng: Optional[np.random.Generator] = None,
    budget: Optional[Budget] = None,
) -> Optional[SOSDecomposition]:
    """Find (and verify) an SOS decomposition of ``poly``, or ``None``.

    ``None`` means "no decomposition found with this basis and budget";
    Σ² membership is certified only positively.  The default basis is the
    pruned :func:`default_sos_basis`.
    """
    if basis is None:
        basis = default_sos_basis(poly)
    if not basis:
        return None if not poly.is_zero() else _attempt(
            poly,
            [(Polynomial.constant(poly.nvars, 1.0), [(0,) * poly.nvars])],
            max_iterations,
            residual_tol,
            rng,
            budget=budget,
        )
    one = Polynomial.constant(poly.nvars, 1.0)
    return _attempt(
        poly, [(one, list(basis))], max_iterations, residual_tol, rng, budget=budget
    )


def is_sos(poly: Polynomial, **kwargs) -> bool:
    """Σ² membership test (Proposition 6.4), positive certification only."""
    return sos_decompose(poly, **kwargs) is not None


@dataclass(frozen=True)
class BoxCertificate:
    """A verified Putinar certificate of nonnegativity on ``[0,1]^n``.

    ``g = σ₀ + Σ σ_i·p_i(1−p_i)`` with every σ SOS and residual bounded by
    ``residual``: hence ``min g ≥ −residual·(number of monomials)`` on the
    box, which callers compare against their tolerance.
    """

    decomposition: SOSDecomposition
    residual: float

    def verify(self, target: Polynomial, tol: float = DEFAULT_RESIDUAL_TOL) -> None:
        """Re-verify against ``target``; raises :class:`CertificateError`."""
        residual = (target - self.decomposition.expansion()).max_abs_coefficient()
        if residual > tol:
            raise CertificateError(
                f"certificate residual {residual} exceeds tolerance {tol}"
            )


def certify_box_nonnegative(
    poly: Polynomial,
    degree: Optional[int] = None,
    max_products: Optional[int] = None,
    max_iterations: int = 40000,
    residual_tol: float = DEFAULT_RESIDUAL_TOL,
    rng: Optional[np.random.Generator] = None,
    budget: Optional[Budget] = None,
) -> Optional[BoxCertificate]:
    """Search for a Schmüdgen-form certificate of nonnegativity on ``[0,1]^n``:

        ``poly = Σ_{I ⊆ [n]} σ_I · Π_{i∈I} x_i(1−x_i)``,   σ_I ∈ Σ².

    Plain Putinar multipliers (``|I| ≤ 1``) are too weak for typical safety
    gaps — e.g. ``x(1−x)(1−y)`` needs the product term
    ``x(1−x)·y(1−y)`` via ``(1−y)²·x(1−x) + 1·x(1−x)y(1−y)``.  ``degree``
    bounds the multilinear basis degree of ``σ_∅``; each σ_I omits the
    variables of ``I`` from its basis so every block stays within
    per-variable degree 2 (the safety-gap shape).  ``max_products`` bounds
    ``|I|`` (default: all subsets for n ≤ 4, pairs otherwise).
    """
    nvars = poly.nvars
    if degree is None:
        degree = min(nvars, 3)
    if max_products is None:
        max_products = nvars if nvars <= 4 else 2
    blocks: List[Tuple[Polynomial, List[Monomial]]] = []
    for size in range(0, min(max_products, nvars) + 1):
        for subset in itertools.combinations(range(nvars), size):
            multiplier = Polynomial.constant(nvars, 1.0)
            for i in subset:
                x = Polynomial.variable(i, nvars)
                multiplier = multiplier * (x - x * x)
            basis_degree = max(0, degree - size)
            basis = [
                mono
                for mono in monomials_up_to_degree(
                    nvars, basis_degree, max_degree_per_var=1
                )
                if all(mono[i] == 0 for i in subset)
            ]
            blocks.append((multiplier, basis))
    decomposition = _attempt(
        poly, blocks, max_iterations, residual_tol, rng, budget=budget
    )
    if decomposition is None:
        return None
    return BoxCertificate(decomposition=decomposition, residual=decomposition.residual)


@dataclass(frozen=True)
class HandelmanCertificate:
    """A nonnegative combination of box-constraint products.

    ``poly = Σ_α c_α · Π_i x_i^{a_i}(1−x_i)^{b_i}`` with all ``c_α ≥ 0`` and
    ``a_i + b_i ≤ 2`` — Handelman's representation specialised to the
    per-variable-degree-2 shape of safety gaps.  Found by linear
    programming, hence fast and numerically robust; verified by exact
    expansion like the SOS certificates.
    """

    coefficients: Tuple[Tuple[Tuple[Tuple[int, int], ...], float], ...]
    residual: float

    def expansion(self, nvars: int) -> Polynomial:
        total = Polynomial(nvars)
        for factors, coef in self.coefficients:
            term = Polynomial.constant(nvars, coef)
            for i, (a, b) in enumerate(factors):
                x = Polynomial.variable(i, nvars)
                if a:
                    term = term * x**a
                if b:
                    term = term * (1 - x) ** b
            total = total + term
        return total

    def verify(self, target: Polynomial, tol: float = DEFAULT_RESIDUAL_TOL) -> None:
        residual = (target - self.expansion(target.nvars)).max_abs_coefficient()
        if residual > tol:
            raise CertificateError(
                f"Handelman residual {residual} exceeds tolerance {tol}"
            )


#: Per-variable factor menu for Handelman columns: (power of x, power of 1−x).
_HANDELMAN_FACTORS = ((0, 0), (1, 0), (0, 1), (2, 0), (1, 1), (0, 2))

#: Dimension guard: 6^n LP columns.
MAX_HANDELMAN_DIMENSION = 6


def handelman_certificate(
    poly: Polynomial,
    residual_tol: float = DEFAULT_RESIDUAL_TOL,
) -> Optional[HandelmanCertificate]:
    """LP search for a Handelman certificate of box nonnegativity.

    Columns are all ``6^n`` products ``Π x_i^{a_i}(1−x_i)^{b_i}`` with
    ``a_i + b_i ≤ 2``; the LP asks for a nonnegative combination matching
    ``poly`` exactly.  This subsumes the cancellation criterion: the
    match-vector monomials ``m(w)`` are exactly such products.
    """
    from scipy import optimize as sp_optimize

    nvars = poly.nvars
    if nvars > MAX_HANDELMAN_DIMENSION:
        return None
    if any(any(e > 2 for e in mono) for mono in poly.coeffs):
        return None  # outside the per-variable-degree-2 shape
    # Enumerate monomials with per-variable degree ≤ 2 as row indices.
    row_index = {
        mono: r
        for r, mono in enumerate(itertools.product(range(3), repeat=nvars))
    }
    columns = []
    data: List[Tuple[int, int, float]] = []  # (row, col, coef)
    for col, factors in enumerate(itertools.product(_HANDELMAN_FACTORS, repeat=nvars)):
        columns.append(factors)
        # Expand Π x^a (1−x)^b coefficient-wise per variable, then tensor.
        per_var: List[List[Tuple[int, float]]] = []
        for a, b in factors:
            expansion = []
            # (1−x)^b = Σ_k C(b,k)(−x)^k.
            for k in range(b + 1):
                comb = 1.0
                if b == 2:
                    comb = (1.0, 2.0, 1.0)[k]
                expansion.append((a + k, comb * ((-1.0) ** k)))
            per_var.append(expansion)
        for picks in itertools.product(*per_var):
            mono = tuple(p[0] for p in picks)
            coef = 1.0
            for p in picks:
                coef *= p[1]
            data.append((row_index[mono], col, coef))
    n_rows = len(row_index)
    n_cols = len(columns)
    a_eq = np.zeros((n_rows, n_cols))
    for row, col, coef in data:
        a_eq[row, col] += coef
    b_eq = np.zeros(n_rows)
    for mono, coef in poly.coeffs.items():
        b_eq[row_index[mono]] = coef
    result = sp_optimize.linprog(
        c=np.ones(n_cols),
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0.0, None)] * n_cols,
        method="highs",
    )
    if not result.success:
        return None
    coefficients = tuple(
        (columns[col], float(value))
        for col, value in enumerate(result.x)
        if value > 1e-12
    )
    certificate = HandelmanCertificate(coefficients=coefficients, residual=0.0)
    residual = (poly - certificate.expansion(nvars)).max_abs_coefficient()
    if residual > residual_tol:
        return None
    return HandelmanCertificate(coefficients=coefficients, residual=residual)


def certify_gap_nonnegative(
    audited: PropertySet,
    disclosed: PropertySet,
    degree: Optional[int] = None,
    max_iterations: int = 40000,
    rng: Optional[np.random.Generator] = None,
    budget: Optional[Budget] = None,
):
    """Certify ``Safe_{Π_m⁰}(A, B)`` via the safety gap polynomial.

    Tries the Handelman LP first (fast, robust, subsumes cancellation),
    then the Schmüdgen-SOS search.  Returns a verified
    :class:`HandelmanCertificate` or :class:`BoxCertificate`, or ``None``.
    """
    if faults.fire(faults.SOLVER_TIMEOUT):
        # Chaos probe at the certificate-stage entry: the Handelman LP would
        # otherwise shield the SDP probe inside solve_psd_feasibility.
        raise StageTimeoutError("injected certificate-stage timeout (chaos harness)")
    gap = safety_gap_polynomial(audited, disclosed)
    if gap.is_zero():
        return HandelmanCertificate(coefficients=(), residual=0.0)
    certificate = handelman_certificate(gap)
    if certificate is not None:
        return certificate
    return certify_box_nonnegative(
        gap, degree=degree, max_iterations=max_iterations, rng=rng, budget=budget
    )

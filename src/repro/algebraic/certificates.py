"""Positivstellensatz refutations (Theorem 6.7, Definitions 6.5–6.6).

Stengle's Positivstellensatz (in the simplified form of Theorem 6.7) says a
set ``K = {x : f_i(x) ≥ 0, g_j(x) = 0}`` is empty iff there exist
``F ∈ A(f₁, …, f_t₁)`` (the *algebraic cone*: affine combinations of
products of the ``f_i`` with Σ² coefficients) and
``G ∈ M(g₁, …, g_t₂)`` (the *multiplicative monoid*: finite products of the
``g_j``) with ``F + G² = 0``.

We implement the degree-bounded search the paper describes: "choosing a
degree bound D, generating all G ∈ M(…) of degree at most D … and checking
if there is an F ∈ A(…) for which F + G² = 0 via semidefinite programming."
A found refutation is a *verified proof of emptiness* — the expansion is
checked exactly, with an explicit residual bound.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import CertificateError
from .polynomial import Polynomial, monomials_up_to_degree
from .program import PolynomialProgram
from .sos import DEFAULT_RESIDUAL_TOL, SOSDecomposition, _attempt


def cone_products(
    generators: Sequence[Polynomial], max_factors: int
) -> List[Tuple[Tuple[int, ...], Polynomial]]:
    """The products ``Π_{i∈I} f_i`` for ``|I| ≤ max_factors`` (Definition 6.5).

    Returns (index tuple, product) pairs; the empty product is 1.
    """
    nvars = generators[0].nvars if generators else 0
    result: List[Tuple[Tuple[int, ...], Polynomial]] = []
    for size in range(0, max_factors + 1):
        for subset in itertools.combinations(range(len(generators)), size):
            product = Polynomial.constant(nvars, 1.0)
            for i in subset:
                product = product * generators[i]
            result.append((subset, product))
    return result


def monoid_members(
    generators: Sequence[Polynomial], max_degree: int, nvars: int
) -> List[Tuple[Tuple[int, ...], Polynomial]]:
    """Products of the ``g_j`` with total degree ≤ ``max_degree`` (Def 6.6).

    Includes the empty product 1.  Generators may repeat inside a product.
    There are at most ``t^D`` such members, as the paper notes.
    """
    members: List[Tuple[Tuple[int, ...], Polynomial]] = [
        ((), Polynomial.constant(nvars, 1.0))
    ]
    frontier = [((), Polynomial.constant(nvars, 1.0))]
    while frontier:
        indices, poly = frontier.pop()
        for j, gen in enumerate(generators):
            if indices and j < indices[-1]:
                continue  # canonical non-decreasing index order avoids dupes
            extended = poly * gen
            if extended.total_degree() > max_degree:
                continue
            key = indices + (j,)
            members.append((key, extended))
            frontier.append((key, extended))
    return members


@dataclass(frozen=True)
class Refutation:
    """A verified Positivstellensatz emptiness certificate ``F + G² = 0``.

    ``cone_terms`` lists ``(generator index set, σ_I)`` pairs making up
    ``F = Σ_I σ_I·Π_{i∈I} f_i``; ``monoid_indices`` identifies
    ``G = Π g_j``; ``residual`` bounds the exact expansion of ``F + G²``.
    """

    cone_terms: Tuple[Tuple[Tuple[int, ...], SOSDecomposition], ...]
    monoid_indices: Tuple[int, ...]
    residual: float

    def verify(
        self,
        inequalities: Sequence[Polynomial],
        equalities: Sequence[Polynomial],
        tol: float = DEFAULT_RESIDUAL_TOL,
    ) -> None:
        """Re-expand ``F + G²`` against the *claimed* constraints.

        Each cone term's multiplier is recomputed as the product of the
        passed inequalities at its stored index set — so verifying against a
        different constraint system than the one refuted fails, as it must.
        """
        all_generators = list(inequalities) + list(equalities)
        nvars = all_generators[0].nvars if all_generators else 0
        total = Polynomial(nvars)
        for indices, decomposition in self.cone_terms:
            multiplier, basis, gram = decomposition.blocks[0]
            expected = Polynomial.constant(nvars, 1.0)
            for i in indices:
                expected = expected * inequalities[i]
            if not multiplier.almost_equal(expected, tol=1e-9):
                raise CertificateError(
                    f"cone term {indices} does not match the claimed inequalities"
                )
            total = total + decomposition.expansion()
        g = Polynomial.constant(nvars, 1.0)
        for j in self.monoid_indices:
            g = g * equalities[j]
        total = total + g * g
        if total.max_abs_coefficient() > tol:
            raise CertificateError(
                f"refutation residual {total.max_abs_coefficient()} exceeds {tol}"
            )


def refute_feasibility(
    program: PolynomialProgram,
    degree_bound: int = 2,
    max_cone_factors: int = 2,
    sos_degree: int = 1,
    max_iterations: int = 4000,
    residual_tol: float = DEFAULT_RESIDUAL_TOL,
    rng: Optional[np.random.Generator] = None,
) -> Optional[Refutation]:
    """Search for a Theorem 6.7 refutation of ``{f_i ≥ 0, g_j = 0}``.

    Strict inequalities ``s > 0`` are folded in as ``s ≥ 0`` generators
    (sound for refutation: emptiness of the relaxation implies emptiness of
    the original).  For each monoid member ``G`` of degree ≤ ``degree_bound``
    we ask the SOS solver for ``Σ_I σ_I·Π f_i = −G²``; the first verified
    hit is returned.  ``None`` means no refutation found at these bounds —
    never feasibility.
    """
    inequalities = list(program.inequalities) + list(program.strict_inequalities)
    equalities = list(program.equalities)
    nvars = program.nvars
    products = cone_products(inequalities, max_cone_factors)
    for monoid_indices, g in monoid_members(equalities, degree_bound, nvars):
        target = -(g * g)
        blocks = []
        for _, product in products:
            remaining = max(0, sos_degree)
            basis = monomials_up_to_degree(nvars, remaining, max_degree_per_var=1)
            blocks.append((product, basis))
        decomposition = _attempt(target, blocks, max_iterations, residual_tol, rng)
        if decomposition is None:
            continue
        cone_terms = tuple(
            (indices, SOSDecomposition(blocks=(block,), residual=0.0, iterations=0))
            for (indices, _), block in zip(products, decomposition.blocks)
        )
        refutation = Refutation(
            cone_terms=cone_terms,
            monoid_indices=monoid_indices,
            residual=decomposition.residual,
        )
        refutation.verify(inequalities, equalities, tol=residual_tol * 10)
        return refutation
    return None


def refutes_emptiness_of_interval(low: float, high: float) -> Optional[Refutation]:
    """A tiny worked example: refute ``{x ≥ high, low − x ≥ 0}`` for low < high.

    Used in docs and tests as the "hello world" of Positivstellensatz
    refutations: the interval ``[high, ∞) ∩ (−∞, low]`` is empty, and a
    degree-0 certificate exists: ``(x − high) + (low − x) + (high − low) = 0``
    with the constant ``high − low > 0`` as an SOS coefficient.
    """
    if not low < high:
        raise ValueError("need low < high for an empty intersection")
    x = Polynomial.variable(0, 1)
    program = PolynomialProgram(nvars=1)
    program.add_inequality(x - high)
    program.add_inequality(low - x)
    return refute_feasibility(program, degree_bound=0, max_cone_factors=1)

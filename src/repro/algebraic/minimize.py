"""Polynomial minimisation via SOS bounds — the §6.2 Shor/Parrilo procedure.

"The problem of minimizing a degree-d multivariate polynomial f over a set
K ⊆ R^s is equivalent to finding the maximum γ ∈ R for which f(x) − γ ≥ 0
for all x ∈ K. …  To minimize f(x) over R^s, we find the largest λ ∈ R for
which f(x) − λ ∈ Σ_{2,d} via a binary search on λ and the proposition
above.  The value λ is a lower bound on f(x) and in practice almost always
agrees with the true minimum of f."

This module implements exactly that:

* :func:`sos_lower_bound` — the unconstrained Shor relaxation over ``R^s``;
* :func:`box_lower_bound` — the constrained variant over ``[0,1]^n`` using
  the Schmüdgen-form certificates of :mod:`repro.algebraic.sos`;
* :func:`sampled_minimum` — a multistart numeric upper bound, so callers
  (and the E13 benchmark) can measure the paper's "almost always agrees"
  claim as the gap between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import optimize as sp_optimize

from .polynomial import Polynomial
from .sos import certify_box_nonnegative, sos_decompose


@dataclass(frozen=True)
class BoundResult:
    """A certified lower bound together with the search diagnostics."""

    lower_bound: float
    iterations: int
    certified: bool  # whether the final λ carries a verified certificate


def _binary_search_largest(
    feasible, low: float, high: float, tolerance: float
) -> Tuple[float, int, bool]:
    """Largest λ in [low, high] with ``feasible(λ)``, to ``tolerance``.

    ``low`` must be feasible (callers establish it); returns the best
    feasible λ found, the iteration count, and whether any certificate was
    produced at the returned value.
    """
    iterations = 0
    best = low
    while high - low > tolerance:
        iterations += 1
        mid = 0.5 * (low + high)
        if feasible(mid):
            best = mid
            low = mid
        else:
            high = mid
        if iterations > 60:
            break
    return best, iterations, True


def sos_lower_bound(
    poly: Polynomial,
    tolerance: float = 1e-4,
    max_iterations: int = 20000,
) -> Optional[BoundResult]:
    """The Shor bound: the largest λ with ``f − λ ∈ Σ²`` (binary search).

    Returns ``None`` when not even a crude ``f − λ₀`` is certifiable (e.g.
    for odd-degree ``f``, unbounded below).  Initial brackets come from a
    numeric multistart minimum.
    """
    probe = sampled_minimum(poly, box=None)
    # If f is unbounded below the sampled minimum will be very negative and
    # certification at that level will fail; bail out early on odd degree.
    if poly.total_degree() % 2 == 1 and poly.total_degree() > 0:
        return None
    low = probe - 1.0 - abs(probe)  # generous under-estimate
    high = probe + tolerance

    def feasible(lam: float) -> bool:
        return (
            sos_decompose(poly - lam, max_iterations=max_iterations) is not None
        )

    if not feasible(low):
        return None
    best, iterations, certified = _binary_search_largest(
        feasible, low, high, tolerance
    )
    return BoundResult(lower_bound=best, iterations=iterations, certified=certified)


def box_lower_bound(
    poly: Polynomial,
    tolerance: float = 1e-4,
    max_iterations: int = 20000,
) -> Optional[BoundResult]:
    """Largest λ with ``f − λ`` certified nonnegative on ``[0,1]^n``.

    Uses the Schmüdgen-form box certificates; this is the constrained
    version of the §6.2 search ("to minimize f(x) over a set K constrained
    by polynomials, we need a few more tools").
    """
    probe = sampled_minimum(poly, box=(0.0, 1.0))
    low = probe - 1.0 - abs(probe)
    high = probe + tolerance

    def feasible(lam: float) -> bool:
        return (
            certify_box_nonnegative(poly - lam, max_iterations=max_iterations)
            is not None
        )

    if not feasible(low):
        return None
    best, iterations, certified = _binary_search_largest(
        feasible, low, high, tolerance
    )
    return BoundResult(lower_bound=best, iterations=iterations, certified=certified)


def sampled_minimum(
    poly: Polynomial,
    box: Optional[Tuple[float, float]] = (0.0, 1.0),
    restarts: int = 16,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """A numeric upper bound on the minimum: multistart local minimisation.

    ``box=None`` searches over ``R^s`` from Gaussian starts (used by the
    unconstrained Shor bound); otherwise starts are uniform in the box and
    iterates stay inside via L-BFGS-B bounds.
    """
    rng = rng or np.random.default_rng(0)
    nvars = poly.nvars
    if nvars == 0:
        return poly([])
    grads = poly.gradient()

    def objective(x):
        return poly(list(x)), np.array([g(list(x)) for g in grads])

    best = np.inf
    for _ in range(restarts):
        if box is None:
            start = rng.normal(0.0, 1.0, size=nvars)
            bounds = None
        else:
            start = rng.uniform(box[0], box[1], size=nvars)
            bounds = [box] * nvars
        result = sp_optimize.minimize(
            objective, start, jac=True, method="L-BFGS-B", bounds=bounds
        )
        best = min(best, float(result.fun))
    return best

"""Polynomial feasibility programs and ``K(A, B, Π)`` (Proposition 6.1).

Section 6 recasts safety as semialgebraic emptiness: for an *algebraic
family* ``Π`` described by polynomial inequalities
``α₁ ≥ 0, …, α_r ≥ 0`` over the variables ``(p_x)_{x∈{0,1}^n}``, the set

    ``K(A, B, Π) = { p : Σ_{w∈AB} p_w > Σ_{x∈A} p_x · Σ_{y∈B} p_y,
                      α_i(p) ≥ 0,  Σ p_x = 1,  p_x ≥ 0 }``

is empty iff ``Safe_Π(A, B)``.  This module builds these programs for the
families of the paper (products, log-super/submodular, arbitrary algebraic
constraints) in both the ``2^n``-variable general form and the
``n``-variable reduced form used by Section 6.1 for product distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.worlds import HypercubeSpace, PropertySet
from .polynomial import Polynomial


@dataclass
class PolynomialProgram:
    """A semialgebraic set described by polynomial constraints.

    ``{x ∈ R^nvars : g ≥ 0 ∀g ∈ inequalities, h = 0 ∀h ∈ equalities,
    s > 0 ∀s ∈ strict_inequalities}``.
    """

    nvars: int
    inequalities: List[Polynomial] = field(default_factory=list)
    equalities: List[Polynomial] = field(default_factory=list)
    strict_inequalities: List[Polynomial] = field(default_factory=list)
    variable_names: Optional[Sequence[str]] = None

    def _check(self, poly: Polynomial) -> Polynomial:
        if poly.nvars != self.nvars:
            raise ValueError(
                f"constraint over {poly.nvars} variables in a {self.nvars}-variable program"
            )
        return poly

    def add_inequality(self, poly: Polynomial) -> None:
        """Add ``poly ≥ 0``."""
        self.inequalities.append(self._check(poly))

    def add_equality(self, poly: Polynomial) -> None:
        """Add ``poly = 0``."""
        self.equalities.append(self._check(poly))

    def add_strict(self, poly: Polynomial) -> None:
        """Add ``poly > 0``."""
        self.strict_inequalities.append(self._check(poly))

    @property
    def n_constraints(self) -> int:
        return (
            len(self.inequalities)
            + len(self.equalities)
            + len(self.strict_inequalities)
        )

    def max_degree(self) -> int:
        return max(
            (
                poly.total_degree()
                for poly in (
                    self.inequalities + self.equalities + self.strict_inequalities
                )
            ),
            default=0,
        )

    def is_satisfied(self, point: Sequence[float], tol: float = 1e-9) -> bool:
        """Whether ``point`` belongs to the semialgebraic set (up to ``tol``)."""
        return (
            all(g(point) >= -tol for g in self.inequalities)
            and all(abs(h(point)) <= tol for h in self.equalities)
            and all(s(point) > tol for s in self.strict_inequalities)
        )

    def violation(self, point: Sequence[float]) -> float:
        """The largest constraint violation at ``point`` (0 when satisfied)."""
        worst = 0.0
        for g in self.inequalities:
            worst = max(worst, -g(point))
        for h in self.equalities:
            worst = max(worst, abs(h(point)))
        for s in self.strict_inequalities:
            worst = max(worst, -s(point) + 1e-15)
        return worst

    def combined_equality(self) -> Optional[Polynomial]:
        """The paper's optimisation: fold equalities into one ``Σ h_i² = 0``.

        "If there are multiple linear equality constraints
        ``L_i(X₁,…,X_s) = 0``, it is helpful to combine them into a single
        quadratic constraint ``Σ L_i² = 0``" (Section 6.1) — because the
        decision algorithms are exponential in the number of constraints.
        """
        if not self.equalities:
            return None
        total = Polynomial(self.nvars)
        for h in self.equalities:
            total = total + h * h
        return total


# ---------------------------------------------------------------------------
# Families over the 2^n variables (p_x)_{x ∈ {0,1}^n}.
# ---------------------------------------------------------------------------


def _p(space: HypercubeSpace, world: int) -> Polynomial:
    return Polynomial.variable(world, space.size)


def simplex_constraints(space: HypercubeSpace) -> Tuple[List[Polynomial], Polynomial]:
    """``p_x ≥ 0`` for all x, and ``Σ p_x − 1 = 0``."""
    nonneg = [_p(space, x) for x in range(space.size)]
    total = Polynomial(space.size)
    for x in range(space.size):
        total = total + _p(space, x)
    return nonneg, total - 1


def log_supermodular_constraints(space: HypercubeSpace) -> List[Polynomial]:
    """``α_{x,y} = p_{x∧y}·p_{x∨y} − p_x·p_y ≥ 0`` for all pairs (Section 6)."""
    constraints = []
    for x in range(space.size):
        for y in range(x + 1, space.size):
            if (x & y) == x or (x & y) == y:
                continue  # comparable pairs are trivial
            constraints.append(
                _p(space, x & y) * _p(space, x | y) - _p(space, x) * _p(space, y)
            )
    return constraints


def log_submodular_constraints(space: HypercubeSpace) -> List[Polynomial]:
    """``α_{x,y} = p_x·p_y − p_{x∧y}·p_{x∨y} ≥ 0`` for all pairs."""
    return [-c for c in log_supermodular_constraints(space)]


def product_constraints(space: HypercubeSpace) -> List[Polynomial]:
    """Both directions at once: the product family as an algebraic family."""
    supermodular = log_supermodular_constraints(space)
    return supermodular + [-c for c in supermodular]


def gap_strict_inequality(
    audited: PropertySet, disclosed: PropertySet
) -> Polynomial:
    """``Σ_{w∈AB} p_w − Σ_{x∈A} p_x · Σ_{y∈B} p_y > 0`` over the ``p_x``."""
    space = audited.space
    if not isinstance(space, HypercubeSpace):
        raise TypeError("K(A,B,Π) programs are defined over hypercube spaces")
    space.check_same(disclosed.space)
    sum_ab = Polynomial(space.size)
    for w in audited & disclosed:
        sum_ab = sum_ab + _p(space, w)
    sum_a = Polynomial(space.size)
    for w in audited:
        sum_a = sum_a + _p(space, w)
    sum_b = Polynomial(space.size)
    for w in disclosed:
        sum_b = sum_b + _p(space, w)
    return sum_ab - sum_a * sum_b


def k_program(
    audited: PropertySet,
    disclosed: PropertySet,
    family_constraints: Sequence[Polynomial],
) -> PolynomialProgram:
    """The set ``K(A, B, Π)`` of Proposition 6.1 as a polynomial program.

    ``Safe_Π(A, B)`` holds iff the program is infeasible.
    """
    space = audited.space
    if not isinstance(space, HypercubeSpace):
        raise TypeError("K(A,B,Π) programs are defined over hypercube spaces")
    program = PolynomialProgram(
        nvars=space.size,
        variable_names=[f"p_{space.world_label(x)}" for x in range(space.size)],
    )
    nonneg, total = simplex_constraints(space)
    for constraint in nonneg:
        program.add_inequality(constraint)
    program.add_equality(total)
    for constraint in family_constraints:
        program.add_inequality(constraint)
    program.add_strict(gap_strict_inequality(audited, disclosed))
    return program


# ---------------------------------------------------------------------------
# The Section 6.1 reduced program over n Bernoulli variables.
# ---------------------------------------------------------------------------


def reduced_product_program(
    audited: PropertySet, disclosed: PropertySet
) -> PolynomialProgram:
    """The n-variable embedding of ``K(A, B, Π_m⁰)`` from Section 6.1.

    Variables ``p₁, …, p_n`` constrained by ``p_i(1−p_i) ≥ 0`` (i.e.
    ``p_i ∈ [0,1]``) with the strict inequality
    ``P[AB](p) − P[A](p)·P[B](p) > 0``.  "We can write this with n variables
    and n + 1 inequalities."  Emptiness ⇔ ``Safe_{Π_m⁰}(A, B)``.
    """
    from .encode import safety_gap_polynomial

    space = audited.space
    if not isinstance(space, HypercubeSpace):
        raise TypeError("the reduced program is defined over hypercube spaces")
    program = PolynomialProgram(
        nvars=space.n,
        variable_names=[f"p{i + 1}" for i in range(space.n)],
    )
    for i in range(space.n):
        x = Polynomial.variable(i, space.n)
        program.add_inequality(x - x * x)
    program.add_strict(-safety_gap_polynomial(audited, disclosed))
    return program


def feasibility_by_sampling(
    program: PolynomialProgram,
    samples: int = 2000,
    rng: Optional[np.random.Generator] = None,
    box: Tuple[float, float] = (0.0, 1.0),
    sampler=None,
) -> Optional[np.ndarray]:
    """Cheap randomized feasibility probe: a satisfying point or ``None``.

    Draws points (uniform in the box by default, or from ``sampler(rng)``)
    and returns the first satisfying one.  Sound for feasibility (a returned
    point is verified), never a proof of emptiness.  Programs with equality
    constraints need a sampler supported on the equality manifold — e.g.
    :func:`simplex_sampler` for ``K(A, B, Π)`` programs.
    """
    rng = rng or np.random.default_rng(0)
    low, high = box
    for _ in range(samples):
        if sampler is not None:
            point = np.asarray(sampler(rng), dtype=float)
        else:
            point = rng.uniform(low, high, size=program.nvars)
        if program.is_satisfied(point):
            return point
    return None


def simplex_sampler(nvars: int):
    """A Dirichlet(1) sampler over the probability simplex of ``nvars`` entries.

    Use with :func:`feasibility_by_sampling` on :func:`k_program` outputs,
    whose ``Σ p_x = 1`` equality uniform box sampling can never hit.
    """

    def sample(rng: np.random.Generator) -> np.ndarray:
        return rng.dirichlet(np.ones(nvars))

    return sample

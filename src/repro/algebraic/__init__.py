"""Algebraic machinery for Section 6: polynomial programs, SOS, hardness.

A from-scratch sparse polynomial library, encodings of event probabilities
as polynomials in Bernoulli parameters, the semialgebraic programs
``K(A, B, Π)`` of Proposition 6.1, a mini SDP-feasibility solver powering
the sum-of-squares heuristic of Section 6.2, Positivstellensatz refutations
(Theorem 6.7), the Motzkin polynomial, and the MAX-CUT hardness reduction
(Theorem 6.2).
"""

from .certificates import (
    Refutation,
    cone_products,
    monoid_members,
    refute_feasibility,
    refutes_emptiness_of_interval,
)
from .critical import (
    BoxMinimum,
    decide_safety_by_critical_points,
    minimize_bivariate_on_box,
    minimize_univariate_on_interval,
    solve_bivariate_system,
    sylvester_resultant,
    univariate_real_roots,
)
from .encode import (
    TensorCache,
    evaluate_gap,
    event_multilinear_coeffs,
    event_polynomial,
    polynomial_from_tensor,
    safety_gap_polynomial,
    safety_gap_tensor,
)
from .maxcut import (
    Graph,
    MaxCutReduction,
    cut_polynomial,
    k_set_is_empty,
    maxcut_reduction,
    reduction_is_faithful,
    safe_under_graph_family,
)
from .minimize import (
    BoundResult,
    box_lower_bound,
    sampled_minimum,
    sos_lower_bound,
)
from .motzkin import amgm_gap, motzkin_artin_lift, motzkin_polynomial, motzkin_value
from .polynomial import Monomial, Polynomial, monomials_up_to_degree
from .program import (
    PolynomialProgram,
    feasibility_by_sampling,
    gap_strict_inequality,
    k_program,
    log_submodular_constraints,
    log_supermodular_constraints,
    product_constraints,
    reduced_product_program,
    simplex_constraints,
    simplex_sampler,
)
from .sdp import (
    AffineSystem,
    FeasibilityResult,
    project_psd,
    solve_psd_feasibility,
)
from .sos import (
    BoxCertificate,
    HandelmanCertificate,
    SOSDecomposition,
    certify_box_nonnegative,
    certify_gap_nonnegative,
    handelman_certificate,
    is_sos,
    sos_decompose,
)

__all__ = [
    "AffineSystem",
    "BoundResult",
    "BoxCertificate",
    "BoxMinimum",
    "FeasibilityResult",
    "Graph",
    "HandelmanCertificate",
    "MaxCutReduction",
    "Monomial",
    "Polynomial",
    "PolynomialProgram",
    "Refutation",
    "SOSDecomposition",
    "amgm_gap",
    "box_lower_bound",
    "certify_box_nonnegative",
    "certify_gap_nonnegative",
    "cone_products",
    "cut_polynomial",
    "decide_safety_by_critical_points",
    "evaluate_gap",
    "event_multilinear_coeffs",
    "event_polynomial",
    "feasibility_by_sampling",
    "gap_strict_inequality",
    "handelman_certificate",
    "is_sos",
    "k_program",
    "k_set_is_empty",
    "log_submodular_constraints",
    "log_supermodular_constraints",
    "maxcut_reduction",
    "minimize_bivariate_on_box",
    "minimize_univariate_on_interval",
    "monoid_members",
    "monomials_up_to_degree",
    "motzkin_artin_lift",
    "motzkin_polynomial",
    "motzkin_value",
    "polynomial_from_tensor",
    "product_constraints",
    "project_psd",
    "reduced_product_program",
    "reduction_is_faithful",
    "refute_feasibility",
    "refutes_emptiness_of_interval",
    "safe_under_graph_family",
    "sampled_minimum",
    "safety_gap_polynomial",
    "safety_gap_tensor",
    "TensorCache",
    "simplex_constraints",
    "simplex_sampler",
    "solve_bivariate_system",
    "solve_psd_feasibility",
    "sos_decompose",
    "sos_lower_bound",
    "sylvester_resultant",
    "univariate_real_roots",
]

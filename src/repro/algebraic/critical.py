"""Critical-point polynomial minimisation (the Section 6.1 toolbox).

"One finds the critical points of q(x), that is, the set V_C of common
zeros of its partial derivatives over the complex field C. … Various
approaches are used to find the subset V_R of V_C of real-valued points.
Since V_R is finite, once it is found q is evaluated on each of its
elements and the minimum value is taken. The main step is finding V_R, and
approaches based on Gröbner bases, **resultant theory**, and homotopy
theory exist."

This module implements the resultant route for one and two variables —
enough to decide product-family safety for ``n ≤ 2`` by exact critical-point
analysis, cross-validated in the tests against the Bernstein decision:

* univariate real roots via companion matrices (``numpy.roots``);
* bivariate elimination via Sylvester resultants (determinants evaluated
  by interpolation);
* box minimisation by enumerating interior critical points, edge critical
  points, and corners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .polynomial import Polynomial

#: Roots with |imaginary part| below this are treated as real.
REAL_TOL = 1e-7

#: Tolerance for verifying candidate system solutions.
RESIDUAL_TOL = 1e-6


def univariate_coefficients(poly: Polynomial) -> np.ndarray:
    """Dense ascending coefficients of a 1-variable polynomial."""
    if poly.nvars != 1:
        raise ValueError("expected a univariate polynomial")
    degree = poly.total_degree()
    coeffs = np.zeros(degree + 1)
    for (e,), c in poly.coeffs.items():
        coeffs[e] = c
    return coeffs


def univariate_real_roots(poly: Polynomial, real_tol: float = REAL_TOL) -> List[float]:
    """All real roots of a univariate polynomial (companion-matrix method)."""
    coeffs = univariate_coefficients(poly)
    # Trim leading (highest-degree) zeros for numpy.roots.
    nonzero = np.flatnonzero(np.abs(coeffs) > 0.0)
    if nonzero.size == 0:
        return []  # the zero polynomial: every point is a root; callers treat as none
    top = int(nonzero.max())
    if top == 0:
        return []  # nonzero constant: no roots
    descending = coeffs[: top + 1][::-1]
    roots = np.roots(descending)
    return sorted(
        float(r.real) for r in roots if abs(r.imag) <= real_tol * max(1.0, abs(r))
    )


def _as_poly_in(poly: Polynomial, main_var: int) -> List[Polynomial]:
    """Rewrite a bivariate polynomial as coefficients (in the other var) of
    powers of ``main_var``: ``f = Σ_k coeff_k(other) · main^k``."""
    if poly.nvars != 2:
        raise ValueError("expected a bivariate polynomial")
    other = 1 - main_var
    degree = poly.degree_in(main_var)
    buckets: List[dict] = [dict() for _ in range(degree + 1)]
    for mono, c in poly.coeffs.items():
        k = mono[main_var]
        other_mono = (mono[other],)
        buckets[k][other_mono] = buckets[k].get(other_mono, 0.0) + c
    return [Polynomial(1, bucket) for bucket in buckets]


def sylvester_resultant(
    f: Polynomial, g: Polynomial, eliminate: int
) -> Polynomial:
    """The resultant of two bivariate polynomials w.r.t. ``eliminate``.

    Returns a univariate polynomial in the *other* variable whose roots
    contain the projections of all common zeros.  The determinant of the
    polynomial Sylvester matrix is computed by evaluation–interpolation:
    numeric determinants at Chebyshev-like sample points, then a Vandermonde
    solve for the coefficients.
    """
    fc = _as_poly_in(f, eliminate)
    gc = _as_poly_in(g, eliminate)
    m = len(fc) - 1
    n = len(gc) - 1
    if m < 0 or n < 0 or (m == 0 and n == 0):
        raise ValueError("resultant needs positive degree in the eliminated variable")
    size = m + n
    # Degree bound of the resultant in the surviving variable.
    deg_f = max((p.total_degree() for p in fc), default=0)
    deg_g = max((p.total_degree() for p in gc), default=0)
    bound = n * deg_f + m * deg_g
    samples = np.cos(np.pi * (np.arange(bound + 1) + 0.5) / (bound + 1)) * 2.0

    def det_at(t: float) -> float:
        matrix = np.zeros((size, size))
        f_vals = [p([t]) for p in fc]
        g_vals = [p([t]) for p in gc]
        for row in range(n):  # n rows of f's coefficients
            for k, value in enumerate(f_vals):
                matrix[row, row + (m - k)] = value
        for row in range(m):  # m rows of g's coefficients
            for k, value in enumerate(g_vals):
                matrix[n + row, row + (n - k)] = value
        return float(np.linalg.det(matrix))

    values = np.array([det_at(t) for t in samples])
    vander = np.vander(samples, bound + 1, increasing=True)
    coeffs, *_ = np.linalg.lstsq(vander, values, rcond=None)
    coeffs[np.abs(coeffs) < 1e-9 * max(1.0, np.abs(coeffs).max())] = 0.0
    return Polynomial(1, {(k,): float(c) for k, c in enumerate(coeffs) if c != 0.0})


def solve_bivariate_system(
    f: Polynomial, g: Polynomial, residual_tol: float = RESIDUAL_TOL
) -> List[Tuple[float, float]]:
    """Real common zeros of two bivariate polynomials, via resultants.

    Eliminates variable 2 (index 1), finds real roots of the resultant in
    variable 1, back-substitutes and solves univariately, then verifies
    each candidate against both polynomials.  Complete up to numerical
    tolerance when the system is zero-dimensional.
    """
    if f.nvars != 2 or g.nvars != 2:
        raise ValueError("expected bivariate polynomials")
    if f.degree_in(1) == 0 and g.degree_in(1) == 0:
        # No y-dependence: intersect the univariate root sets in x.
        fx = Polynomial(1, {(m[0],): c for m, c in f.coeffs.items()})
        gx = Polynomial(1, {(m[0],): c for m, c in g.coeffs.items()})
        xs = set(univariate_real_roots(fx)) if len(fx) else set()
        solutions = []
        for x in xs:
            if abs(gx([x])) <= residual_tol:
                solutions.append((x, 0.0))
        return solutions
    if f.degree_in(1) == 0:
        f, g = g, f  # ensure f has y-degree for the elimination below
    resultant = sylvester_resultant(f, g, eliminate=1) if g.degree_in(1) > 0 else None
    if resultant is None:
        # g has no y: roots of g in x, then solve f(x, ·) = 0.
        gx = Polynomial(1, {(m[0],): c for m, c in g.coeffs.items()})
        xs = univariate_real_roots(gx)
    else:
        xs = univariate_real_roots(resultant)
    solutions: List[Tuple[float, float]] = []
    for x in xs:
        fy = Polynomial(
            1,
            _collapse_to_y(f.substitute({0: x})),
        )
        candidates_y = univariate_real_roots(fy)
        if not candidates_y and fy.is_zero(1e-10):
            candidates_y = univariate_real_roots(
                Polynomial(1, _collapse_to_y(g.substitute({0: x})))
            )
        for y in candidates_y:
            if abs(f([x, y])) <= residual_tol and abs(g([x, y])) <= residual_tol:
                solutions.append((x, y))
    # Deduplicate nearby points.
    unique: List[Tuple[float, float]] = []
    for point in solutions:
        if not any(
            abs(point[0] - q[0]) < 1e-7 and abs(point[1] - q[1]) < 1e-7
            for q in unique
        ):
            unique.append(point)
    return unique


def _collapse_to_y(poly: Polynomial) -> dict:
    """Coefficients of a (substituted) bivariate polynomial as univariate-in-y."""
    result: dict = {}
    for mono, c in poly.coeffs.items():
        if mono[0] != 0:
            raise ValueError("substitution left x-dependence behind")
        result[(mono[1],)] = result.get((mono[1],), 0.0) + c
    return result


@dataclass(frozen=True)
class BoxMinimum:
    """The minimum of a polynomial over a box, with its witness point."""

    value: float
    point: Tuple[float, ...]
    candidates_examined: int


def minimize_univariate_on_interval(
    poly: Polynomial, low: float = 0.0, high: float = 1.0
) -> BoxMinimum:
    """Exact minimisation on an interval: endpoints + derivative roots."""
    candidates = [low, high]
    candidates.extend(
        r for r in univariate_real_roots(poly.partial(0)) if low < r < high
    )
    best_value = np.inf
    best_point = low
    for x in candidates:
        value = poly([x])
        if value < best_value:
            best_value = value
            best_point = x
    return BoxMinimum(float(best_value), (float(best_point),), len(candidates))


def minimize_bivariate_on_box(
    poly: Polynomial, low: float = 0.0, high: float = 1.0
) -> BoxMinimum:
    """Critical-point minimisation of a bivariate polynomial on a square.

    Candidates: the four corners, edge-restricted critical points (univariate
    derivative roots), and interior critical points (``∇f = 0`` solved by
    resultants).  This is the Section 6.1 recipe at n = 2.
    """
    if poly.nvars != 2:
        raise ValueError("expected a bivariate polynomial")
    candidates: List[Tuple[float, float]] = [
        (low, low), (low, high), (high, low), (high, high)
    ]
    # Edges: fix one variable at a bound, minimise the restriction.
    for var, bound in ((0, low), (0, high), (1, low), (1, high)):
        restricted = poly.substitute({var: bound})
        other = 1 - var
        uni = Polynomial(
            1, {(m[other],): c for m, c in restricted.coeffs.items() if m[var] == 0}
        )
        if uni.total_degree() >= 1:
            for r in univariate_real_roots(uni.partial(0)):
                if low < r < high:
                    point = [0.0, 0.0]
                    point[var] = bound
                    point[other] = r
                    candidates.append((point[0], point[1]))
    # Interior: ∇f = 0 via resultants.
    fx, fy = poly.gradient()
    if not fx.is_zero() and not fy.is_zero():
        if fx.total_degree() >= 1 and fy.total_degree() >= 1:
            for x, y in solve_bivariate_system(fx, fy):
                if low < x < high and low < y < high:
                    candidates.append((x, y))
    # Degeneracy guard: when the gradient variety has positive-dimensional
    # components the resultant vanishes identically and isolated interior
    # minima on component intersections are missed.  The paper's remedy is
    # to perturb q and apply Bézout; numerically, a multistart local polish
    # over the box recovers those candidates (it only *adds* candidates, so
    # soundness of the minimum over the candidate set is unaffected).
    candidates.extend(_polished_interior_minima(poly, low, high))
    best_value = np.inf
    best_point = candidates[0]
    for point in candidates:
        value = poly(list(point))
        if value < best_value:
            best_value = value
            best_point = point
    return BoxMinimum(float(best_value), tuple(map(float, best_point)), len(candidates))


def _polished_interior_minima(
    poly: Polynomial, low: float, high: float
) -> List[Tuple[float, float]]:
    """Multistart local minimisation over the box (degenerate-case fallback)."""
    from scipy import optimize as sp_optimize

    grads = poly.gradient()

    def objective(v):
        point = list(v)
        return poly(point), np.array([g(point) for g in grads])

    results: List[Tuple[float, float]] = []
    grid = np.linspace(low, high, 4)
    starts = [(x, y) for x in grid for y in grid]
    for start in starts:
        solution = sp_optimize.minimize(
            objective,
            np.asarray(start, dtype=float),
            jac=True,
            method="L-BFGS-B",
            bounds=[(low, high), (low, high)],
        )
        results.append((float(solution.x[0]), float(solution.x[1])))
    return results


def decide_safety_by_critical_points(audited, disclosed, atol: float = 1e-9):
    """Product-family safety for ``n ≤ 2`` via critical-point minimisation.

    The Section 6.1 narrative made concrete: the safety gap's minimum over
    the Bernoulli box is computed from finitely many critical points; its
    sign decides ``Safe_{Π_m⁰}(A, B)``.  Returns ``(is_safe, minimum,
    witness_point)``.
    """
    from .encode import safety_gap_polynomial

    gap = safety_gap_polynomial(audited, disclosed)
    if gap.nvars == 0:
        value = gap([])
        return value >= -atol, value, ()
    if gap.nvars == 1:
        result = minimize_univariate_on_interval(gap)
    elif gap.nvars == 2:
        result = minimize_bivariate_on_box(gap)
    else:
        raise ValueError("critical-point decision implemented for n ≤ 2")
    return result.value >= -atol, result.value, result.point

"""A sparse multivariate polynomial library over the reals.

Built from scratch (no sympy offline) to support the Section 6 machinery:
polynomial feasibility programs ``K(A, B, Π)``, the sum-of-squares heuristic,
Positivstellensatz certificates, and the Bernstein-based exact decision
procedure.  Monomials are exponent tuples; coefficients are floats.

The class is immutable-by-convention: all arithmetic returns new instances.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

Monomial = Tuple[int, ...]

#: Coefficients with magnitude below this are dropped during pruning.
DEFAULT_PRUNE_TOL = 0.0


class Polynomial:
    """A sparse polynomial in ``nvars`` real variables.

    Supports ``+ - *`` (with scalars and polynomials), ``**`` by nonnegative
    integers, evaluation, partial derivatives and gradients, degree queries,
    and pretty-printing.  Exponent keys always have length ``nvars``.
    """

    __slots__ = ("_nvars", "_coeffs")

    def __init__(
        self,
        nvars: int,
        coeffs: Optional[Mapping[Monomial, float]] = None,
        prune_tol: float = DEFAULT_PRUNE_TOL,
    ) -> None:
        if nvars < 0:
            raise ValueError("number of variables must be nonnegative")
        self._nvars = nvars
        cleaned: Dict[Monomial, float] = {}
        if coeffs:
            for mono, coef in coeffs.items():
                mono = tuple(int(e) for e in mono)
                if len(mono) != nvars:
                    raise ValueError(
                        f"monomial {mono} has wrong arity for {nvars} variables"
                    )
                if any(e < 0 for e in mono):
                    raise ValueError(f"negative exponent in monomial {mono}")
                value = float(coef)
                if value != 0.0 and abs(value) > prune_tol:
                    cleaned[mono] = cleaned.get(mono, 0.0) + value
                    if cleaned[mono] == 0.0:
                        del cleaned[mono]
        self._coeffs = cleaned

    # -- constructors -----------------------------------------------------------

    @classmethod
    def constant(cls, nvars: int, value: float) -> "Polynomial":
        if value == 0.0:
            return cls(nvars)
        return cls(nvars, {(0,) * nvars: value})

    @classmethod
    def variable(cls, index: int, nvars: int) -> "Polynomial":
        """The polynomial ``x_index`` (0-based) among ``nvars`` variables."""
        if not 0 <= index < nvars:
            raise ValueError(f"variable index {index} outside 0..{nvars - 1}")
        mono = tuple(1 if i == index else 0 for i in range(nvars))
        return cls(nvars, {mono: 1.0})

    @classmethod
    def from_terms(
        cls, nvars: int, terms: Iterable[Tuple[float, Monomial]]
    ) -> "Polynomial":
        coeffs: Dict[Monomial, float] = {}
        for coef, mono in terms:
            mono = tuple(mono)
            coeffs[mono] = coeffs.get(mono, 0.0) + coef
        return cls(nvars, coeffs)

    # -- accessors --------------------------------------------------------------

    @property
    def nvars(self) -> int:
        return self._nvars

    @property
    def coeffs(self) -> Dict[Monomial, float]:
        """A copy of the monomial-to-coefficient map."""
        return dict(self._coeffs)

    def coefficient(self, mono: Monomial) -> float:
        return self._coeffs.get(tuple(mono), 0.0)

    def __len__(self) -> int:
        return len(self._coeffs)

    def is_zero(self, tol: float = 0.0) -> bool:
        return all(abs(c) <= tol for c in self._coeffs.values())

    def max_abs_coefficient(self) -> float:
        return max((abs(c) for c in self._coeffs.values()), default=0.0)

    def total_degree(self) -> int:
        return max((sum(m) for m in self._coeffs), default=0)

    def degree_in(self, index: int) -> int:
        return max((m[index] for m in self._coeffs), default=0)

    def is_multilinear(self) -> bool:
        return all(all(e <= 1 for e in m) for m in self._coeffs)

    # -- arithmetic ----------------------------------------------------------------

    def _check_arity(self, other: "Polynomial") -> None:
        if self._nvars != other._nvars:
            raise ValueError(
                f"arity mismatch: {self._nvars} vs {other._nvars} variables"
            )

    def __add__(self, other) -> "Polynomial":
        if isinstance(other, (int, float)):
            other = Polynomial.constant(self._nvars, float(other))
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_arity(other)
        coeffs = dict(self._coeffs)
        for mono, coef in other._coeffs.items():
            coeffs[mono] = coeffs.get(mono, 0.0) + coef
        return Polynomial(self._nvars, coeffs)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial(
            self._nvars, {m: -c for m, c in self._coeffs.items()}
        )

    def __sub__(self, other) -> "Polynomial":
        if isinstance(other, (int, float)):
            return self + (-float(other))
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other) -> "Polynomial":
        return (-self) + other

    def __mul__(self, other) -> "Polynomial":
        if isinstance(other, (int, float)):
            scalar = float(other)
            if scalar == 0.0:
                return Polynomial(self._nvars)
            return Polynomial(
                self._nvars, {m: c * scalar for m, c in self._coeffs.items()}
            )
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_arity(other)
        coeffs: Dict[Monomial, float] = {}
        for m1, c1 in self._coeffs.items():
            for m2, c2 in other._coeffs.items():
                mono = tuple(e1 + e2 for e1, e2 in zip(m1, m2))
                coeffs[mono] = coeffs.get(mono, 0.0) + c1 * c2
        return Polynomial(self._nvars, coeffs)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("only nonnegative integer powers are supported")
        result = Polynomial.constant(self._nvars, 1.0)
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base * base if e > 1 else base
            e >>= 1
        return result

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float)):
            other = Polynomial.constant(self._nvars, float(other))
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._nvars == other._nvars and self._coeffs == other._coeffs

    def __hash__(self) -> int:
        return hash((self._nvars, frozenset(self._coeffs.items())))

    def almost_equal(self, other: "Polynomial", tol: float = 1e-9) -> bool:
        """Coefficient-wise comparison up to ``tol``."""
        self._check_arity(other)
        return (self - other).max_abs_coefficient() <= tol

    # -- calculus -------------------------------------------------------------------

    def partial(self, index: int) -> "Polynomial":
        """The partial derivative ``∂/∂x_index``."""
        if not 0 <= index < self._nvars:
            raise ValueError(f"variable index {index} outside 0..{self._nvars - 1}")
        coeffs: Dict[Monomial, float] = {}
        for mono, coef in self._coeffs.items():
            e = mono[index]
            if e == 0:
                continue
            lowered = tuple(
                v - 1 if i == index else v for i, v in enumerate(mono)
            )
            coeffs[lowered] = coeffs.get(lowered, 0.0) + coef * e
        return Polynomial(self._nvars, coeffs)

    def gradient(self) -> List["Polynomial"]:
        return [self.partial(i) for i in range(self._nvars)]

    # -- evaluation -------------------------------------------------------------------

    def __call__(self, point: Sequence[float]) -> float:
        if len(point) != self._nvars:
            raise ValueError(
                f"expected {self._nvars} coordinates, got {len(point)}"
            )
        total = 0.0
        for mono, coef in self._coeffs.items():
            term = coef
            for value, exponent in zip(point, mono):
                if exponent:
                    term *= value**exponent
            total += term
        return total

    def substitute(self, assignments: Mapping[int, float]) -> "Polynomial":
        """Partially evaluate some variables (arity is preserved)."""
        coeffs: Dict[Monomial, float] = {}
        for mono, coef in self._coeffs.items():
            value = coef
            new_mono = list(mono)
            for index, point in assignments.items():
                e = mono[index]
                if e:
                    value *= point**e
                new_mono[index] = 0
            key = tuple(new_mono)
            coeffs[key] = coeffs.get(key, 0.0) + value
        return Polynomial(self._nvars, coeffs)

    # -- presentation --------------------------------------------------------------------

    def sorted_terms(self) -> List[Tuple[Monomial, float]]:
        """Terms in graded-lexicographic order (deterministic output)."""
        return sorted(
            self._coeffs.items(), key=lambda item: (sum(item[0]), item[0])
        )

    def to_string(self, names: Optional[Sequence[str]] = None) -> str:
        if not self._coeffs:
            return "0"
        names = names or [f"x{i + 1}" for i in range(self._nvars)]
        parts = []
        for mono, coef in self.sorted_terms():
            factors = []
            for name, e in zip(names, mono):
                if e == 1:
                    factors.append(name)
                elif e > 1:
                    factors.append(f"{name}^{e}")
            body = "*".join(factors)
            if not body:
                parts.append(f"{coef:g}")
            elif coef == 1.0:
                parts.append(body)
            elif coef == -1.0:
                parts.append(f"-{body}")
            else:
                parts.append(f"{coef:g}*{body}")
        text = " + ".join(parts)
        return text.replace("+ -", "- ")

    def __repr__(self) -> str:
        body = self.to_string()
        if len(body) > 120:
            body = body[:117] + "..."
        return f"Polynomial({body})"


def monomials_up_to_degree(
    nvars: int, degree: int, max_degree_per_var: Optional[int] = None
) -> List[Monomial]:
    """All exponent tuples with total degree ≤ ``degree`` (graded-lex order).

    ``max_degree_per_var`` optionally caps each exponent (e.g. 1 for
    multilinear bases, the natural choice on the hypercube where
    ``p_i² = p_i`` cannot be assumed but multilinear Gram bases stay small).
    """
    cap = degree if max_degree_per_var is None else max_degree_per_var
    result: List[Monomial] = []

    def extend(prefix: List[int], remaining: int) -> None:
        if len(prefix) == nvars:
            result.append(tuple(prefix))
            return
        for e in range(min(cap, remaining) + 1):
            prefix.append(e)
            extend(prefix, remaining - e)
            prefix.pop()

    extend([], degree)
    result.sort(key=lambda m: (sum(m), m))
    return result

#!/usr/bin/env python
"""End-to-end smoke for ``repro serve``: boot, replay, SIGTERM, clean drain.

Exercises the gateway exactly the way an operator would — through the CLI,
over real sockets, torn down by a real signal:

1. write the example scenario to a scratch directory and boot
   ``python -m repro serve`` on ephemeral ports;
2. replay a 1,000-event two-tenant trace through two concurrent
   JSON-lines connections, asserting every response is a decision
   (retrying honest sheds) and probing the HTTP health endpoint;
3. send SIGTERM and assert the drain is clean: exit status 0, the
   ``drained:`` report shows ``flushed`` with zero drain-sheds, and the
   per-tenant footer accounts for all 1,000 decisions.

Then a second leg runs the same trace with ``--workers 2`` and sends a
real ``kill -9`` to one executor process mid-replay: the gateway must
shed the stranded batch with retry hints, respawn the executor, replay
its journal slice, and still decide every event — the footer must show
all 1,000 decisions plus at least one executor restart.

Run via ``make serve-smoke``; CI runs it on every push.  Exit status 0
means the online path held: admission, decisions, drain, accounting,
executor crash recovery.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.io import example_scenario_document  # noqa: E402
from repro.service import GatewayClient  # noqa: E402
from repro.service.executor import executor_index  # noqa: E402

N_EVENTS = 1_000
TENANTS = ("clinic-a", "clinic-b")
BOOT_TIMEOUT = 30.0
DRAIN_TIMEOUT = 30.0

#: Queries over the example scenario's ``facts`` table — a mix that lands
#: safe, suspicious, and compound verdicts so the replay exercises the
#: full decision surface, not just one cached answer.
QUERY_POOL = [
    "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'hiv_positive')",
    "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'transfusion')",
    "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'hiv_positive') "
    "IMPLIES EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'transfusion')",
    "NOT EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'transfusion')",
    "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'transfusion') "
    "OR EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'hiv_positive')",
]

BANNER = re.compile(r"listening on [\w.\-]+:(\d+) \(http [\w.\-]+:(\d+)\)")
EXECUTOR_PIDS = re.compile(r"executors pids=\[([\d, ]+)\]")


def boot(scenario_path: pathlib.Path, workdir: pathlib.Path, workers: int = 1):
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            str(scenario_path),
            "--port",
            "0",
            "--http-port",
            "0",
            "--journal",
            str(workdir / "journals"),
            "--store",
            str(workdir / "store"),
            "--store-backend",
            "sqlite",
            "--workers",
            str(workers),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        cwd=str(REPO),
    )
    assert process.stdout is not None
    banner = process.stdout.readline()
    match = BANNER.search(banner)
    if not match:
        process.kill()
        raise SystemExit(f"no listening banner; got: {banner!r}")
    pids_match = EXECUTOR_PIDS.search(banner)
    pids = (
        [int(pid) for pid in pids_match.group(1).split(",")]
        if pids_match
        else []
    )
    if workers > 1 and len(pids) != workers:
        process.kill()
        raise SystemExit(f"want {workers} executor pids; banner: {banner!r}")
    return process, int(match.group(1)), int(match.group(2)), pids


async def replay_tenant(port: int, tenant: str, events) -> int:
    decided = 0
    async with GatewayClient("127.0.0.1", port, tenant) as client:
        for time, user, query in events:
            while True:
                response = await client.decide(user, query, time=time)
                if response.get("decision") == "shed":
                    await asyncio.sleep(response["retry_after_ms"] / 1000.0)
                    continue
                if not response.get("ok"):
                    raise SystemExit(f"unexpected error response: {response}")
                decided += 1
                break
    return decided


async def probe_health(http_port: int) -> None:
    reader, writer = await asyncio.open_connection("127.0.0.1", http_port)
    writer.write(b"GET /healthz HTTP/1.0\r\n\r\n")
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), timeout=5.0)
    writer.close()
    body = raw.split(b"\r\n\r\n", 1)[1]
    health = json.loads(body)
    if not health.get("ok") or health.get("draining"):
        raise SystemExit(f"unhealthy gateway: {health}")


async def kill_executor_midway(pid: int, delay: float = 0.25) -> None:
    """A real crash, mid-replay: ``kill -9`` one executor process."""
    await asyncio.sleep(delay)
    os.kill(pid, signal.SIGKILL)


async def replay(port: int, http_port: int, kill_pid=None) -> None:
    lanes = {tenant: [] for tenant in TENANTS}
    for index in range(N_EVENTS):
        tenant = TENANTS[index % len(TENANTS)]
        lanes[tenant].append(
            (
                index,
                f"{tenant}/u{index % 5}",
                QUERY_POOL[index % len(QUERY_POOL)],
            )
        )
    await probe_health(http_port)
    tasks = [replay_tenant(port, tenant, lanes[tenant]) for tenant in TENANTS]
    if kill_pid is not None:
        tasks.append(kill_executor_midway(kill_pid))
    results = await asyncio.gather(*tasks)
    decided = sum(count for count in results if count is not None)
    if decided != N_EVENTS:
        raise SystemExit(f"decided {decided} of {N_EVENTS} events")


def run_leg(workers: int, kill_one_executor: bool = False) -> None:
    label = f"workers={workers}" + (
        " + executor kill -9" if kill_one_executor else ""
    )
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        workdir = pathlib.Path(tmp)
        scenario_path = workdir / "scenario.json"
        scenario_path.write_text(json.dumps(example_scenario_document()))

        process, port, http_port, pids = boot(
            scenario_path, workdir, workers=workers
        )
        # Kill the executor that owns a tenant's slice (the partition is a
        # stable hash, so compute it) — killing an idle one proves nothing.
        kill_pid = (
            pids[executor_index(TENANTS[0], workers)]
            if kill_one_executor
            else None
        )
        try:
            asyncio.run(replay(port, http_port, kill_pid=kill_pid))
            process.send_signal(signal.SIGTERM)
            output = process.stdout.read()
            status = process.wait(timeout=DRAIN_TIMEOUT)
        finally:
            if process.poll() is None:
                process.kill()

        print(output)
        if status != 0:
            raise SystemExit(f"serve exited {status} (want 0: clean drain)")
        drained_line = next(
            line for line in output.splitlines() if line.startswith("drained:")
        )
        report = json.loads(drained_line[len("drained:") :])
        if not report["flushed"] or report["drain_shed"] != 0:
            raise SystemExit(f"dirty drain: {report}")
        if kill_one_executor:
            # The killed executor's in-memory counters died with it, so
            # the footer may undercount `decided`; the client-side count
            # (asserted in replay()) is the end-to-end truth.  What the
            # footer must show is the recovery: a restart, and journal
            # replay for the tenants the dead executor owned.
            if "executor restarts=" not in output:
                raise SystemExit(
                    "killed an executor but the footer reports no restart"
                )
            if "recovered=" not in output:
                raise SystemExit(
                    "restarted executor reports no journal replay"
                )
        elif report["decided"] != N_EVENTS:
            raise SystemExit(
                f"footer accounts for {report['decided']} of {N_EVENTS}"
            )
        for tenant in TENANTS:
            if f"  {tenant}: " not in output:
                raise SystemExit(f"tenant {tenant} missing from footer")
        print(
            f"serve-smoke OK ({label}): {report['decided']} decisions over "
            f"{len(TENANTS)} tenants, clean drain"
        )


def main() -> int:
    run_leg(workers=1)
    run_leg(workers=2, kill_one_executor=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""How much more flexible is epistemic privacy?  A quick in-process study.

Replays the paper's headline comparison on your machine in ~a minute:
for every non-trivial pair of properties over three records, which privacy
definitions would allow the disclosure?

* perfect secrecy (Miklau–Suciu independence, Eq. 1);
* the symmetric relaxations of §1.1 (λ-bound, two-sided SuLQ), which
  punish confidence LOSS as well as gain;
* epistemic privacy (Eq. 3) — the paper's gain-only definition.

Run:  python examples/flexibility_study.py
"""

import random

import numpy as np

from repro.core import HypercubeSpace
from repro.probabilistic import (
    ProductFamily,
    decide_product_safety,
    definition_matrix,
    independence_holds,
)


def main() -> None:
    space = HypercubeSpace(3)
    rng = np.random.default_rng(0)
    priors = ProductFamily(space).sample_many(40, rng)

    rnd = random.Random(1)
    worlds = list(space.worlds())
    pairs = []
    while len(pairs) < 150:
        a = space.property_set([w for w in worlds if rnd.random() < 0.5])
        b = space.property_set([w for w in worlds if rnd.random() < 0.5])
        if a and b and not a.is_full() and not b.is_full():
            pairs.append((a, b))

    tallies = {
        "perfect secrecy (independence)": 0,
        "λ-bound (λ=0.15)": 0,
        "SuLQ two-sided (ε=0.35)": 0,
        "SuLQ gain-only (ε=0.35)": 0,
        "epistemic privacy (sampled priors)": 0,
        "epistemic privacy (exact decision)": 0,
    }
    for a, b in pairs:
        outcome = definition_matrix(priors, a, b, lam=0.15, epsilon=0.35)
        tallies["perfect secrecy (independence)"] += independence_holds(a, b)
        tallies["λ-bound (λ=0.15)"] += outcome.lambda_bound
        tallies["SuLQ two-sided (ε=0.35)"] += outcome.sulq_two_sided
        tallies["SuLQ gain-only (ε=0.35)"] += outcome.sulq_gain_only
        tallies["epistemic privacy (sampled priors)"] += outcome.epistemic
        tallies["epistemic privacy (exact decision)"] += decide_product_safety(
            a, b
        ).is_safe

    print(f"disclosures admitted, out of {len(pairs)} non-trivial (A,B) pairs")
    print(f"over {len(priors)} sampled product priors (n = 3 records):\n")
    width = max(len(k) for k in tallies)
    for name, count in tallies.items():
        bar = "█" * int(40 * count / len(pairs))
        print(f"  {name:<{width}}  {count:4d}  {bar}")
    print()
    print("reading: the gain-only definitions (bottom rows) admit far more")
    print("disclosures than perfect secrecy or the symmetric |…| relaxations —")
    print("the paper's 'remarkable increase in the flexibility of query auditing'.")


if __name__ == "__main__":
    main()

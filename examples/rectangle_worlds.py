"""Figure 1 / Example 4.9: possibilistic auditing with rectangle priors.

Reconstructs the paper's Figure 1 — a 14 × 7 pixel grid of worlds where the
admissible prior-knowledge sets are integer rectangles (∩-closed), the
privacy-sensitive region's complement Ā is an ellipse, and from the corner
world ω₁ = (1,1) there are exactly three minimal intervals to Ā:
the rectangles (1,1)−(4,4), (1,1)−(5,3) and (1,1)−(6,2).

A disclosed set B is private (assuming ω* = ω₁) iff it intersects each of
the three hatched regions Δ_K(Ā, ω₁).

Run:  python examples/rectangle_worlds.py
"""

from repro.possibilistic import Figure1Scenario, PossibilisticAuditor
from repro.possibilistic.figure1 import OMEGA_1


def main() -> None:
    scenario = Figure1Scenario.build()
    space = scenario.space

    print("Figure 1, reconstructed (@ = ω₁, . = Ā ellipse, # = Δ classes):")
    print(scenario.render_ascii())
    print()

    print("prose check — I_K(ω₁,(4,4)) is the rectangle (1,1)−(4,4):",
          scenario.interval_example() == space.rectangle(1, 1, 4, 4))
    print("prose check — I_K(ω₁,(9,3)) is the rectangle (1,1)−(9,3):",
          scenario.interval_example_prime() == space.rectangle(1, 1, 9, 3))
    print("minimal intervals from ω₁ to Ā:", scenario.minimal_corners())
    print()

    # Amortised auditing: one audit query, many disclosures.
    auditor = PossibilisticAuditor.from_family(space.full, scenario.family)
    audited = scenario.audited
    auditor.prepare(audited)

    classes = scenario.delta_classes()
    picks = [min(cls.sorted_members()) for cls in classes]
    omega1 = space.world_id(OMEGA_1)

    b_good = space.property_set([omega1] + picks)
    b_bad = space.property_set([omega1] + picks[:-1])
    print("B touching all three Δ classes:", auditor.audit(audited, b_good))
    print("B missing one Δ class:        ", auditor.audit(audited, b_bad))

    # A realistic disclosure: "the database is inside columns 0..6".
    b_range = space.rectangle(0, 0, 6, 6)
    print("B = 'ω* in columns 0..6':     ", auditor.audit(audited, b_range))


if __name__ == "__main__":
    main()

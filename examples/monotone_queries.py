"""Remark 5.6 at work: monotone queries over a synthetic outbreak registry.

"If the user's prior knowledge is assumed to be in Π_m⁺, a 'no' answer to a
monotone Boolean query always preserves the privacy of a 'yes' answer to
another monotone Boolean query.  Roughly speaking, it is OK to disclose a
negative fact while protecting a positive fact."

We build a small infection registry, protect the (monotone, true) audit
query "ward 3 has at least 2 infections", and audit a batch of disclosed
*negative* answers to other monotone queries.  All are cleared by
Corollary 5.5 without any numeric work; a disclosed *positive* answer is
flagged.

Run:  python examples/monotone_queries.py
"""

import numpy as np

from repro.core import down_closure, is_down_set, is_up_set, safety_gap
from repro.db import (
    AtLeast,
    CandidateUniverse,
    ColumnType,
    Database,
    Exists,
    TableSchema,
    column_eq,
)
from repro.probabilistic import LogSupermodularFamily, SupermodularAuditor


def build_registry() -> CandidateUniverse:
    db = Database()
    db.create_table(
        TableSchema.build(
            "infections", patient=ColumnType.TEXT, ward=ColumnType.INTEGER
        )
    )
    records = [
        db.insert("infections", patient="P1", ward=3),
        db.insert("infections", patient="P2", ward=3),
        db.insert("infections", patient="P3", ward=1),
        db.hypothetical_record("infections", patient="P4", ward=2),
    ]
    return CandidateUniverse(db, records)


def main() -> None:
    universe = build_registry()
    space = universe.space
    print(f"relevant worlds: {space.name} over records")
    for i, record in enumerate(universe.candidates, start=1):
        print(f"  coordinate {i}: {record.label()}")
    print()

    # A: "ward 3 has ≥ 2 infections" — monotone in record presence: up-set.
    audited = universe.compile_boolean(AtLeast("infections", column_eq("ward", 3), 2))
    assert is_up_set(audited)
    print("audit query A is an up-set:", is_up_set(audited))

    auditor = SupermodularAuditor(space)

    # Disclosed: NEGATIVE answers to monotone queries — down-sets.
    negatives = {
        "no infections in ward 2": ~universe.compile_boolean(
            Exists("infections", column_eq("ward", 2))
        ),
        "fewer than 3 infections in total": ~universe.compile_boolean(
            AtLeast("infections", column_eq("ward", 3) | ~column_eq("ward", 3), 3)
        ),
        "P4 is not infected": ~universe.presence(universe.candidates[3]),
    }
    for label, disclosed in negatives.items():
        assert is_down_set(disclosed), label
        verdict = auditor.audit(audited, disclosed)
        print(f"  '{label}': {verdict}")

    # Spot-check against sampled Π_m⁺ members: no confidence gain, ever.
    family = LogSupermodularFamily(space)
    rng = np.random.default_rng(0)
    worst = min(
        safety_gap(dist, audited, disclosed)
        for dist in family.sample_many(30, rng)
        for disclosed in negatives.values()
    )
    print(f"worst sampled safety gap over 30 Π_m⁺ priors: {worst:+.3e} (≥ 0 ⇒ no gain)")
    print()

    # A POSITIVE answer to a monotone query is another matter entirely.
    positive = universe.compile_boolean(Exists("infections", column_eq("ward", 3)))
    verdict = auditor.audit(audited, positive)
    print(f"  'ward 3 has at least one infection' (positive): {verdict}")


if __name__ == "__main__":
    main()

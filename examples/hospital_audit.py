"""The paper's motivating scenario as a full offline-audit workflow.

"Suppose that Bob contracted HIV in 2006.  Alice, Cindy and Mallory
legitimately gained access to Bob's health records…  Alice and Cindy did it
in 2005 and Mallory did in 2007.  Bob discovers that his disease is known to
the drug advertisers, and he initiates an audit, specifying 'HIV-positive'
as the audit query.  The audit will place the suspicion on Mallory, but not
on Alice and Cindy."

We build the hospital database, reconstruct its 2005 and 2007 states from
the record log, replay each user's disclosed query against the state *they*
saw, and run the epistemic-privacy auditor.

Run:  python examples/hospital_audit.py
"""

from repro.audit import (
    AuditPolicy,
    DisclosureLog,
    OfflineAuditor,
    PriorAssumption,
    render_report,
)
from repro.db import (
    CandidateUniverse,
    ColumnType,
    Database,
    Database as _Database,
    TableSchema,
    parse_boolean_query,
    parse_select_query,
)

AUDIT_QUERY = (
    "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'hiv_positive')"
)

# What each user's query answered.  In 2005 Bob was HIV-negative: Alice and
# Cindy learned his records (then: transfusions only).  In 2007 Mallory read
# the updated chart, which said HIV-positive.
ALICE_2005 = "SELECT kind FROM facts WHERE patient = 'Bob'"
CINDY_2005 = (
    "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'hiv_positive') "
    "IMPLIES "
    "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'transfusion')"
)
MALLORY_2007 = AUDIT_QUERY


def build_2007_database() -> Database:
    db = Database()
    db.create_table(
        TableSchema.build("facts", patient=ColumnType.TEXT, kind=ColumnType.TEXT)
    )
    db.insert("facts", patient="Bob", kind="hiv_positive")  # added in 2006
    db.insert("facts", patient="Bob", kind="transfusion")
    return db


def main() -> None:
    db = build_2007_database()
    r_hiv, r_transfusion = db.all_records()
    universe = CandidateUniverse(db, [r_hiv, r_transfusion])

    log = DisclosureLog()
    # Alice's 2005 SELECT saw no hiv_positive row — model it as the answer
    # she received: a world where r_hiv was absent.  Her knowledge set is
    # the equal-answer set of that output, here "r_hiv absent".
    log.record(
        2005,
        "alice",
        parse_boolean_query(
            "NOT EXISTS(SELECT * FROM facts WHERE patient = 'Bob' "
            "AND kind = 'hiv_positive')"
        ),
        note="2005 chart read: no HIV record existed yet",
    )
    log.record(2005, "cindy", parse_boolean_query(CINDY_2005),
               note="2005 statistical summary")
    log.record(2007, "mallory", parse_boolean_query(MALLORY_2007),
               note="2007 chart read")

    policy = AuditPolicy(
        audit_query=parse_boolean_query(AUDIT_QUERY),
        assumption=PriorAssumption.PRODUCT,
        name="bob-hiv-leak",
    )
    auditor = OfflineAuditor(universe, policy)

    # The 2005 disclosures must be audited against the 2005 state: ω* then
    # had no HIV record yet.  The auditor reconstructs that world from the
    # update logs (Section 2) and compiles the answers from it.
    world_2005 = universe.space.world_id("01")  # transfusion only
    report = auditor.audit_log(log)
    for i, event in enumerate(log):
        if event.time == 2005:
            report.findings[i] = auditor.audit_event_at(event, world_2005)

    print(render_report(report))
    assert report.suspicious_users == ("mallory",)
    print("\nConclusion: suspicion falls on Mallory; Alice and Cindy are cleared —")
    print("their 2005 disclosures could not raise anyone's confidence that Bob")
    print("is HIV-positive, because in 2005 learning the truthful answers could")
    print("only lower it.")


if __name__ == "__main__":
    main()

"""Quickstart: epistemic privacy in five minutes.

Reproduces the paper's Section 1.1 example end to end:

* the hospital database has two records about Bob — "HIV-positive" and
  "had blood transfusions";
* the sensitive property A is "Bob is HIV-positive";
* the user learns B = "if Bob is HIV-positive, then he had transfusions".

Perfect secrecy (Miklau–Suciu) rejects this disclosure — A and B share the
critical record r₁.  Epistemic privacy clears it: whatever the user's prior,
learning B can only *lower* their confidence in A.

Run:  python examples/quickstart.py
"""

from repro import HypercubeSpace, safe_unrestricted
from repro.probabilistic import (
    ProbabilisticAuditor,
    independence_holds,
)


def main() -> None:
    # Ω = {0,1}²: worlds are subsets of {r1 = HIV-positive, r2 = transfusions}.
    space = HypercubeSpace(2, coordinate_names=["hiv_positive", "transfusions"])

    # A = "r1 ∈ ω": Bob is HIV-positive.
    a = space.coordinate_set(1)

    # B = "r1 ∈ ω implies r2 ∈ ω".
    b = ~space.coordinate_set(1) | space.coordinate_set(2)

    print("worlds where A holds:", sorted(a.labels()))
    print("worlds where B holds:", sorted(b.labels()))
    print()

    # Perfect secrecy? No: A and B share critical record r1.
    print("Miklau–Suciu independence (perfect secrecy):",
          independence_holds(a, b))

    # Epistemic privacy against product priors: the staged pipeline.
    auditor = ProbabilisticAuditor(space)
    verdict = auditor.audit(a, b)
    print("epistemic privacy (product priors):       ", verdict)

    # Even better: safe against ARBITRARY priors (Theorem 3.11, since A∪B=Ω).
    print("safe against unrestricted priors:         ",
          safe_unrestricted(a, b))

    # Contrast with a genuinely dangerous disclosure.
    b_bad = a & space.coordinate_set(2)  # "Bob is HIV-positive AND transfused"
    bad_verdict = auditor.audit(a, b_bad)
    print()
    print("disclosing B' = 'HIV ∧ transfusions':     ", bad_verdict)
    if bad_verdict.is_unsafe:
        witness = bad_verdict.witness
        print("  a prior under which confidence in A rises:", witness)


if __name__ == "__main__":
    main()

"""Online (proactive) auditing: why Bob should flip a coin.

Simulates the Section 1 discussion.  Alice repeatedly asks Bob for his HIV
status; Bob seroconverts at t = 3.  Three disclosure strategies:

* truthful-denial — answer "negative" while true, deny afterwards: the
  first denial reveals the seroconversion (privacy breach);
* always-deny — safe, but Bob never gets to share his (harmless) negative
  status (nor collect Alice's payments, in the footnote-1 economy);
* coin-flip (footnote 1) — when negative, answer only on heads: denials
  become uninformative, privacy holds, and roughly half the answers/payments
  survive.

Run:  python examples/online_strategies.py
"""

import numpy as np

from repro.audit import (
    AlwaysDenyStrategy,
    CoinFlipStrategy,
    TruthfulDenialStrategy,
    simulate,
    simulate_bayesian,
)

TIMELINE = [False, False, False, True, True, True]  # seroconversion at t = 3


def main() -> None:
    print("Bob's true status:", ["neg", "neg", "neg", "POS", "POS", "POS"])
    print()

    for strategy in (TruthfulDenialStrategy(), AlwaysDenyStrategy(), CoinFlipStrategy()):
        result = simulate(strategy, TIMELINE, seed=7)
        print(f"strategy: {strategy.name}")
        for step in result.steps:
            print(
                f"  t={step.time}  answer={step.answer.value:<22}"
                f"  {step.belief.describe()}"
            )
        breach = f"BREACH at t={result.breach_time}" if result.breached else "no breach"
        print(f"  → {breach}; informative answers given: {result.answers_given()}")
        print()

    # Monte-Carlo the coin strategy's answer economy (footnote 1's trade-off).
    runs = 2000
    answers = np.array([
        simulate(CoinFlipStrategy(), TIMELINE, seed=seed).answers_given()
        for seed in range(runs)
    ])
    breaches = sum(
        simulate(CoinFlipStrategy(), TIMELINE, seed=seed).breached
        for seed in range(runs)
    )
    print(
        f"coin-flip over {runs} runs: breaches = {breaches}, "
        f"mean answers = {answers.mean():.2f} "
        f"(truthful-denial gives 3 answers but always breaches)"
    )
    print()

    # A probabilistic Alice who knows the strategy (the paper's future-work
    # direction): posterior P(Bob is positive) round by round.
    print("Bayesian Alice (prior: 50% 'never converts', uniform otherwise):")
    for strategy in (TruthfulDenialStrategy(), CoinFlipStrategy()):
        result = simulate_bayesian(strategy, TIMELINE, seed=7)
        trail = "  ".join(
            f"t{s.time}:{s.posterior_positive:.2f}" for s in result.steps
        )
        print(f"  {strategy.name:16s} {trail}")
        print(
            f"  {'':16s} peak posterior {result.peak_posterior:.2f}; "
            f"certainty at t={result.certainty_time}"
        )


if __name__ == "__main__":
    main()

"""Section 6 tour: algebraic certificates for privacy, and their limits.

1. The Remark 5.12 pair defeats every combinatorial criterion of Section 5,
   yet a Schmüdgen-form sum-of-squares certificate proves it safe.
2. An unsafe pair gets no certificate; the numeric refuter exhibits a
   violating product prior instead.
3. The Motzkin polynomial shows why SOS is a *heuristic*: nonnegative but
   not a sum of squares — while Artin's lift (x²+y²+z²)·M is.
4. A Positivstellensatz refutation (Theorem 6.7) proves a semialgebraic
   set empty with a machine-checkable identity F + G² = 0.

Run:  python examples/sos_certificates.py
"""

from repro.algebraic import (
    Polynomial,
    PolynomialProgram,
    certify_gap_nonnegative,
    is_sos,
    motzkin_artin_lift,
    motzkin_polynomial,
    refute_feasibility,
    safety_gap_polynomial,
)
from repro.core import HypercubeSpace
from repro.probabilistic import (
    cancellation_criterion,
    find_product_counterexample,
    miklau_suciu_criterion,
    monotonicity_criterion,
)


def main() -> None:
    space = HypercubeSpace(3)
    a = space.property_set(["011", "100", "110", "111"])
    b = space.property_set(["010", "101", "110", "111"])

    print("— the Remark 5.12 pair —")
    print("Miklau–Suciu holds:  ", miklau_suciu_criterion(a, b).holds)
    print("monotonicity holds:  ", monotonicity_criterion(a, b).holds)
    print("cancellation holds:  ", cancellation_criterion(a, b).holds)
    gap = safety_gap_polynomial(a, b)
    print("safety gap g(p) =", gap.to_string(["p1", "p2", "p3"]))
    certificate = certify_gap_nonnegative(a, b)
    print("SOS certificate found:", certificate is not None,
          f"(residual {certificate.residual:.2e})" if certificate else "")
    print()

    print("— an unsafe pair —")
    a_bad = space.property_set(["100", "101", "110", "111"])
    b_bad = space.property_set(["100"])
    print("certificate:", certify_gap_nonnegative(a_bad, b_bad))
    witness = find_product_counterexample(a_bad, b_bad)
    print("violating product prior:", witness)
    print()

    print("— the limits of Σ² —")
    motzkin = motzkin_polynomial()
    print("M(x,y,z) =", motzkin.to_string(["x", "y", "z"]))
    print("M is SOS:", is_sos(motzkin), " (it is nonnegative, but not Σ²)")
    print("(x²+y²+z²)·M is SOS:", is_sos(motzkin_artin_lift(), max_iterations=40000),
          " (Artin / Hilbert's 17th problem)")
    print()

    print("— a Positivstellensatz refutation (Theorem 6.7) —")
    x = Polynomial.variable(0, 1)
    program = PolynomialProgram(nvars=1)
    program.add_inequality(x - 0.7)  # x ≥ 0.7
    program.add_inequality(0.3 - x)  # x ≤ 0.3
    refutation = refute_feasibility(program, degree_bound=0)
    print("the set {x ≥ 0.7} ∩ {x ≤ 0.3} is refuted:", refutation is not None,
          f"(residual {refutation.residual:.2e})" if refutation else "")


if __name__ == "__main__":
    main()

"""Legacy setup shim so ``pip install -e .`` works without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file additionally declares
the optional native kernel extension (``repro._native._kernels``).  The build
is strictly best-effort: ``optional=True`` turns any compiler failure into a
warning, and ``repro._native`` falls back to the pure-NumPy path whenever the
extension is absent (see ``REPRO_NATIVE`` in DESIGN.md).  Build it in place
for a source checkout with::

    python setup.py build_ext --inplace
"""

from setuptools import setup

try:
    import numpy
    from setuptools import Extension

    ext_modules = [
        Extension(
            "repro._native._kernels",
            sources=["src/repro/_native/_kernels.c"],
            include_dirs=[numpy.get_include()],
            optional=True,  # a failed build must never fail the install
            extra_compile_args=["-O3"],
        )
    ]
except ImportError:  # numpy not importable at build time: skip the extension
    ext_modules = []

setup(ext_modules=ext_modules)

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools
import os
import random
import signal
import threading
from typing import Iterator, List, Tuple

import numpy as np
import pytest

from repro.core import Distribution, HypercubeSpace, PropertySet, WorldSpace

#: Per-test hang guard in seconds (0 disables).  A signal-based stand-in for
#: pytest-timeout, which this environment does not ship: the resilience and
#: chaos tests exercise broken process pools and injected solver stalls, and
#: a regression there must fail the suite, not wedge it.
_TEST_TIMEOUT = int(os.environ.get("REPRO_TEST_TIMEOUT", "180"))


@pytest.fixture(autouse=True)
def _hang_guard(request):
    """Abort any single test that runs longer than ``REPRO_TEST_TIMEOUT``."""
    if (
        _TEST_TIMEOUT <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise RuntimeError(
            f"test exceeded the {_TEST_TIMEOUT}s hang guard "
            f"({request.node.nodeid}); see REPRO_TEST_TIMEOUT"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20080609)  # PODS'08 started June 9, 2008


@pytest.fixture
def cube2() -> HypercubeSpace:
    return HypercubeSpace(2)


@pytest.fixture
def cube3() -> HypercubeSpace:
    return HypercubeSpace(3)


@pytest.fixture
def cube4() -> HypercubeSpace:
    return HypercubeSpace(4)


def all_subsets(space: WorldSpace) -> Iterator[PropertySet]:
    """All subsets of a (small) world space, including ∅ and Ω."""
    worlds = list(space.worlds())
    for r in range(len(worlds) + 1):
        for combo in itertools.combinations(worlds, r):
            yield space.property_set(combo)


def random_subset(
    space: WorldSpace, rnd: random.Random, allow_empty: bool = False
) -> PropertySet:
    """A uniformly random subset of Ω."""
    while True:
        members = [w for w in space.worlds() if rnd.random() < 0.5]
        if members or allow_empty:
            return space.property_set(members)


def random_pairs(
    space: WorldSpace, count: int, seed: int = 0, allow_empty: bool = False
) -> List[Tuple[PropertySet, PropertySet]]:
    """Deterministic random (A, B) pairs for criterion cross-validation."""
    rnd = random.Random(seed)
    return [
        (random_subset(space, rnd, allow_empty), random_subset(space, rnd, allow_empty))
        for _ in range(count)
    ]


def dirichlet_distribution(space: WorldSpace, rng: np.random.Generator) -> Distribution:
    return Distribution(space, rng.dirichlet(np.ones(space.size)))

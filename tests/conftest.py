"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Tuple

import numpy as np
import pytest

from repro.core import Distribution, HypercubeSpace, PropertySet, WorldSpace


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20080609)  # PODS'08 started June 9, 2008


@pytest.fixture
def cube2() -> HypercubeSpace:
    return HypercubeSpace(2)


@pytest.fixture
def cube3() -> HypercubeSpace:
    return HypercubeSpace(3)


@pytest.fixture
def cube4() -> HypercubeSpace:
    return HypercubeSpace(4)


def all_subsets(space: WorldSpace) -> Iterator[PropertySet]:
    """All subsets of a (small) world space, including ∅ and Ω."""
    worlds = list(space.worlds())
    for r in range(len(worlds) + 1):
        for combo in itertools.combinations(worlds, r):
            yield space.property_set(combo)


def random_subset(
    space: WorldSpace, rnd: random.Random, allow_empty: bool = False
) -> PropertySet:
    """A uniformly random subset of Ω."""
    while True:
        members = [w for w in space.worlds() if rnd.random() < 0.5]
        if members or allow_empty:
            return space.property_set(members)


def random_pairs(
    space: WorldSpace, count: int, seed: int = 0, allow_empty: bool = False
) -> List[Tuple[PropertySet, PropertySet]]:
    """Deterministic random (A, B) pairs for criterion cross-validation."""
    rnd = random.Random(seed)
    return [
        (random_subset(space, rnd, allow_empty), random_subset(space, rnd, allow_empty))
        for _ in range(count)
    ]


def dirichlet_distribution(space: WorldSpace, rng: np.random.Generator) -> Distribution:
    return Distribution(space, rng.dirichlet(np.ones(space.size)))

"""The event journal: durable appends, torn-write tolerance, self-repair."""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.runtime import faults
from repro.service.journal import (
    EventJournal,
    JournalRecord,
    JournalTornWriteError,
)

RECORDS = [
    JournalRecord(user="alice", time=1, query_text="Q1", note="first"),
    JournalRecord(user="bob", time=2, query_text="Q2"),
    JournalRecord(user="alice", time=3, query_text="Q3", note="third"),
]


def write_all(path):
    journal = EventJournal(path)
    for record in RECORDS:
        journal.append(record)
    journal.close()
    return journal


class TestRoundtrip:
    def test_append_then_replay(self, tmp_path):
        journal = write_all(tmp_path / "t.journal")
        result = journal.replay()
        assert result.records == RECORDS
        assert result.dropped_bytes == 0 and not result.torn
        assert not result.truncated

    def test_replay_from_fresh_handle(self, tmp_path):
        write_all(tmp_path / "t.journal")
        assert list(EventJournal(tmp_path / "t.journal")) == RECORDS

    def test_missing_file_is_empty(self, tmp_path):
        result = EventJournal(tmp_path / "absent.journal").replay()
        assert result.records == [] and result.dropped_bytes == 0

    def test_non_string_times_roundtrip(self, tmp_path):
        journal = EventJournal(tmp_path / "t.journal")
        record = JournalRecord(user="u", time=2005, query_text="Q")
        journal.append(record)
        assert journal.replay().records == [record]


class TestTornTails:
    def test_partial_frame_is_dropped_and_truncated(self, tmp_path):
        path = tmp_path / "t.journal"
        write_all(path)
        intact = path.stat().st_size
        payload = json.dumps({"user": "x", "time": 9, "query": "Q"}).encode()
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        with open(path, "ab") as handle:
            handle.write(frame[: len(frame) // 2])  # the torn tail
        result = EventJournal(path).replay(repair=True)
        assert result.records == RECORDS
        assert result.torn and result.truncated
        assert path.stat().st_size == intact  # repaired back to a clean prefix

    def test_crc_mismatch_stops_replay(self, tmp_path):
        path = tmp_path / "t.journal"
        write_all(path)
        payload = b'{"user":"x","time":9,"query":"Q"}'
        frame = struct.pack("<II", len(payload), zlib.crc32(payload) ^ 0xFF) + payload
        with open(path, "ab") as handle:
            handle.write(frame)
        result = EventJournal(path).replay()
        assert result.records == RECORDS and result.torn

    def test_repair_false_leaves_bytes_alone(self, tmp_path):
        path = tmp_path / "t.journal"
        write_all(path)
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02\x03")
        size = path.stat().st_size
        result = EventJournal(path).replay(repair=False)
        assert result.records == RECORDS and result.torn
        assert not result.truncated and path.stat().st_size == size

    def test_append_after_repair_extends_clean_prefix(self, tmp_path):
        path = tmp_path / "t.journal"
        write_all(path)
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad")
        journal = EventJournal(path)
        journal.replay(repair=True)
        extra = JournalRecord(user="carol", time=4, query_text="Q4")
        journal.append(extra)
        assert journal.replay().records == RECORDS + [extra]


class TestTornWriteFault:
    def test_injected_torn_write_raises_and_leaves_torn_tail(self, tmp_path):
        path = tmp_path / "t.journal"
        journal = EventJournal(path)
        journal.append(RECORDS[0])
        with faults.inject({faults.JOURNAL_TORN_WRITE: 1.0}):
            with pytest.raises(JournalTornWriteError):
                journal.append(RECORDS[1])
        result = EventJournal(path).replay(repair=True)
        # The acknowledged record survives; the torn one never existed.
        assert result.records == [RECORDS[0]]
        assert result.torn and result.truncated

    def test_max_fires_limits_the_crash(self, tmp_path):
        journal = EventJournal(tmp_path / "t.journal")
        with faults.inject(
            {
                faults.JOURNAL_TORN_WRITE: faults.FaultRule(
                    site=faults.JOURNAL_TORN_WRITE, rate=1.0, max_fires=1
                )
            }
        ):
            with pytest.raises(JournalTornWriteError):
                journal.append(RECORDS[0])
            journal.replay(repair=True)
            journal.append(RECORDS[1])  # the plan is spent; appends work
        assert journal.replay().records == [RECORDS[1]]

"""The batched decision plane: verdict identity, group-commit soundness,
executor partitions.

Three invariant families for the gateway scale-out:

* **Verdict identity** — a cross-tenant batch pushed through
  ``BatchDecisionExecutor`` (one group-commit fsync, one engine pass, one
  store probe) answers bit-identically to deciding the same events one at
  a time, and to the offline scratch audit — per event and per
  user-cumulative.
* **Group-commit crash soundness** — a crashed round (torn write or
  failed fsync) withholds *every* verdict in it, heals by truncation, and
  any kill-9 prefix of batched operation replays bit-identically (the
  PR-8 hypothesis property, extended to the shared log).
* **Executor partitioning** — the tenant → executor hash is stable, a
  killed executor sheds only its own partition's requests (with a retry
  hint) while neighbours keep deciding, and the respawned executor
  replays its journals before serving.
"""

from __future__ import annotations

import asyncio
import os
import signal

import pytest

from repro.runtime import faults
from repro.service.client import GatewayClient
from repro.service.executor import (
    BatchDecisionExecutor,
    executor_index,
)
from repro.service.server import AuditGateway
from repro.service.shard import ShardManager

from .conftest import (
    as_request,
    drive_manager,
    recovered_statuses,
    scratch_statuses,
)

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - test extra not installed
    HAVE_HYPOTHESIS = False


def make_manager(scenario, tmp_path, subdir="run"):
    universe, policy, _ = scenario
    return ShardManager(
        universe, policy, journal_dir=tmp_path / subdir / "journals", store=None
    )


def batch_items(events):
    return [(as_request(event), None) for event in events]


def live_statuses(responses, events):
    return {
        (event.tenant, event.time): response["status"]
        for event, response in zip(events, responses)
        if response.get("ok")
    }


def cumulative_by_user(manager):
    return {
        (tenant, user): state.cumulative_verdict.status.value
        for tenant, shard in manager.tenants.items()
        for user, state in shard.auditor.states.items()
    }


class TestBatchedVerdictIdentity:
    def test_one_batch_equals_one_at_a_time_equals_scratch(
        self, scenario, trace, tmp_path
    ):
        universe, policy, _ = scenario
        batched = make_manager(scenario, tmp_path, "batched")
        executor = BatchDecisionExecutor(batched)
        responses = executor.decide_batch(batch_items(trace))
        live = live_statuses(responses, trace)
        assert len(live) == len(trace)  # no faults: everything decided
        serial = make_manager(scenario, tmp_path, "serial")
        serial_live = live_statuses(drive_manager(serial, trace), trace)
        scratch = scratch_statuses(universe, policy, trace)
        assert live == serial_live == scratch
        # The user-cumulative composition states agree too.
        assert cumulative_by_user(batched) == cumulative_by_user(serial)
        # And the whole batch cost exactly one commit round (one fsync).
        stats = batched.gateway_stats
        assert stats.commit_rounds == 1
        assert stats.batch_events == len(trace)
        assert stats.fsyncs_saved == len(trace) - 1
        batched.close()
        serial.close()

    def test_many_small_batches_match_scratch(self, scenario, trace, tmp_path):
        universe, policy, _ = scenario
        manager = make_manager(scenario, tmp_path)
        executor = BatchDecisionExecutor(manager)
        responses = []
        for start in range(0, len(trace), 5):
            responses.extend(
                executor.decide_batch(batch_items(trace[start : start + 5]))
            )
        assert live_statuses(responses, trace) == scratch_statuses(
            universe, policy, trace
        )
        assert manager.gateway_stats.commit_rounds == (len(trace) + 4) // 5
        manager.close()

    def test_bad_query_fails_only_its_own_slot(self, scenario, trace, tmp_path):
        universe, policy, _ = scenario
        events = trace[:6]
        manager = make_manager(scenario, tmp_path)
        executor = BatchDecisionExecutor(manager)
        items = batch_items(events)
        bad = as_request(events[2])
        bad = type(bad)(
            tenant=bad.tenant,
            user=bad.user,
            time=bad.time,
            query_text="NOT VALID SQL (((",
            request_id=bad.request_id,
        )
        items[2] = (bad, None)
        responses = executor.decide_batch(items)
        assert responses[2]["decision"] == "error"
        assert "bad query" in responses[2]["error"]
        others = [r for i, r in enumerate(responses) if i != 2]
        assert all(r["ok"] for r in others)
        # The malformed slot was never journaled — the commit round holds
        # exactly the five parseable records.
        assert manager.gateway_stats.batch_events == 5
        manager.close()


class TestGroupCommitCrash:
    def test_fsync_fail_withholds_every_verdict_in_the_round(
        self, scenario, trace, tmp_path
    ):
        universe, policy, _ = scenario
        events = trace[:6]
        manager = make_manager(scenario, tmp_path)
        executor = BatchDecisionExecutor(manager)
        with faults.inject(
            {
                faults.COMMIT_FSYNC_FAIL: faults.FaultRule(
                    site=faults.COMMIT_FSYNC_FAIL, rate=1.0, max_fires=1
                )
            }
        ):
            crashed = executor.decide_batch(batch_items(events))
            assert all(not r["ok"] for r in crashed)
            assert all("fsync" in r["error"] for r in crashed)
            assert manager.gateway_stats.commit_crashes == 1
            assert manager.commit_log.crashed
            # The retry heals the log (truncate to the durable boundary)
            # and decides normally.
            retried = executor.decide_batch(batch_items(events))
        assert live_statuses(retried, events) == scratch_statuses(
            universe, policy, events
        )
        # After heal + retry the log holds each event exactly once.
        assert len(manager.commit_log.replay(repair=False).records) == len(events)
        manager.close()

    def test_torn_round_recovers_to_a_sound_prefix(
        self, scenario, trace, tmp_path
    ):
        """A torn group-commit round salvages only complete frames, and a
        kill -9 before heal replays exactly the durable records."""
        universe, policy, _ = scenario
        first, second = trace[:5], trace[5:10]
        manager = make_manager(scenario, tmp_path)
        executor = BatchDecisionExecutor(manager)
        ok = executor.decide_batch(batch_items(first))
        assert all(r["ok"] for r in ok)
        with faults.inject(
            {
                faults.JOURNAL_TORN_WRITE: faults.FaultRule(
                    site=faults.JOURNAL_TORN_WRITE, rate=1.0, max_fires=1
                )
            }
        ):
            crashed = executor.decide_batch(batch_items(second))
        assert all(not r["ok"] for r in crashed)
        assert all("journal crash" in r["error"] for r in crashed)
        # kill -9 before any heal: abandon the manager, recover fresh.
        fresh = make_manager(scenario, tmp_path)
        counts = fresh.recover_all()
        surviving_keys = {
            (tenant, record.time)
            for tenant, record in fresh.commit_log.replay(repair=False).records
        }
        surviving = [e for e in trace[:10] if (e.tenant, e.time) in surviving_keys]
        # Every first-round record is durable; the torn second round
        # contributes only the salvaged prefix of complete frames — events
        # whose verdicts were never issued, so replaying them is sound.
        assert {(e.tenant, e.time) for e in first} <= surviving_keys
        assert sum(counts.values()) == len(surviving)
        assert recovered_statuses(fresh, counts) == scratch_statuses(
            universe, policy, surviving
        )
        manager.close()
        fresh.close()


if HAVE_HYPOTHESIS:

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        cut=st.integers(min_value=0, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_batched_kill_at_any_point_recovers_identically(
        scenario, tmp_path_factory, cut, seed
    ):
        """PR-8's hypothesis property, extended to group commit: for any
        prefix length and trace seed, killing the gateway after ``cut``
        *batched* decisions and replaying the shared log yields verdicts
        bit-identical to a scratch audit of those decisions."""
        from repro.service.trace import zipf_trace

        universe, policy, pool = scenario
        events = zipf_trace(
            n_events=30, n_tenants=3, n_users=2, seed=seed, pool=pool
        )[:cut]
        tmp_path = tmp_path_factory.mktemp("prop-batched")
        manager = ShardManager(
            universe, policy, journal_dir=tmp_path / "journals", store=None
        )
        executor = BatchDecisionExecutor(manager)
        responses = []
        width = 1 + seed % 5  # deterministic batch width per example
        for start in range(0, len(events), width):
            responses.extend(
                executor.decide_batch(batch_items(events[start : start + width]))
            )
        live = live_statuses(responses, events)
        recovered = ShardManager(
            universe, policy, journal_dir=tmp_path / "journals", store=None
        )
        counts = recovered.recover_all()
        after = recovered_statuses(recovered, counts)
        assert after == scratch_statuses(universe, policy, events) == live


class TestExecutorPartition:
    def test_hash_partition_is_stable_and_total(self):
        tenants = [f"t{i:03d}" for i in range(64)] + ["a/b", "Ünïcode", ""]
        for workers in (1, 2, 3, 8):
            for tenant in tenants:
                index = executor_index(tenant, workers)
                assert 0 <= index < max(1, workers)
                assert index == executor_index(tenant, workers)  # stable
        assert executor_index("anything", 1) == 0
        # Not degenerate: with a few workers the tenants actually spread.
        assert len({executor_index(t, 4) for t in tenants}) > 1

    def test_killed_executor_sheds_only_its_partition(
        self, scenario, trace, tmp_path
    ):
        universe, policy, _ = scenario
        workers = 3  # splits this trace's tenants across partitions
        by_partition = {}
        for event in trace:
            by_partition.setdefault(
                executor_index(event.tenant, workers), []
            ).append(event)
        assert len(by_partition) >= 2  # the trace spans partitions
        indexes = sorted(by_partition)
        victim_event = by_partition[indexes[0]][0]
        neighbour_event = by_partition[indexes[1]][0]

        async def run():
            manager = make_manager(scenario, tmp_path)
            gateway = AuditGateway(
                manager, port=0, http_port=0, workers=workers
            )
            await gateway.start()
            pids = gateway.executor_pids()
            assert len(pids) == workers
            os.kill(
                pids[executor_index(victim_event.tenant, workers)],
                signal.SIGKILL,
            )

            async def decide(event):
                async with GatewayClient(
                    "127.0.0.1", gateway.port, event.tenant
                ) as client:
                    return await client.decide(
                        event.user, event.query_text, time=event.time
                    )

            # The dead executor's partition sheds with an explicit retry
            # hint; the neighbour partition never notices.
            shed = await decide(victim_event)
            assert shed["decision"] == "shed"
            assert shed["reason"] == "executor-restart"
            ok_neighbour = await decide(neighbour_event)
            assert ok_neighbour["ok"]
            # The shed carried a restart: the retried request decides on
            # the respawned (journal-replayed) executor.
            await asyncio.sleep(shed["retry_after_ms"] / 1000.0)
            ok_victim = await decide(victim_event)
            assert ok_victim["ok"]
            report = await gateway.drain()
            assert report["batching"]["executor_restarts"] == 1
            assert report["batching"]["workers"] == workers
            statuses = {
                (victim_event.tenant, victim_event.time): ok_victim["status"],
                (neighbour_event.tenant, neighbour_event.time): ok_neighbour[
                    "status"
                ],
            }
            assert statuses == scratch_statuses(
                universe, policy, [victim_event, neighbour_event]
            )

        asyncio.run(run())

    def test_executor_crash_chaos_site_fires_and_recovers(
        self, scenario, trace, tmp_path
    ):
        """The ``executor-crash`` site at rate 1: the victim's batch sheds,
        the process respawns, retries decide — verdicts match scratch."""
        universe, policy, _ = scenario
        events = trace[:16]

        async def run():
            manager = make_manager(scenario, tmp_path)
            gateway = AuditGateway(manager, port=0, http_port=0, workers=2)
            await gateway.start()
            rule = faults.FaultRule(
                site=faults.EXECUTOR_CRASH, rate=1.0, max_fires=2
            )
            clients = {}
            responses = {}
            with faults.inject({faults.EXECUTOR_CRASH: rule}):
                for event in events:
                    for _ in range(8):
                        client = clients.get(event.tenant)
                        if client is None:
                            client = clients[event.tenant] = await GatewayClient(
                                "127.0.0.1", gateway.port, event.tenant
                            ).connect()
                        response = await client.decide(
                            event.user, event.query_text, time=event.time
                        )
                        if response.get("decision") == "shed":
                            await asyncio.sleep(
                                response["retry_after_ms"] / 1000.0
                            )
                            continue
                        responses[(event.tenant, event.time)] = response
                        break
                for client in clients.values():
                    await client.close()
                report = await gateway.drain()
            assert report["batching"]["executor_restarts"] == 2
            return responses

        responses = asyncio.run(run())
        assert set(responses) == {(e.tenant, e.time) for e in events}
        live = {key: r["status"] for key, r in responses.items()}
        assert live == scratch_statuses(universe, policy, events)

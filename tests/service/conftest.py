"""Shared fixtures for the gateway suite: scenario, traces, scratch audits."""

from __future__ import annotations

import pytest

from repro.audit import DisclosureLog, OfflineAuditor
from repro.audit.log import DisclosureEvent
from repro.db import parse_boolean_query
from repro.service.protocol import DecisionRequest
from repro.service.trace import hospital_pool, zipf_trace


@pytest.fixture(scope="session")
def scenario():
    """(universe, policy, query_texts) — small background for test speed."""
    return hospital_pool(background_rows=12)


@pytest.fixture
def trace(scenario):
    _, _, pool = scenario
    return zipf_trace(n_events=48, n_tenants=4, n_users=3, seed=7, pool=pool)


def as_request(event) -> DecisionRequest:
    return DecisionRequest(
        tenant=event.tenant,
        user=event.user,
        time=event.time,
        query_text=event.query_text,
        request_id=event.time,
    )


def drive_manager(manager, events):
    """Decide a trace through shards directly; returns responses per event."""
    responses = []
    for event in events:
        shard = manager.shard(event.tenant)
        responses.append(shard.decide(as_request(event)))
    return responses


def scratch_statuses(universe, policy, events):
    """Offline scratch audit, per tenant: {(tenant, time): status}."""
    statuses = {}
    by_tenant = {}
    for event in events:
        by_tenant.setdefault(event.tenant, []).append(event)
    for tenant, tenant_events in by_tenant.items():
        log = DisclosureLog(
            DisclosureEvent(
                time=e.time,
                user=e.user,
                query=parse_boolean_query(e.query_text),
            )
            for e in tenant_events
        )
        report = OfflineAuditor(universe, policy).audit_log_serial(log)
        for finding in report.findings:
            statuses[(tenant, finding.event.time)] = finding.verdict.status.value
    return statuses


def recovered_statuses(manager, tenants):
    """Per-event statuses of a recovered manager: {(tenant, time): status}.

    Reads each tenant's durable records back (repair=False — pure
    observation) from both journal sources — the tenant's own journal and
    its slice of the shared group-commit log — and asks the recovered
    auditor for the merged log's report; the memoised replay answers
    without re-deciding.
    """
    statuses = {}
    wal = {}
    if manager.commit_log.path.exists():
        wal = manager.commit_log.replay(repair=False).by_tenant()
    for tenant in tenants:
        shard = manager.shard(tenant)
        records = list(shard.journal.replay(repair=False).records) + wal.get(
            tenant, []
        )
        if not records:
            continue
        log = DisclosureLog(
            DisclosureEvent(
                time=r.time,
                user=r.user,
                query=parse_boolean_query(r.query_text),
                note=r.note,
            )
            for r in records
        )
        report = shard.auditor.audit_log(log)
        for finding in report.findings:
            statuses[(tenant, finding.event.time)] = finding.verdict.status.value
    return statuses

"""The JSON-lines wire protocol: parsing, validation, response shapes."""

from __future__ import annotations

import json

import pytest

from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decision_of,
    encode_response,
    error_response,
    parse_decision,
    parse_request,
    shed_response,
    verdict_response,
)


def line(**kwargs) -> bytes:
    return json.dumps(kwargs).encode("utf-8")


class TestParseRequest:
    def test_known_ops_parse(self):
        for op in ("decide", "ping", "stats", "drain"):
            assert parse_request(line(op=op))["op"] == op

    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError):
            parse_request(b"not json\n")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            parse_request(b"[1, 2]")

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_request(line(op="explode"))

    def test_rejects_oversized_line(self):
        huge = line(op="decide", note="x" * (MAX_LINE_BYTES + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            parse_request(huge)


class TestParseDecision:
    def good(self, **overrides):
        document = {
            "op": "decide",
            "id": 7,
            "tenant": "clinic",
            "user": "alice",
            "time": 3,
            "query": "EXISTS(SELECT * FROM t WHERE a = 'b')",
        }
        document.update(overrides)
        return document

    def test_full_request_parses(self):
        request = parse_decision(self.good(deadline_ms=250, note="n"))
        assert request.tenant == "clinic" and request.user == "alice"
        assert request.time == 3 and request.deadline_ms == 250.0
        assert request.note == "n" and request.request_id == 7

    def test_defaults(self):
        document = self.good()
        del document["time"]
        request = parse_decision(document)
        assert request.time == 0 and request.deadline_ms is None

    @pytest.mark.parametrize(
        "field,value",
        [
            ("tenant", ""),
            ("tenant", 7),
            ("user", ""),
            ("query", ""),
            ("query", None),
            ("note", 3),
            ("deadline_ms", "soon"),
            ("deadline_ms", -1),
        ],
    )
    def test_bad_fields_rejected(self, field, value):
        with pytest.raises(ProtocolError):
            parse_decision(self.good(**{field: value}))


class TestResponses:
    def test_decision_of_maps_cumulative_status(self):
        assert decision_of("safe") == "allow"
        assert decision_of("unsafe") == "deny"
        assert decision_of("unknown") == "unknown"

    def test_verdict_response_shape(self):
        response = verdict_response(
            4, "safe", "unsafe", "exact", ["verdict-cache"], False, 1.23456
        )
        assert response["ok"] and response["decision"] == "deny"
        assert response["status"] == "safe"
        assert response["elapsed_ms"] == 1.235

    def test_shed_response_is_explicit_and_retryable(self):
        response = shed_response(9, "queue-full", 40.0)
        assert not response["ok"] and response["decision"] == "shed"
        assert response["reason"] == "queue-full"
        assert response["retry_after_ms"] == 40.0

    def test_error_response(self):
        response = error_response(None, "bad query")
        assert not response["ok"] and response["decision"] == "error"

    def test_encode_is_one_line(self):
        payload = encode_response({"id": 1, "ok": True})
        assert payload.endswith(b"\n") and payload.count(b"\n") == 1
        assert json.loads(payload)["ok"] is True

"""Tenant isolation: one tenant's trouble never touches its neighbours.

Three isolation boundaries, each with its own test: the keyed breaker
(tenant A tripping pins only A), the per-tenant worker (a ``slow-tenant``
stall backs up one queue while neighbours decide), and bounded-queue
admission (a flooded tenant sheds; others are admitted).  Plus the
invariant that makes degradation acceptable at all: pinned decisions are
verdict-identical to unpinned ones.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime import BreakerState, faults
from repro.service import server as server_module
from repro.service.server import AuditGateway
from repro.service.shard import ShardManager

from .conftest import as_request, scratch_statuses


def make_manager(scenario, tmp_path):
    universe, policy, _ = scenario
    return ShardManager(
        universe, policy, journal_dir=tmp_path / "journals", store=None
    )


class TestBreakerIsolation:
    def trip(self, shard, times=3):
        for i in range(times):
            response = shard.decide(
                as_request(FakeEvent("x", f"u{i}", i, "NOT VALID SQL ((("))
            )
            assert response["decision"] == "error"

    def test_tripped_tenant_is_pinned_neighbour_is_not(
        self, scenario, trace, tmp_path
    ):
        universe, policy, _ = scenario
        manager = make_manager(scenario, tmp_path)
        a_events = [e for e in trace if e.tenant == trace[0].tenant][:3]
        b_events = [e for e in trace if e.tenant != trace[0].tenant][:3]
        shard_a = manager.shard(a_events[0].tenant)
        shard_b = manager.shard(b_events[0].tenant)
        # Three malformed queries trip A's breaker (default threshold 3)...
        self.trip(shard_a)
        assert shard_a.breaker.state is BreakerState.OPEN
        # ...so A's next decisions are pinned to the exact path...
        responses_a = [shard_a.decide(as_request(e)) for e in a_events]
        assert shard_a.stats.pinned == len(a_events)
        assert all(r["degraded"] for r in responses_a)
        # ...while B's breaker never heard about any of it.
        responses_b = [shard_b.decide(as_request(e)) for e in b_events]
        assert shard_b.breaker.state is BreakerState.CLOSED
        assert shard_b.stats.pinned == 0
        assert not any(r["degraded"] for r in responses_b)
        # Degradation moved provenance, not verdicts: pinned statuses
        # equal the offline scratch audit's, same as B's.
        live = {
            (e.tenant, e.time): r["status"]
            for e, r in zip(a_events + b_events, responses_a + responses_b)
        }
        assert live == scratch_statuses(universe, policy, a_events + b_events)


class FakeEvent:
    def __init__(self, tenant, user, time, query_text):
        self.tenant = tenant
        self.user = user
        self.time = time
        self.query_text = query_text


class TestWorkerIsolation:
    def test_slow_tenant_stalls_only_its_own_worker(
        self, scenario, trace, tmp_path, monkeypatch
    ):
        """A's worker eats the one slow-tenant fire and stalls; B's
        decision — admitted after A's — completes while A still sleeps."""
        monkeypatch.setattr(server_module, "_SLOW_TENANT_STALL", 0.5)
        a_event = next(e for e in trace if e.tenant == trace[0].tenant)
        b_event = next(e for e in trace if e.tenant != trace[0].tenant)

        async def scenario_run():
            manager = make_manager(scenario, tmp_path)
            gateway = AuditGateway(manager, queue_limit=4)
            with faults.inject(
                {
                    faults.SLOW_TENANT: faults.FaultRule(
                        site=faults.SLOW_TENANT, rate=1.0, max_fires=1
                    )
                }
            ):
                future_a = gateway._admit(as_request(a_event))
                future_b = gateway._admit(as_request(b_event))
                # B must resolve well inside A's stall window.
                response_b = await asyncio.wait_for(future_b, timeout=0.4)
                assert not future_a.done()  # A is still stalled
                response_a = await asyncio.wait_for(future_a, timeout=2.0)
            assert response_a["ok"] and response_b["ok"]
            await gateway.drain()

        asyncio.run(scenario_run())


class TestAdmissionIsolation:
    def test_flooded_tenant_sheds_neighbour_admitted(
        self, scenario, trace, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(server_module, "_SLOW_TENANT_STALL", 0.5)
        a_events = [e for e in trace if e.tenant == trace[0].tenant]
        a_tenant = a_events[0].tenant
        b_event = next(e for e in trace if e.tenant != a_tenant)

        async def scenario_run():
            manager = make_manager(scenario, tmp_path)
            gateway = AuditGateway(manager, queue_limit=2)
            with faults.inject(
                {
                    faults.SLOW_TENANT: faults.FaultRule(
                        site=faults.SLOW_TENANT, rate=1.0, max_fires=1
                    )
                }
            ):
                # First A request occupies the (stalled) worker; two more
                # fill the queue; the fourth must shed — deterministically,
                # with a retry hint, not a hang.
                def admit(t):
                    return gateway._admit(
                        as_request(
                            FakeEvent(a_tenant, "u0", t, a_events[0].query_text)
                        )
                    )

                futures = [admit(0)]
                await asyncio.sleep(0.05)  # worker dequeues #0 and stalls
                futures += [admit(1), admit(2), admit(3)]
                shed = await asyncio.wait_for(futures[3], timeout=0.3)
                assert shed["decision"] == "shed"
                assert shed["reason"] == "queue-full"
                assert shed["retry_after_ms"] >= 10.0
                # The neighbour is admitted and decided despite A's flood.
                response_b = await asyncio.wait_for(
                    gateway._admit(as_request(b_event)), timeout=0.4
                )
                assert response_b["ok"]
                for future in futures[:3]:
                    assert (await asyncio.wait_for(future, timeout=2.0))["ok"]
            stats = gateway.stats
            assert stats.tenant(a_tenant).shed_reasons == {"queue-full": 1}
            assert stats.tenant(b_event.tenant).shed == 0
            await gateway.drain()

        asyncio.run(scenario_run())

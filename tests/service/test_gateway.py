"""The gateway end to end: wire protocol, admission, chaos sites, drain.

Network-level tests run a real asyncio server on an ephemeral port and a
real client; every test ends in a drain so nothing leaks across tests.
The chaos matrix at the bottom is the PR's availability/correctness split:
each gateway fault site at rate 1 mid-trace, then restart + replay, then
assert verdicts are bit-identical to a scratch audit of what was decided.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.audit.store_sql import SqliteVerdictStore
from repro.runtime import faults
from repro.service.client import GatewayClient
from repro.service.server import AuditGateway
from repro.service.shard import ShardManager

from .conftest import recovered_statuses, scratch_statuses


def make_gateway(scenario, tmp_path, store=False, **kwargs):
    universe, policy, _ = scenario
    manager = ShardManager(
        universe,
        policy,
        journal_dir=tmp_path / "journals",
        store=SqliteVerdictStore(tmp_path / "store") if store else None,
    )
    return AuditGateway(manager, port=0, http_port=0, **kwargs)


async def replay_trace(gateway, events, max_retries=6):
    """Drive a trace through real connections, retrying sheds and drops."""
    clients = {}
    responses = {}
    try:
        for event in events:
            for attempt in range(max_retries):
                client = clients.get(event.tenant)
                if client is None:
                    client = clients[event.tenant] = await GatewayClient(
                        "127.0.0.1", gateway.port, event.tenant
                    ).connect()
                try:
                    response = await client.decide(
                        event.user, event.query_text, time=event.time
                    )
                except ConnectionError:
                    # conn-drop: reconnect and retry — availability moved,
                    # verdicts didn't.
                    await client.close()
                    clients.pop(event.tenant, None)
                    continue
                if response.get("decision") == "shed":
                    await asyncio.sleep(response["retry_after_ms"] / 1000.0)
                    continue
                if response.get("decision") == "error":
                    continue  # journal crash: shard heals on retry
                responses[(event.tenant, event.time)] = response
                break
    finally:
        for client in clients.values():
            await client.close()
    return responses


class TestWireBasics:
    def test_ping_stats_and_protocol_errors(self, scenario, tmp_path):
        async def run():
            gateway = make_gateway(scenario, tmp_path)
            await gateway.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.port
            )
            writer.write(b'{"op": "ping", "id": 1}\n')
            writer.write(b"this is not json\n")
            writer.write(b'{"op": "warp"}\n')
            writer.write(b'{"op": "decide", "id": 2}\n')  # missing fields
            await writer.drain()
            pong = json.loads(await reader.readline())
            assert pong["ok"] and pong["pong"]
            bad_json = json.loads(await reader.readline())
            assert bad_json["decision"] == "error"
            bad_op = json.loads(await reader.readline())
            assert "unknown op" in bad_op["error"]
            bad_decide = json.loads(await reader.readline())
            assert bad_decide["id"] == 2 and bad_decide["decision"] == "error"
            assert gateway.stats.protocol_errors == 3
            writer.close()
            await gateway.drain()

        asyncio.run(run())

    def test_decide_and_stats_over_the_wire(self, scenario, trace, tmp_path):
        async def run():
            gateway = make_gateway(scenario, tmp_path)
            await gateway.start()
            event = trace[0]
            async with GatewayClient(
                "127.0.0.1", gateway.port, event.tenant
            ) as client:
                response = await client.decide(
                    event.user, event.query_text, time=event.time
                )
                assert response["ok"]
                assert response["decision"] in ("allow", "deny", "unknown")
                assert response["provenance"]
                stats = await client.stats()
                assert stats["decided"] == 1
                assert stats["tenants"][event.tenant]["journal_appends"] == 1
            await gateway.drain()

        asyncio.run(run())

    def test_http_healthz_stats_and_404(self, scenario, tmp_path):
        async def fetch(port, target):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(f"GET {target} HTTP/1.0\r\n\r\n".encode())
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head, _, body = raw.partition(b"\r\n\r\n")
            return head.split(b" ", 2)[1], json.loads(body)

        async def run():
            gateway = make_gateway(scenario, tmp_path)
            await gateway.start()
            status, body = await fetch(gateway.http_port, "/healthz")
            assert status == b"200" and body["ok"]
            status, body = await fetch(gateway.http_port, "/stats")
            assert status == b"200" and "tenants" in body
            status, body = await fetch(gateway.http_port, "/nope")
            assert status == b"404"
            await gateway.drain()

        asyncio.run(run())


class TestAdmission:
    def test_zero_deadline_sheds_deterministically(self, scenario, trace, tmp_path):
        async def run():
            gateway = make_gateway(scenario, tmp_path)
            await gateway.start()
            event = trace[0]
            async with GatewayClient(
                "127.0.0.1", gateway.port, event.tenant
            ) as client:
                response = await client.decide(
                    event.user, event.query_text, time=0, deadline_ms=0
                )
                assert response["decision"] == "shed"
                assert response["reason"] == "deadline-expired"
            await gateway.drain()

        asyncio.run(run())

    def test_draining_gateway_sheds_new_work(self, scenario, trace, tmp_path):
        async def run():
            gateway = make_gateway(scenario, tmp_path)
            await gateway.start()
            await gateway.drain()
            from repro.service.protocol import DecisionRequest

            response = await gateway._admit(
                DecisionRequest(
                    tenant="t", user="u", time=0, query_text="Q", request_id=1
                )
            )
            assert response["reason"] == "draining"

        asyncio.run(run())


class TestDrain:
    def test_drain_reports_and_is_idempotent(self, scenario, trace, tmp_path):
        async def run():
            gateway = make_gateway(scenario, tmp_path, store=True)
            await gateway.start()
            events = trace[:10]
            await replay_trace(gateway, events)
            report = await gateway.drain()
            assert report["decided"] == len(events)
            assert report["flushed"] and report["drain_shed"] == 0
            assert set(report["tenants"]) == {e.tenant for e in events}
            again = await gateway.drain()
            assert again is report  # idempotent

        asyncio.run(run())

    def test_drain_flush_failure_is_reported_not_fatal(
        self, scenario, trace, tmp_path
    ):
        async def run():
            gateway = make_gateway(scenario, tmp_path, store=True)
            await gateway.start()
            await replay_trace(gateway, trace[:5])
            with faults.inject({faults.DRAIN_FLUSH: 1.0}):
                report = await gateway.drain()
            assert report["flushed"] is False
            assert gateway.stats.flush_failures == 1
            # The journals still hold everything: a restart recovers all
            # verdicts even though the final flush was lost.
            universe, policy, _ = scenario
            recovered = ShardManager(
                universe, policy, journal_dir=tmp_path / "journals", store=None
            )
            counts = recovered.recover_all()
            assert sum(counts.values()) == 5

        asyncio.run(run())


class TestChaosMatrix:
    """Each gateway fault site at rate 1 mid-trace: availability moves,
    then restart + replay is bit-identical to the scratch audit."""

    @pytest.mark.parametrize(
        "site",
        [
            faults.CONN_DROP,
            faults.JOURNAL_TORN_WRITE,
            faults.SLOW_TENANT,
            faults.DRAIN_FLUSH,
        ],
    )
    def test_fault_moves_availability_never_verdicts(
        self, scenario, trace, tmp_path, site
    ):
        universe, policy, _ = scenario
        events = trace[:24]

        async def run():
            gateway = make_gateway(scenario, tmp_path, store=True)
            await gateway.start()
            rule = faults.FaultRule(site=site, rate=1.0, max_fires=4)
            with faults.inject({site: rule}):
                responses = await replay_trace(gateway, events)
                report = await gateway.drain()
            if site == faults.CONN_DROP:
                assert gateway.stats.connections_dropped > 0
            if site == faults.DRAIN_FLUSH:
                assert report["flushed"] is False
            return responses

        responses = asyncio.run(run())
        # Every event eventually decided (retries absorb the faults)...
        assert set(responses) == {(e.tenant, e.time) for e in events}
        # ...and what the live gateway answered matches both the scratch
        # audit and a post-restart replay, bit for bit.
        live = {key: r["status"] for key, r in responses.items()}
        scratch = scratch_statuses(universe, policy, events)
        assert live == scratch
        recovered = ShardManager(
            universe,
            policy,
            journal_dir=tmp_path / "journals",
            store=SqliteVerdictStore(tmp_path / "store"),
        )
        counts = recovered.recover_all()
        assert recovered_statuses(recovered, counts) == scratch

"""Crash recovery: journal replay is verdict-bit-identical to scratch audits.

The PR's central invariant.  A gateway killed mid-stream (``kill -9``
simulated by abandoning the manager without flush or close; torn final
records injected directly and via the ``journal-torn-write`` chaos site)
must, after restart + journal replay, hold exactly the verdicts an
offline scratch audit of the same events computes — per event and per
user-cumulative — whether the shared verdict store survived, was lost, or
never existed.
"""

from __future__ import annotations

import pytest

from repro.audit.store_sql import SqliteVerdictStore
from repro.runtime import faults
from repro.service.journal import JournalTornWriteError
from repro.service.shard import ShardManager

from .conftest import (
    as_request,
    drive_manager,
    recovered_statuses,
    scratch_statuses,
)

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - test extra not installed
    HAVE_HYPOTHESIS = False


def make_manager(scenario, tmp_path, store=True, subdir="run"):
    universe, policy, _ = scenario
    root = tmp_path / subdir
    return ShardManager(
        universe,
        policy,
        journal_dir=root / "journals",
        store=SqliteVerdictStore(root / "store") if store else None,
    )


def live_statuses(responses, events):
    return {
        (event.tenant, event.time): response["status"]
        for event, response in zip(events, responses)
        if response.get("ok")
    }


class TestKill9Recovery:
    @pytest.mark.parametrize("store_survives", [True, False])
    def test_recovery_bit_identical_to_scratch(
        self, scenario, trace, tmp_path, store_survives
    ):
        universe, policy, _ = scenario
        manager = make_manager(scenario, tmp_path)
        responses = drive_manager(manager, trace)
        live = live_statuses(responses, trace)
        assert len(live) == len(trace)  # no faults: everything decided
        # kill -9: no flush, no close — the manager is simply abandoned.
        # With store_survives=False the store directory is also lost, so
        # recovery must *recompute* (identically) rather than replay.
        universe2, policy2 = universe, policy
        recovered = ShardManager(
            universe2,
            policy2,
            journal_dir=tmp_path / "run" / "journals",
            store=(
                SqliteVerdictStore(tmp_path / "run" / "store")
                if store_survives
                else SqliteVerdictStore(tmp_path / "fresh-store")
            ),
        )
        counts = recovered.recover_all()
        assert sum(counts.values()) == len(trace)
        after = recovered_statuses(recovered, counts)
        scratch = scratch_statuses(universe, policy, trace)
        assert after == scratch == live

    def test_recovery_reuses_surviving_store(self, scenario, trace, tmp_path):
        manager = make_manager(scenario, tmp_path)
        drive_manager(manager, trace)
        manager.flush_all()
        store = SqliteVerdictStore(tmp_path / "run" / "store")
        recovered = ShardManager(
            scenario[0],
            scenario[1],
            journal_dir=tmp_path / "run" / "journals",
            store=store,
        )
        recovered.recover_all()
        # Replay must have probed the surviving store and found it warm.
        assert store.stats.hits > 0

    def test_cumulative_states_survive_recovery(self, scenario, trace, tmp_path):
        manager = make_manager(scenario, tmp_path)
        drive_manager(manager, trace)
        before = {
            tenant: {
                user: state.cumulative_verdict.status.value
                for user, state in shard.auditor.states.items()
            }
            for tenant, shard in manager.tenants.items()
        }
        recovered = make_manager(scenario, tmp_path)  # same dirs
        recovered.recover_all()
        after = {
            tenant: {
                user: state.cumulative_verdict.status.value
                for user, state in shard.auditor.states.items()
            }
            for tenant, shard in recovered.tenants.items()
        }
        assert after == before


class TestTornFinalRecord:
    def test_torn_final_record_dropped_and_rest_identical(
        self, scenario, trace, tmp_path
    ):
        universe, policy, _ = scenario
        manager = make_manager(scenario, tmp_path)
        drive_manager(manager, trace)
        victim = trace[-1].tenant
        journal_path = manager.shard(victim).journal.path
        manager.close()
        with open(journal_path, "ab") as handle:
            handle.write(b"\x40\x00\x00\x00PARTIAL")  # a torn frame
        recovered = make_manager(scenario, tmp_path)
        counts = recovered.recover_all()
        assert counts[victim] == sum(1 for e in trace if e.tenant == victim)
        assert recovered.shard(victim).stats.torn_tails_dropped == 1
        after = recovered_statuses(recovered, counts)
        assert after == scratch_statuses(universe, policy, trace)

    def test_injected_torn_write_heals_on_next_request(
        self, scenario, trace, tmp_path
    ):
        """The live-gateway variant: a shard crashes mid-append and the
        manager resurrects it (by replay) on the tenant's next request."""
        universe, policy, _ = scenario
        manager = make_manager(scenario, tmp_path)
        tenant_events = [e for e in trace if e.tenant == trace[0].tenant]
        assert len(tenant_events) >= 3
        shard = manager.shard(tenant_events[0].tenant)
        ok = shard.decide(as_request(tenant_events[0]))
        assert ok["ok"]
        with faults.inject(
            {
                faults.JOURNAL_TORN_WRITE: faults.FaultRule(
                    site=faults.JOURNAL_TORN_WRITE, rate=1.0, max_fires=1
                )
            }
        ):
            crashed = shard.decide(as_request(tenant_events[1]))
            assert not crashed["ok"] and "journal crash" in crashed["error"]
            assert shard.crashed
            healed = shard.decide(as_request(tenant_events[2]))
        assert healed["ok"] and not shard.crashed
        assert shard.stats.recoveries == 1
        # The torn event was never decided; events 0 and 2 audit as if the
        # crash never happened.
        surviving = [tenant_events[0], tenant_events[2]]
        after = recovered_statuses(manager, [tenant_events[0].tenant])
        assert after == scratch_statuses(universe, policy, surviving)


if HAVE_HYPOTHESIS:

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        cut=st.integers(min_value=0, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_kill_at_any_point_recovers_identically(
        scenario, tmp_path_factory, cut, seed
    ):
        """Property: for any prefix length and any trace seed, killing the
        gateway after ``cut`` decisions and replaying journals yields
        verdicts bit-identical to a scratch audit of those decisions."""
        from repro.service.trace import zipf_trace

        universe, policy, pool = scenario
        events = zipf_trace(
            n_events=30, n_tenants=3, n_users=2, seed=seed, pool=pool
        )[:cut]
        tmp_path = tmp_path_factory.mktemp("prop")
        manager = ShardManager(
            universe, policy, journal_dir=tmp_path / "journals", store=None
        )
        responses = drive_manager(manager, events)
        live = live_statuses(responses, events)
        recovered = ShardManager(
            universe, policy, journal_dir=tmp_path / "journals", store=None
        )
        counts = recovered.recover_all()
        after = recovered_statuses(recovered, counts)
        assert after == scratch_statuses(universe, policy, events) == live

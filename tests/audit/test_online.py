"""Tests for the online auditing simulator (the §1 Alice/Bob discussion)."""

from __future__ import annotations

import pytest

from repro.audit import (
    AlwaysDenyStrategy,
    Answer,
    CoinFlipStrategy,
    TruthfulDenialStrategy,
    simulate,
)


TIMELINE = [False, False, False, True, True, True]  # seroconversion at t=3


class TestTruthfulDenial:
    def test_breach_at_seroconversion(self):
        """"if he does become HIV-positive in the future, he will have to
        deny further inquiries, and Alice will infer that he contracted
        HIV" — the breach happens at the first denial."""
        result = simulate(TruthfulDenialStrategy(), TIMELINE)
        assert result.breached
        assert result.breach_time == 3

    def test_no_breach_while_negative(self):
        result = simulate(TruthfulDenialStrategy(), [False] * 5)
        assert not result.breached
        # Alice does learn the *negative* status, which Bob is OK with.
        assert result.steps[-1].belief.knows_negative

    def test_answers_reflect_status(self):
        result = simulate(TruthfulDenialStrategy(), TIMELINE)
        answers = [s.answer for s in result.steps]
        assert answers[:3] == [Answer.NEGATIVE] * 3
        assert answers[3:] == [Answer.DENY] * 3


class TestAlwaysDeny:
    def test_never_breaches(self):
        result = simulate(AlwaysDenyStrategy(), TIMELINE)
        assert not result.breached
        assert result.answers_given() == 0

    def test_alice_stays_uncertain(self):
        result = simulate(AlwaysDenyStrategy(), TIMELINE)
        assert all(
            s.belief.negative_possible and s.belief.positive_possible
            for s in result.steps
        )


class TestCoinFlip:
    @pytest.mark.parametrize("seed", range(8))
    def test_never_breaches_any_seed(self, seed):
        """Footnote 1: a denial is consistent with both statuses, so Alice
        never *knows* Bob is positive."""
        result = simulate(CoinFlipStrategy(), TIMELINE, seed=seed)
        assert not result.breached

    def test_earns_some_answers(self):
        """Unlike always-deny, the coin strategy usually answers sometimes."""
        total = sum(
            simulate(CoinFlipStrategy(), TIMELINE, seed=seed).answers_given()
            for seed in range(20)
        )
        assert total > 0

    def test_answer_still_reveals_negative(self):
        """Saying "I am HIV-negative" still tells Alice the (OK) fact."""
        result = simulate(CoinFlipStrategy(0.99), [False], seed=1)
        if result.steps[0].answer is Answer.NEGATIVE:
            assert result.steps[0].belief.knows_negative

    def test_coin_validation(self):
        with pytest.raises(ValueError):
            CoinFlipStrategy(1.0)

    def test_positive_never_answers_negative(self):
        for seed in range(10):
            result = simulate(CoinFlipStrategy(), [True] * 4, seed=seed)
            assert all(s.answer is Answer.DENY for s in result.steps)


class TestKnowledgeDynamics:
    def test_knowledge_is_monotone(self):
        """Once Alice knows the positive status she never un-knows it."""
        result = simulate(TruthfulDenialStrategy(), TIMELINE)
        knew = False
        for step in result.steps:
            if knew:
                assert step.belief.knows_positive
            knew = knew or step.belief.knows_positive

    def test_seroconversion_timing_inference(self):
        """With truthful denial, Alice pinpoints conversion between the last
        "negative" answer and the first denial."""
        result = simulate(TruthfulDenialStrategy(), [False, True, True])
        assert result.breach_time == 1

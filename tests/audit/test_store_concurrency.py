"""Concurrent multi-process writers against one verdict store.

Satellite contract: 4 processes append disjoint verdicts and flush
concurrently; a reader then sees exactly the union with zero
``load_failures`` — for both backends.  The JSON reference gets there by
merge-on-flush under an advisory lock; the SQLite backend by WAL-mode
shards with busy-timeout + commit retry.
"""

from __future__ import annotations

import multiprocessing
import sys

import pytest

from repro.audit import open_verdict_store
from repro.audit.store_sql import STORE_BACKENDS
from repro.core.verdict import AuditVerdict, Verdict

N_WRITERS = 4
KEYS_PER_WRITER = 25


def writer_keys(writer: int):
    return [
        (f"aud-w{writer}-{i:03d}", f"dis-w{writer}-{i:03d}", "product", 1e-9)
        for i in range(KEYS_PER_WRITER)
    ]


def _append_slice(backend: str, path: str, writer: int) -> None:
    """Child-process body: append one writer's disjoint slice and flush."""
    store = open_verdict_store(path, backend=backend)
    for key in writer_keys(writer):
        store.put(key, AuditVerdict.safe(f"writer-{writer}"))
    flushed = store.flush()
    store.close()
    sys.exit(0 if flushed else 1)


@pytest.mark.parametrize("backend", STORE_BACKENDS)
def test_four_writers_reader_sees_union(tmp_path, backend):
    path = str(tmp_path / ("store.json" if backend == "json" else "store"))
    procs = [
        multiprocessing.Process(target=_append_slice, args=(backend, path, w))
        for w in range(N_WRITERS)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
    codes = [proc.exitcode for proc in procs]
    assert codes == [0] * N_WRITERS, f"writer exit codes: {codes}"

    reader = open_verdict_store(path, backend=backend, read_only=True)
    all_keys = [key for w in range(N_WRITERS) for key in writer_keys(w)]
    found = reader.probe_many(all_keys)
    assert len(found) == N_WRITERS * KEYS_PER_WRITER
    assert reader.stats.load_failures == 0
    # Spot-check attribution: each slice carries its writer's method tag.
    for w in range(N_WRITERS):
        verdict = found[writer_keys(w)[0]]
        assert verdict.status is Verdict.SAFE
        assert verdict.method == f"writer-{w}"
    reader.close()

"""Tests for the batched audit engine: verdict cache, dedupe, pool fan-out."""

from __future__ import annotations

import pytest

from repro.audit import (
    AuditPolicy,
    BatchAuditEngine,
    DisclosureLog,
    OfflineAuditor,
    PriorAssumption,
    VerdictCache,
)
from repro.core.verdict import Verdict
from repro.db import (
    CandidateUniverse,
    ColumnType,
    Database,
    TableSchema,
    parse_boolean_query,
)
from repro.perf.bench import build_mixed_density_log, build_registry


@pytest.fixture
def hospital():
    db = Database()
    db.create_table(
        TableSchema.build("facts", patient=ColumnType.TEXT, kind=ColumnType.TEXT)
    )
    r1 = db.insert("facts", patient="Bob", kind="hiv_positive")
    r2 = db.insert("facts", patient="Bob", kind="transfusion")
    return CandidateUniverse(db, [r1, r2])


A_TEXT = "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'hiv_positive')"
B_TEXT = (
    "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'hiv_positive') "
    "IMPLIES "
    "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'transfusion')"
)


def make_policy(assumption=PriorAssumption.PRODUCT):
    return AuditPolicy(
        audit_query=parse_boolean_query(A_TEXT),
        assumption=assumption,
        name="engine-test",
    )


def repeated_log(n: int = 4):
    log = DisclosureLog()
    for t in range(n):
        log.record(2000 + t, f"user{t}", parse_boolean_query(B_TEXT))
    return log


class TestVerdictCache:
    def test_identical_events_hit(self, hospital):
        engine = BatchAuditEngine(hospital, make_policy())
        report = engine.audit_log(repeated_log(4))
        assert len(report.findings) == 4
        # One decision for four logically identical events.
        assert engine.cache.misses == 1
        assert engine.cache.hits == 3
        assert len(engine.cache) == 1
        assert report.cache_stats.hit_rate == pytest.approx(0.75)

    def test_warm_rerun_hits_everything(self, hospital):
        engine = BatchAuditEngine(hospital, make_policy())
        log = repeated_log(4)
        engine.audit_log(log)
        engine.audit_log(log)
        assert engine.cache.misses == 1
        assert engine.cache.hits == 7
        # Batch compilation deduped the query as well.
        assert engine.compile_stats.misses == 1
        assert engine.compile_stats.hits == 7

    def test_different_atol_misses(self, hospital):
        cache = VerdictCache()
        log = repeated_log(2)
        BatchAuditEngine(hospital, make_policy(), cache=cache).audit_log(log)
        BatchAuditEngine(
            hospital, make_policy(), cache=cache, atol=1e-6
        ).audit_log(log)
        # Same (A, B) pair, different tolerance → separate cache entries.
        assert cache.misses == 2
        assert len(cache) == 2

    def test_different_assumption_misses(self, hospital):
        cache = VerdictCache()
        log = repeated_log(2)
        BatchAuditEngine(hospital, make_policy(), cache=cache).audit_log(log)
        BatchAuditEngine(
            hospital, make_policy(PriorAssumption.UNRESTRICTED), cache=cache
        ).audit_log(log)
        assert cache.misses == 2
        assert len(cache) == 2

    def test_cached_unsafe_carries_witness(self, hospital):
        engine = BatchAuditEngine(hospital, make_policy())
        log = DisclosureLog()
        for t in range(3):
            log.record(2000 + t, f"user{t}", parse_boolean_query(A_TEXT))
        report = engine.audit_log(log)
        assert engine.cache.misses == 1  # the two repeats came from the cache
        for finding in report.findings:
            assert finding.verdict.status is Verdict.UNSAFE
            assert finding.verdict.witness is not None

    def test_clear_resets(self, hospital):
        engine = BatchAuditEngine(hospital, make_policy())
        engine.audit_log(repeated_log(2))
        engine.cache.clear()
        assert len(engine.cache) == 0
        assert engine.cache.stats().lookups == 0


class TestEngineAgainstSeedLoop:
    def test_matches_serial_loop_and_counts_tolerant(self, hospital):
        log = repeated_log(2)
        log.record(2007, "mallory", parse_boolean_query(A_TEXT))
        auditor = OfflineAuditor(hospital, make_policy())
        seed_report = auditor.audit_log_serial(log)
        engine_report = auditor.audit_log(log)
        assert [f.verdict.status for f in engine_report.findings] == [
            f.verdict.status for f in seed_report.findings
        ]
        assert engine_report.suspicious_users == seed_report.suspicious_users
        counts = engine_report.counts()
        assert counts["unsafe"] == 1
        assert counts["unknown"] == 0  # all statuses present even at zero


class TestParallelDeterminism:
    def test_two_workers_bit_identical_to_serial(self):
        """n_workers=2 on a mixed-density log matches the serial engine."""
        universe = build_registry(background_rows=16)
        log = build_mixed_density_log(universe, n_events=40, seed=11)
        policy = AuditPolicy(
            audit_query=parse_boolean_query(
                "EXISTS(SELECT * FROM diagnoses "
                "WHERE patient = 'Bob' AND disease = 'hiv')"
            ),
            assumption=PriorAssumption.PRODUCT,
            name="parallel-test",
        )
        serial = BatchAuditEngine(universe, policy, n_workers=1)
        serial_report = serial.audit_log(log)
        # parallel_threshold=0 forces the pool even for a small batch.
        parallel = BatchAuditEngine(
            universe, policy, n_workers=2, parallel_threshold=0
        )
        parallel_report = parallel.audit_log(log)
        assert parallel.pool_engaged or parallel.n_workers == 1
        assert not serial.pool_engaged
        for ours, theirs in zip(
            parallel_report.findings, serial_report.findings
        ):
            assert ours.verdict.status is theirs.verdict.status
            assert ours.verdict.method == theirs.verdict.method
            assert repr(ours.verdict.witness) == repr(theirs.verdict.witness)
        assert parallel.cache.misses == serial.cache.misses


class TestAblationSharing:
    def test_ablation_shares_compilation_and_cache(self, hospital):
        engine = BatchAuditEngine(hospital, make_policy())
        log = repeated_log(3)
        reports = engine.audit_ablation(
            log, [PriorAssumption.PRODUCT, PriorAssumption.UNRESTRICTED]
        )
        assert set(reports) == {
            PriorAssumption.PRODUCT,
            PriorAssumption.UNRESTRICTED,
        }
        # One compile miss total: the sets were shared across both runs.
        assert engine.compile_stats.misses == 1
        # Two cache misses: one decision per assumption family.
        assert engine.cache.misses == 2

"""Tests for audit report rendering."""

from __future__ import annotations

import pytest

from repro.audit import (
    AuditPolicy,
    AuditReport,
    DisclosureEvent,
    PriorAssumption,
    render_report,
)
from repro.audit.offline import EventFinding
from repro.core import AuditVerdict, HypercubeSpace
from repro.db import Exists, column_eq


@pytest.fixture
def space():
    return HypercubeSpace(2)


def make_finding(space, user, time, verdict):
    event = DisclosureEvent(
        time=time, user=user, query=Exists("t", column_eq("x", 1)), note="n"
    )
    return EventFinding(
        event=event, disclosed_set=space.full, verdict=verdict
    )


def make_policy():
    return AuditPolicy(
        audit_query=Exists("t", column_eq("x", 1)),
        assumption=PriorAssumption.PRODUCT,
        name="test-policy",
    )


class TestRenderReport:
    def test_empty_report(self):
        report = AuditReport(policy=make_policy())
        text = render_report(report)
        assert "OFFLINE AUDIT REPORT" in text
        assert "events: 0" in text

    def test_mixed_findings(self, space):
        report = AuditReport(policy=make_policy())
        report.findings.append(
            make_finding(space, "alice", 1, AuditVerdict.safe("criterion"))
        )
        report.findings.append(
            make_finding(space, "mallory", 2, AuditVerdict.unsafe("box", witness="W"))
        )
        report.findings.append(
            make_finding(space, "carol", 3, AuditVerdict.unknown("exhausted"))
        )
        text = render_report(report)
        assert "[ok]" in text and "[!!]" in text
        assert "suspicion falls on: mallory" in text
        assert "cleared: alice, carol" in text
        assert "safe: 1" in text and "unsafe: 1" in text and "unknown: 1" in text

    def test_long_witness_truncated(self, space):
        report = AuditReport(policy=make_policy())
        report.findings.append(
            make_finding(
                space, "eve", 1, AuditVerdict.unsafe("m", witness="x" * 500)
            )
        )
        text = render_report(report)
        assert "..." in text
        assert "x" * 200 not in text

    def test_user_with_mixed_events_is_suspicious(self, space):
        report = AuditReport(policy=make_policy())
        report.findings.append(
            make_finding(space, "eve", 1, AuditVerdict.safe("c"))
        )
        report.findings.append(
            make_finding(space, "eve", 2, AuditVerdict.unsafe("c"))
        )
        assert report.suspicious_users == ("eve",)
        assert report.cleared_users == ()

    def test_for_user_filter(self, space):
        report = AuditReport(policy=make_policy())
        report.findings.append(make_finding(space, "a", 1, AuditVerdict.safe("c")))
        report.findings.append(make_finding(space, "b", 2, AuditVerdict.safe("c")))
        assert len(report.for_user("a")) == 1
        assert len(report.for_user("missing")) == 0

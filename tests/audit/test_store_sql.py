"""The sharded SQLite-WAL verdict store: same contract, production shape.

Covers the :class:`~repro.audit.store_sql.SqliteVerdictStore` half of the
``VerdictStoreBase`` protocol — round trips, lazy sharded probing, layout
pinning, append/compaction, corruption tolerance — plus the cross-backend
guarantees: the engine issues exactly one batched probe per audit, and
randomized audits are verdict-identical across {no-store, json, sqlite}
backends, including after injected corruption.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.audit import (
    AuditPolicy,
    BatchAuditEngine,
    OfflineAuditor,
    SqliteVerdictStore,
    VerdictStore,
    open_verdict_store,
)
from repro.audit.store import _encode_key
from repro.audit.store_sql import (
    _COMPACT_MIN_DEAD,
    DEFAULT_SHARDS,
    STORE_BACKENDS,
    shard_of,
)
from repro.core.verdict import AuditVerdict, Verdict
from repro.db import parse_boolean_query
from repro.perf.bench import AUDIT_QUERY, build_mixed_density_log, build_registry
from repro.runtime import faults

KEY = ("a" * 32, "b" * 32, "product", 1e-9)
KEY2 = ("a" * 32, "c" * 32, "product", 1e-9)
KEY3 = ("a" * 32, "d" * 32, "product", 1e-9)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.uninstall()
    yield
    faults.uninstall()


def make_store(tmp_path, name="verdicts", **kwargs):
    return SqliteVerdictStore(tmp_path / name, **kwargs)


class TestRoundTrip:
    def test_put_flush_reload(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        store.put(KEY2, AuditVerdict.unsafe("optimizer", gap=0.25))
        assert store.flush()
        store.close()

        reloaded = make_store(tmp_path)
        assert len(reloaded) == 2
        verdict = reloaded.get(KEY)
        assert verdict is not None and verdict.status is Verdict.SAFE
        verdict2 = reloaded.get(KEY2)
        assert verdict2 is not None and verdict2.status is Verdict.UNSAFE
        assert verdict2.details["gap"] == 0.25
        # Lazy by design: nothing is ever loaded wholesale.
        assert reloaded.stats.loaded == 0

    def test_probe_many_batches_and_counts(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        store.flush()
        store.close()
        reloaded = make_store(tmp_path)
        found = reloaded.probe_many([KEY, KEY2, KEY3])
        assert set(found) == {KEY}
        assert reloaded.stats.probes == 1
        assert reloaded.stats.hits == 1
        assert reloaded.stats.misses == 2

    def test_get_does_not_count_a_probe(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        store.flush()
        assert store.get(KEY) is not None
        assert store.stats.probes == 0

    def test_pending_writes_visible_before_flush(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        assert KEY in store
        assert set(store.probe_many([KEY])) == {KEY}

    def test_unknown_verdicts_not_persisted(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.unknown("budget"))
        assert store.flush()
        assert len(store) == 0

    def test_latest_write_wins(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.safe("first"))
        store.flush()
        store.put(KEY, AuditVerdict.unsafe("second"))
        store.flush()
        store.close()
        reloaded = make_store(tmp_path)
        assert reloaded.get(KEY).status is Verdict.UNSAFE
        assert reloaded.probe_many([KEY])[KEY].method == "second"

    def test_witness_and_certificate_dropped(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.unsafe("optimizer", witness=object()))
        assert store.flush()
        store.close()
        verdict = make_store(tmp_path).get(KEY)
        assert verdict.status is Verdict.UNSAFE
        assert verdict.witness is None

    def test_read_only_never_creates(self, tmp_path):
        store = make_store(tmp_path, read_only=True)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        assert store.flush()
        assert not (tmp_path / "verdicts").exists()
        assert store.probe_many([KEY]) == {KEY: AuditVerdict.safe("cancellation")}

    def test_clear_empties_all_shards(self, tmp_path):
        store = make_store(tmp_path)
        for key in (KEY, KEY2, KEY3):
            store.put(key, AuditVerdict.safe("cancellation"))
        store.flush()
        store.clear()
        assert store.flush()
        store.close()
        assert len(make_store(tmp_path)) == 0

    def test_skipped_flush_counted(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        assert store.flush()
        assert store.flush()
        assert store.stats.flushes == 1
        assert store.stats.skipped_flushes == 1


class TestShardLayout:
    def test_shard_of_is_stable(self):
        text = _encode_key(KEY)
        assert shard_of(text, 8) == shard_of(text, 8)
        assert 0 <= shard_of(text, 8) < 8

    def test_layout_file_pins_shard_count(self, tmp_path):
        store = make_store(tmp_path, n_shards=3)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        store.flush()
        store.close()
        # A later opener asking for a different count must defer to disk.
        reopened = make_store(tmp_path, n_shards=16)
        assert reopened.n_shards == 3
        assert reopened.get(KEY) is not None

    def test_malformed_layout_is_a_load_failure(self, tmp_path):
        (tmp_path / "verdicts").mkdir()
        (tmp_path / "verdicts" / "layout.json").write_text("{not json")
        store = make_store(tmp_path)
        assert store.stats.load_failures == 1
        assert store.n_shards == DEFAULT_SHARDS

    def test_keys_spread_over_multiple_shards(self, tmp_path):
        store = make_store(tmp_path)
        for i in range(64):
            store.put(
                (f"aud{i:04d}", f"dis{i:04d}", "product", 1e-9),
                AuditVerdict.safe("cancellation"),
            )
        store.flush()
        shards = list((tmp_path / "verdicts").glob("shard-*.sqlite"))
        assert len(shards) > 1


class TestCompaction:
    def test_superseded_rows_compacted(self, tmp_path):
        store = make_store(tmp_path, n_shards=1)
        keys = [(f"aud{i:04d}", "b" * 8, "product", 1e-9) for i in range(32)]
        rounds = _COMPACT_MIN_DEAD // len(keys) + 2
        for round_no in range(rounds):
            for key in keys:
                store.put(key, AuditVerdict.safe(f"round-{round_no}"))
            store.flush()
        assert store.stats.compactions >= 1
        # Compaction dropped history only: every key still reads newest.
        found = store.probe_many(keys)
        assert len(found) == len(keys)
        assert all(v.method == f"round-{rounds - 1}" for v in found.values())


class TestCorruptionTolerance:
    def _primed(self, tmp_path):
        store = make_store(tmp_path, n_shards=1)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        store.flush()
        store.close()
        return tmp_path / "verdicts" / "shard-00.sqlite"

    def test_garbage_shard_discarded_and_counted(self, tmp_path):
        shard = self._primed(tmp_path)
        shard.write_bytes(b"this is not a database")
        store = make_store(tmp_path)
        assert store.get(KEY) is None
        assert store.stats.load_failures == 1
        # The writable store recreated the shard; it works again.
        store.put(KEY2, AuditVerdict.safe("recovered"))
        assert store.flush()
        store.close()
        assert make_store(tmp_path).get(KEY2) is not None

    def test_alien_format_marker_discarded(self, tmp_path):
        shard = self._primed(tmp_path)
        conn = sqlite3.connect(str(shard))
        conn.execute("UPDATE meta SET v = 'alien' WHERE k = 'format'")
        conn.commit()
        conn.close()
        store = make_store(tmp_path)
        assert store.get(KEY) is None
        assert store.stats.load_failures == 1

    def test_read_only_treats_corrupt_shard_as_empty(self, tmp_path):
        shard = self._primed(tmp_path)
        shard.write_bytes(b"garbage")
        store = make_store(tmp_path, read_only=True)
        assert store.get(KEY) is None
        assert store.stats.load_failures == 1
        assert shard.read_bytes() == b"garbage"  # never touched

    def test_malformed_row_dropped_individually(self, tmp_path):
        shard = self._primed(tmp_path)
        conn = sqlite3.connect(str(shard))
        conn.execute(
            "INSERT INTO verdicts (key, status, method, details) "
            "VALUES (?, 'bogus-status', 'x', '{}')",
            (_encode_key(KEY2),),
        )
        conn.commit()
        conn.close()
        store = make_store(tmp_path)
        found = store.probe_many([KEY, KEY2])
        assert set(found) == {KEY}
        assert store.stats.dropped_entries == 1
        assert store.stats.load_failures == 0


class TestFactory:
    def test_backends_constant(self):
        assert STORE_BACKENDS == ("json", "sqlite")

    def test_factory_dispatches(self, tmp_path):
        assert isinstance(
            open_verdict_store(tmp_path / "s.json", backend="json"), VerdictStore
        )
        assert isinstance(
            open_verdict_store(tmp_path / "s", backend="sqlite"),
            SqliteVerdictStore,
        )
        with pytest.raises(ValueError):
            open_verdict_store(tmp_path / "s", backend="dbm")


# -- engine integration: one batched probe, backend equivalence --------------------


@pytest.fixture(scope="module")
def registry():
    return build_registry(background_rows=16)


def make_policy(name="store-sql-test"):
    return AuditPolicy(audit_query=parse_boolean_query(AUDIT_QUERY), name=name)


def _statuses(report):
    return [finding.verdict.status for finding in report.findings]


class TestOneProbePerAudit:
    @pytest.mark.parametrize("backend", STORE_BACKENDS)
    def test_engine_probes_once_per_audit_log(self, registry, tmp_path, backend):
        log = build_mixed_density_log(registry, n_events=25, seed=3)
        store = open_verdict_store(tmp_path / "store", backend=backend)
        engine = BatchAuditEngine(
            registry, make_policy(), n_workers=1, store=store
        )
        engine.audit_log(log)
        assert store.stats.probes == 1
        # Warm rerun: the in-memory cache answers everything — the store
        # is not consulted again, so the count stays at one.
        engine.audit_log(log)
        assert store.stats.probes == 1

    @pytest.mark.parametrize("backend", STORE_BACKENDS)
    def test_incremental_auditor_probes_once_per_call(
        self, registry, tmp_path, backend
    ):
        log = build_mixed_density_log(registry, n_events=25, seed=3)
        store = open_verdict_store(tmp_path / "store", backend=backend)
        auditor = OfflineAuditor(registry, make_policy())
        auditor.audit_log_incremental(log, store=store)
        assert store.stats.probes == 1


class TestBackendEquivalence:
    """Randomized audits must be verdict-identical across all backends."""

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_fresh_stores_match_no_store(self, registry, tmp_path, seed):
        log = build_mixed_density_log(registry, n_events=30, seed=seed)
        reference = _statuses(
            BatchAuditEngine(registry, make_policy(), n_workers=1).audit_log(log)
        )
        for backend in STORE_BACKENDS:
            store = open_verdict_store(
                tmp_path / f"fresh-{backend}", backend=backend
            )
            report = BatchAuditEngine(
                registry, make_policy(), n_workers=1, store=store
            ).audit_log(log)
            assert _statuses(report) == reference, backend

    @pytest.mark.parametrize("seed", [2, 6])
    def test_warm_stores_match_no_store(self, registry, tmp_path, seed):
        log = build_mixed_density_log(registry, n_events=30, seed=seed)
        reference = _statuses(
            BatchAuditEngine(registry, make_policy(), n_workers=1).audit_log(log)
        )
        for backend in STORE_BACKENDS:
            path = tmp_path / f"warm-{backend}"
            primer = open_verdict_store(path, backend=backend)
            BatchAuditEngine(
                registry, make_policy(), n_workers=1, store=primer
            ).audit_log(log)
            primer.close()
            # A fresh process resumes: every verdict served from disk.
            warm = open_verdict_store(path, backend=backend)
            report = BatchAuditEngine(
                registry, make_policy(), n_workers=1, store=warm
            ).audit_log(log)
            assert _statuses(report) == reference, backend
            assert warm.stats.hits > 0

    @pytest.mark.parametrize("seed", [4, 8])
    def test_corrupted_stores_still_match(self, registry, tmp_path, seed):
        """Injected corruption degrades to recomputation, never to a wrong
        verdict — on either backend."""
        log = build_mixed_density_log(registry, n_events=30, seed=seed)
        reference = _statuses(
            BatchAuditEngine(registry, make_policy(), n_workers=1).audit_log(log)
        )
        # Prime both stores, then corrupt them on disk.
        json_path = tmp_path / "corrupt.json"
        sqlite_path = tmp_path / "corrupt-sqlite"
        for backend, path in (("json", json_path), ("sqlite", sqlite_path)):
            primer = open_verdict_store(path, backend=backend)
            BatchAuditEngine(
                registry, make_policy(), n_workers=1, store=primer
            ).audit_log(log)
            primer.close()
        json_path.write_text("{definitely not json")
        shards = sorted(sqlite_path.glob("shard-*.sqlite"))
        assert shards
        shards[0].write_bytes(b"scribbled over")

        for backend, path in (("json", json_path), ("sqlite", sqlite_path)):
            store = open_verdict_store(path, backend=backend)
            report = BatchAuditEngine(
                registry, make_policy(), n_workers=1, store=store
            ).audit_log(log)
            assert _statuses(report) == reference, backend
            assert store.stats.load_failures >= 1, backend
            assert report.runtime_stats.store_failures >= 1, backend

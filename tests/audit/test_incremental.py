"""Equivalence and soundness of the incremental streaming auditor.

The contract: ``audit_log_incremental`` is verdict-identical to the serial
reference path under every streaming configuration — cold store, warm
store, mid-log ``since``, corrupted store — and the Proposition 3.10 fast
path only ever fires when the running composition genuinely is safe and
K-preserving.
"""

from __future__ import annotations

import pytest

from repro.audit import (
    AuditPolicy,
    DisclosureLog,
    IncrementalAuditor,
    OfflineAuditor,
    PriorAssumption,
)
from repro.audit.incremental import (
    FAST_PATH_METHOD,
    explicit_possibilistic_knowledge,
)
from repro.audit.store import VerdictStore
from repro.core.preserving import (
    is_preserving_possibilistic,
    preserving_cache_clear,
)
from repro.core.privacy import safe_possibilistic
from repro.core.worlds import HypercubeSpace
from repro.db import parse_boolean_query
from repro.perf.bench import AUDIT_QUERY, build_mixed_density_log, build_registry

SEEDS = (3, 11, 29)


@pytest.fixture(scope="module")
def registry():
    return build_registry(background_rows=16)


def make_policy(assumption=PriorAssumption.PRODUCT):
    return AuditPolicy(
        audit_query=parse_boolean_query(AUDIT_QUERY), assumption=assumption
    )


def statuses(report):
    return [f.verdict.status for f in report.findings]


class TestEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_cold_equivalent_to_serial(self, registry, tmp_path, seed):
        log = build_mixed_density_log(registry, n_events=40, seed=seed)
        policy = make_policy()
        serial = OfflineAuditor(registry, policy).audit_log_serial(log)
        store = VerdictStore(tmp_path / "store.json")
        report = OfflineAuditor(registry, policy).audit_log_incremental(
            log, store=store
        )
        assert statuses(report) == statuses(serial)
        assert report.store_stats is not None
        assert report.store_stats.stored > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_warm_store_equivalent_and_decision_free(
        self, registry, tmp_path, seed
    ):
        log = build_mixed_density_log(registry, n_events=40, seed=seed)
        policy = make_policy()
        path = tmp_path / "store.json"
        OfflineAuditor(registry, policy).audit_log_incremental(
            log, store=VerdictStore(path)
        )
        serial = OfflineAuditor(registry, policy).audit_log_serial(log)

        # A cold process warming up from disk: fresh auditor, fresh store
        # object, same path.  Every unique per-event decision must come
        # from the store, none from a pipeline.
        warm_store = VerdictStore(path)
        warm = OfflineAuditor(registry, policy).audit_log_incremental(
            log, store=warm_store
        )
        assert statuses(warm) == statuses(serial)
        assert warm_store.stats.loaded > 0
        assert warm_store.stats.hits == warm_store.stats.lookups
        assert warm_store.stats.stored == 0  # nothing new to persist

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_mid_log_since(self, registry, tmp_path, seed):
        log = build_mixed_density_log(registry, n_events=40, seed=seed)
        policy = make_policy()
        cut = 20
        auditor = OfflineAuditor(registry, policy)
        # Stream the prefix first, then the grown log with a since filter.
        auditor.audit_log_incremental(
            log.before(cut), store=VerdictStore(tmp_path / "store.json")
        )
        report = auditor.audit_log_incremental(
            log, since=cut, store=auditor._incremental.store
        )
        serial = OfflineAuditor(registry, policy).audit_log_serial(log.since(cut))
        assert [f.event for f in report.findings] == list(log.since(cut))
        assert statuses(report) == statuses(serial)

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_corrupted_store_recovery(self, registry, tmp_path, seed):
        log = build_mixed_density_log(registry, n_events=30, seed=seed)
        policy = make_policy()
        path = tmp_path / "store.json"
        path.write_text("{definitely not a store")
        store = VerdictStore(path)
        report = OfflineAuditor(registry, policy).audit_log_incremental(
            log, store=store
        )
        serial = OfflineAuditor(registry, policy).audit_log_serial(log)
        assert statuses(report) == statuses(serial)
        assert report.store_stats.load_failures == 1
        assert report.runtime_stats.store_failures >= 1
        # The bad generation is replaced by a good one.
        assert VerdictStore(path).stats.loaded > 0

    def test_append_only_consumes_suffix(self, registry, tmp_path):
        log = build_mixed_density_log(registry, n_events=30, seed=5)
        policy = make_policy()
        auditor = OfflineAuditor(registry, policy)
        store = VerdictStore(tmp_path / "store.json")
        auditor.audit_log_incremental(log, store=store)
        inc = auditor._incremental
        consumed_before = len(inc._consumed)

        grown = DisclosureLog(list(log))
        extra = build_mixed_density_log(registry, n_events=5, seed=99)
        for i, event in enumerate(extra):
            grown.record(1000 + i, event.user, event.query)
        report = auditor.audit_log_incremental(grown, store=store)
        assert len(inc._consumed) == consumed_before + 5
        serial = OfflineAuditor(registry, policy).audit_log_serial(grown)
        assert statuses(report) == statuses(serial)

    def test_rewritten_prefix_resets(self, registry, tmp_path):
        log = build_mixed_density_log(registry, n_events=20, seed=5)
        policy = make_policy()
        auditor = OfflineAuditor(registry, policy)
        store = VerdictStore(tmp_path / "store.json")
        auditor.audit_log_incremental(log, store=store)
        shuffled = DisclosureLog(list(log)[5:])  # events removed, not appended
        report = auditor.audit_log_incremental(shuffled, store=store)
        serial = OfflineAuditor(registry, policy).audit_log_serial(shuffled)
        assert statuses(report) == statuses(serial)
        assert len(report.findings) == len(shuffled)

    def test_no_store_still_works(self, registry):
        log = build_mixed_density_log(registry, n_events=20, seed=5)
        policy = make_policy()
        report = OfflineAuditor(registry, policy).audit_log_incremental(log)
        serial = OfflineAuditor(registry, policy).audit_log_serial(log)
        assert statuses(report) == statuses(serial)
        assert report.store_stats is None


class TestProbeIdempotency:
    """Replaying an identical (log, since) is free: no probe, no flush."""

    def test_identical_replay_touches_neither_store_nor_engine(
        self, registry, tmp_path
    ):
        log = build_mixed_density_log(registry, n_events=30, seed=7)
        store = VerdictStore(tmp_path / "store.json")
        auditor = IncrementalAuditor(registry, make_policy(), store=store)
        first = auditor.audit_log(log)
        probes = store.stats.probes
        flushes = store.stats.flushes
        skipped = store.stats.skipped_flushes
        assert probes == 1  # one batched probe on the cold run

        replay = auditor.audit_log(log)
        assert replay is first  # memoised report, returned outright
        assert store.stats.probes == probes
        assert store.stats.flushes == flushes
        assert store.stats.skipped_flushes == skipped
        assert statuses(replay) == statuses(first)

    def test_grown_log_is_not_short_circuited(self, registry, tmp_path):
        log = build_mixed_density_log(registry, n_events=20, seed=7)
        store = VerdictStore(tmp_path / "store.json")
        auditor = IncrementalAuditor(registry, make_policy(), store=store)
        auditor.audit_log(log)
        probes = store.stats.probes

        grown = DisclosureLog(list(log))
        extra = build_mixed_density_log(registry, n_events=3, seed=41)
        for i, event in enumerate(extra):
            grown.record(1000 + i, event.user, event.query)
        report = auditor.audit_log(grown)
        assert store.stats.probes == probes + 1  # the fingerprint moved
        assert len(report.findings) == len(grown)

    def test_same_content_rebuilt_log_still_short_circuits(
        self, registry, tmp_path
    ):
        """The memo keys on content (fingerprint), not object identity —
        a cold-restart shape where the log is re-read from scratch."""
        log = build_mixed_density_log(registry, n_events=20, seed=7)
        rebuilt = DisclosureLog(list(log))
        assert log.fingerprint() == rebuilt.fingerprint()

        store = VerdictStore(tmp_path / "store.json")
        auditor = IncrementalAuditor(registry, make_policy(), store=store)
        first = auditor.audit_log(log)
        probes = store.stats.probes
        assert auditor.audit_log(rebuilt) is first
        assert store.stats.probes == probes

    def test_since_is_part_of_the_key(self, registry, tmp_path):
        log = build_mixed_density_log(registry, n_events=20, seed=7)
        store = VerdictStore(tmp_path / "store.json")
        auditor = IncrementalAuditor(registry, make_policy(), store=store)
        full = auditor.audit_log(log)
        tail = auditor.audit_log(log, since=10)
        assert tail is not full
        assert [f.event for f in tail.findings] == list(log.since(10))

    def test_reset_clears_the_memo(self, registry, tmp_path):
        log = build_mixed_density_log(registry, n_events=20, seed=7)
        store = VerdictStore(tmp_path / "store.json")
        auditor = IncrementalAuditor(registry, make_policy(), store=store)
        first = auditor.audit_log(log)
        auditor.reset()
        again = auditor.audit_log(log)
        assert again is not first
        assert statuses(again) == statuses(first)


POSSIBILISTIC = (
    PriorAssumption.POSSIBILISTIC_SUBCUBES,
    PriorAssumption.POSSIBILISTIC_UNRESTRICTED,
    PriorAssumption.POSSIBILISTIC_IGNORANT,
)


class TestFastPath:
    @pytest.mark.parametrize("assumption", POSSIBILISTIC)
    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_knob_never_changes_verdicts(self, registry, assumption, seed):
        log = build_mixed_density_log(registry, n_events=30, seed=seed)
        policy = make_policy(assumption)

        fast = IncrementalAuditor(registry, policy, fast_path=True)
        fast_report = fast.audit_log(log)
        slow = IncrementalAuditor(registry, policy, fast_path=False)
        slow_report = slow.audit_log(log)

        assert statuses(fast_report) == statuses(slow_report)
        for user in fast.states:
            assert (
                fast.cumulative_verdict(user).status
                is slow.cumulative_verdict(user).status
            ), user
        # The knob genuinely disables the shortcut.
        assert all(s.fast_path_hits == 0 for s in slow.states.values())

    @pytest.mark.parametrize("assumption", POSSIBILISTIC)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fast_path_fires_only_when_actually_preserving(
        self, registry, assumption, seed
    ):
        """Prop 3.10 property test: every fast-path verdict is backed by a
        composition that really is safe and K-preserving (checked directly
        against Definition 3.9 and the exact possibilistic decider)."""
        log = build_mixed_density_log(registry, n_events=30, seed=seed)
        policy = make_policy(assumption)
        auditor = IncrementalAuditor(registry, policy)
        auditor.audit_log(log)
        knowledge = explicit_possibilistic_knowledge(
            registry.space, assumption
        )
        assert knowledge is not None
        audited = auditor.engine.audited_set
        preserving_cache_clear()  # re-derive, don't trust the memo

        for user, state in auditor.states.items():
            events = [e for e in auditor._consumed if e.user == user]
            cumulative = registry.space.full
            for step, event in enumerate(events[: state.fast_path_hits], 1):
                disclosed = auditor.engine.compile_log(
                    DisclosureLog([event])
                )[0]
                cumulative = cumulative & disclosed
                assert is_preserving_possibilistic(knowledge, cumulative), (
                    user,
                    step,
                )
                assert safe_possibilistic(knowledge, audited, cumulative), (
                    user,
                    step,
                )

    def test_fast_path_verdict_carries_method_tag(self, registry):
        log = build_mixed_density_log(registry, n_events=30, seed=3)
        policy = make_policy(PriorAssumption.POSSIBILISTIC_UNRESTRICTED)
        auditor = IncrementalAuditor(registry, policy)
        auditor.audit_log(log)
        tagged = [
            user
            for user, state in auditor.states.items()
            if state.fast_path_hits
            and state.fast
            and auditor.cumulative_verdict(user).method == FAST_PATH_METHOD
        ]
        fired = [u for u, s in auditor.states.items() if s.fast_path_hits and s.fast]
        assert tagged == fired


class TestExplicitKnowledge:
    def test_subcubes_gated_by_pair_count(self):
        small = HypercubeSpace(3)
        assert (
            explicit_possibilistic_knowledge(
                small, PriorAssumption.POSSIBILISTIC_SUBCUBES
            )
            is not None
        )
        big = HypercubeSpace(8)  # 4^8 = 65536 pairs > the 4096 bound
        assert (
            explicit_possibilistic_knowledge(
                big, PriorAssumption.POSSIBILISTIC_SUBCUBES
            )
            is None
        )

    def test_unrestricted_gated_by_pair_count(self):
        assert (
            explicit_possibilistic_knowledge(
                HypercubeSpace(3), PriorAssumption.POSSIBILISTIC_UNRESTRICTED
            )
            is not None
        )
        assert (
            explicit_possibilistic_knowledge(
                HypercubeSpace(5), PriorAssumption.POSSIBILISTIC_UNRESTRICTED
            )
            is None
        )

    def test_non_possibilistic_families_have_no_fast_path(self):
        space = HypercubeSpace(3)
        for assumption in (
            PriorAssumption.PRODUCT,
            PriorAssumption.LOG_SUPERMODULAR,
            PriorAssumption.UNRESTRICTED,
        ):
            assert explicit_possibilistic_knowledge(space, assumption) is None

"""End-to-end tests for the offline (retroactive) auditor."""

from __future__ import annotations

import pytest

from repro.audit import (
    AuditPolicy,
    DisclosureLog,
    OfflineAuditor,
    PriorAssumption,
    render_report,
)
from repro.db import (
    CandidateUniverse,
    ColumnType,
    Database,
    TableSchema,
    parse_boolean_query,
)


@pytest.fixture
def hospital():
    db = Database()
    db.create_table(
        TableSchema.build("facts", patient=ColumnType.TEXT, kind=ColumnType.TEXT)
    )
    r1 = db.insert("facts", patient="Bob", kind="hiv_positive")
    r2 = db.insert("facts", patient="Bob", kind="transfusion")
    universe = CandidateUniverse(db, [r1, r2])
    return universe


A_TEXT = "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'hiv_positive')"
B_TEXT = (
    "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'hiv_positive') "
    "IMPLIES "
    "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'transfusion')"
)


def build_log():
    log = DisclosureLog()
    log.record(2005, "alice", parse_boolean_query(B_TEXT))
    log.record(2005, "cindy", parse_boolean_query(B_TEXT))
    log.record(2007, "mallory", parse_boolean_query(A_TEXT))
    return log


class TestDisclosureLog:
    def test_ordering_and_filtering(self):
        log = build_log()
        assert [e.user for e in log] == ["alice", "cindy", "mallory"]
        assert len(log.for_user("alice")) == 1
        assert len(log.before(2006)) == 2
        assert len(log.since(2006)) == 1
        assert log.users == ("alice", "cindy", "mallory")


class TestOfflineAuditor:
    @pytest.mark.parametrize(
        "assumption",
        [
            PriorAssumption.UNRESTRICTED,
            PriorAssumption.PRODUCT,
            PriorAssumption.LOG_SUPERMODULAR,
            PriorAssumption.POSSIBILISTIC_UNRESTRICTED,
            PriorAssumption.POSSIBILISTIC_SUBCUBES,
        ],
    )
    def test_mallory_flagged_alice_cleared(self, hospital, assumption):
        """The §1 story holds under EVERY prior-knowledge family: learning
        "HIV ⇒ transfusion" is safe, learning "HIV-positive" is not."""
        policy = AuditPolicy(
            audit_query=parse_boolean_query(A_TEXT), assumption=assumption
        )
        report = OfflineAuditor(hospital, policy).audit_log(build_log())
        assert report.suspicious_users == ("mallory",), assumption
        assert set(report.cleared_users) == {"alice", "cindy"}

    def test_unsafe_findings_carry_witnesses(self, hospital):
        policy = AuditPolicy(
            audit_query=parse_boolean_query(A_TEXT),
            assumption=PriorAssumption.PRODUCT,
        )
        report = OfflineAuditor(hospital, policy).audit_log(build_log())
        flagged = [f for f in report.findings if f.suspicious]
        assert flagged and all(f.verdict.witness is not None for f in flagged)

    def test_counts(self, hospital):
        policy = AuditPolicy(
            audit_query=parse_boolean_query(A_TEXT),
            assumption=PriorAssumption.UNRESTRICTED,
        )
        report = OfflineAuditor(hospital, policy).audit_log(build_log())
        assert report.counts() == {"safe": 2, "unsafe": 1, "unknown": 0}

    def test_cumulative_audit(self, hospital):
        """Two individually safe disclosures can be jointly unsafe (Rmk 4.2).

        Against an initially ignorant user (Σ = {Ω}),
        B₁ = "some record exists" and B₂ = "transfusion ⇒ HIV" are each
        safe (neither pins the knowledge inside A), but their conjunction
        is exactly A = "Bob is HIV-positive".
        """
        b1 = parse_boolean_query(
            "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'hiv_positive')"
            " OR "
            "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'transfusion')"
        )
        b2 = parse_boolean_query(
            "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'transfusion')"
            " IMPLIES "
            "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'hiv_positive')"
        )
        log = DisclosureLog()
        log.record(1, "eve", b1)
        log.record(2, "eve", b2)
        policy = AuditPolicy(
            audit_query=parse_boolean_query(A_TEXT),
            assumption=PriorAssumption.POSSIBILISTIC_IGNORANT,
        )
        auditor = OfflineAuditor(hospital, policy)
        report = auditor.audit_log(log)
        assert not any(f.suspicious for f in report.findings)  # individually safe
        cumulative = auditor.audit_user_cumulative(log, "eve")
        assert cumulative.suspicious

    def test_cumulative_requires_events(self, hospital):
        policy = AuditPolicy(audit_query=parse_boolean_query(A_TEXT))
        auditor = OfflineAuditor(hospital, policy)
        with pytest.raises(ValueError):
            auditor.audit_user_cumulative(DisclosureLog(), "nobody")

    def test_select_disclosure_audited(self, hospital):
        """A non-Boolean SELECT answer reveals exact record contents."""
        from repro.db import parse_select_query

        log = DisclosureLog()
        log.record(
            2007,
            "mallory",
            parse_select_query("SELECT kind FROM facts WHERE patient = 'Bob'"),
        )
        policy = AuditPolicy(
            audit_query=parse_boolean_query(A_TEXT),
            assumption=PriorAssumption.UNRESTRICTED,
        )
        report = OfflineAuditor(hospital, policy).audit_log(log)
        assert report.findings[0].suspicious


class TestReportRendering:
    def test_render_contains_key_facts(self, hospital):
        policy = AuditPolicy(
            audit_query=parse_boolean_query(A_TEXT),
            assumption=PriorAssumption.UNRESTRICTED,
            name="hiv-breach-2007",
        )
        report = OfflineAuditor(hospital, policy).audit_log(build_log())
        text = render_report(report)
        assert "hiv-breach-2007" in text
        assert "suspicion falls on: mallory" in text
        assert "cleared: alice, cindy" in text
        assert "[!!]" in text and "[ok]" in text

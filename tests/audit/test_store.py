"""Persistence, versioning and corruption tolerance of the verdict store.

The contract: a bad store is discarded, never a wrong verdict; writes are
atomic; failures are counted, not raised.
"""

from __future__ import annotations

import json

import pytest

from repro.audit.store import (
    STORE_FORMAT,
    STORE_VERSION,
    StoreStats,
    VerdictStore,
    _decode_key,
    _encode_key,
)
from repro.core.verdict import AuditVerdict, Verdict
from repro.runtime import faults

KEY = ("a" * 32, "b" * 32, "product", 1e-9)
KEY2 = ("a" * 32, "c" * 32, "product", 1e-9)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.uninstall()
    yield
    faults.uninstall()


def make_store(tmp_path, name="store.json", **kwargs):
    return VerdictStore(tmp_path / name, **kwargs)


class TestRoundTrip:
    def test_put_flush_reload(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        store.put(KEY2, AuditVerdict.unsafe("optimizer", gap=0.25))
        assert store.flush()

        reloaded = make_store(tmp_path)
        assert len(reloaded) == 2
        assert reloaded.stats.loaded == 2
        verdict = reloaded.get(KEY)
        assert verdict is not None and verdict.status is Verdict.SAFE
        verdict2 = reloaded.get(KEY2)
        assert verdict2 is not None and verdict2.status is Verdict.UNSAFE
        assert verdict2.details["gap"] == 0.25
        assert reloaded.stats.hits == 2

    def test_key_codec_roundtrip(self):
        assert _decode_key(_encode_key(KEY)) == KEY

    def test_missing_file_is_fresh_not_failure(self, tmp_path):
        store = make_store(tmp_path)
        assert len(store) == 0
        assert store.stats.load_failures == 0

    def test_unknown_verdicts_not_persisted(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.unknown("budget"))
        store.flush()
        assert len(store) == 0
        assert not store.path.exists()  # nothing dirty, nothing written

    def test_witness_and_certificate_dropped(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.unsafe("optimizer", witness=object()))
        assert store.flush()
        reloaded = make_store(tmp_path)
        verdict = reloaded.get(KEY)
        assert verdict.status is Verdict.UNSAFE
        assert verdict.witness is None

    def test_get_counts_misses(self, tmp_path):
        store = make_store(tmp_path)
        assert store.get(KEY) is None
        assert store.stats.misses == 1

    def test_read_only_never_writes(self, tmp_path):
        store = make_store(tmp_path, read_only=True)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        assert store.flush()
        assert not store.path.exists()


class TestCorruptionTolerance:
    @pytest.mark.parametrize(
        "content",
        [
            "",  # truncated to nothing
            "{not json",  # invalid JSON
            json.dumps([1, 2, 3]),  # not an object
            json.dumps({"format": "other", "version": STORE_VERSION, "entries": {}}),
            json.dumps({"format": STORE_FORMAT, "version": 99, "entries": {}}),
            json.dumps({"format": STORE_FORMAT, "version": STORE_VERSION}),
        ],
    )
    def test_bad_document_discarded_wholesale(self, tmp_path, content):
        path = tmp_path / "store.json"
        path.write_text(content)
        store = VerdictStore(path)
        assert len(store) == 0
        assert store.stats.load_failures == 1

    def test_malformed_entries_dropped_individually(self, tmp_path):
        path = tmp_path / "store.json"
        good = VerdictStore(path)
        good.put(KEY, AuditVerdict.safe("cancellation"))
        good.flush()
        document = json.loads(path.read_text())
        document["entries"]["not-a-key"] = {"status": "safe", "method": "x"}
        document["entries"][_encode_key(KEY2)] = {"status": "bogus", "method": "x"}
        path.write_text(json.dumps(document))

        store = VerdictStore(path)
        assert len(store) == 1
        assert store.stats.dropped_entries == 2
        assert store.stats.load_failures == 0
        assert store.get(KEY).status is Verdict.SAFE

    def test_corrupt_store_overwritten_by_next_flush(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text("garbage")
        store = VerdictStore(path)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        assert store.flush()
        assert VerdictStore(path).stats.loaded == 1


class TestWriteFailures:
    def test_injected_write_failure_counted_not_raised(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        with faults.inject({faults.STORE_WRITE: 1.0}):
            assert store.flush() is False
        assert store.stats.write_failures == 1
        assert not store.path.exists()
        # The entry is still live in memory and flushes once the fault lifts.
        assert store.flush()
        assert VerdictStore(store.path).stats.loaded == 1

    def test_failed_write_preserves_previous_generation(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        store.flush()
        store.put(KEY2, AuditVerdict.unsafe("optimizer"))
        with faults.inject({faults.STORE_WRITE: 1.0}):
            assert store.flush() is False
        assert VerdictStore(store.path).stats.loaded == 1  # old generation intact


class TestProbeMany:
    def test_probe_returns_only_found_and_counts(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        store.flush()
        reloaded = make_store(tmp_path)
        found = reloaded.probe_many([KEY, KEY2])
        assert set(found) == {KEY}
        assert found[KEY].status is Verdict.SAFE
        assert reloaded.stats.probes == 1
        assert reloaded.stats.hits == 1
        assert reloaded.stats.misses == 1

    def test_get_does_not_count_a_probe(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        assert store.get(KEY) is not None
        assert store.stats.probes == 0

    def test_unflushed_writes_visible(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        assert set(store.probe_many([KEY])) == {KEY}


class TestFlushDiscipline:
    def test_clean_flush_skipped_and_counted(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        assert store.flush()
        assert store.stats.flushes == 1
        before = store.path.stat().st_mtime_ns
        assert store.flush()  # nothing new: no rewrite
        assert store.stats.skipped_flushes == 1
        assert store.stats.flushes == 1
        assert store.path.stat().st_mtime_ns == before

    def test_dirty_after_new_put_flushes_again(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, AuditVerdict.safe("cancellation"))
        store.flush()
        store.put(KEY2, AuditVerdict.unsafe("optimizer"))
        assert store.flush()
        assert store.stats.flushes == 2

    def test_concurrent_generations_merge_on_flush(self, tmp_path):
        """Two store objects flushing to one path converge on the union."""
        path = tmp_path / "store.json"
        first = VerdictStore(path)
        second = VerdictStore(path)
        first.put(KEY, AuditVerdict.safe("cancellation"))
        second.put(KEY2, AuditVerdict.unsafe("optimizer"))
        assert first.flush()
        assert second.flush()
        reloaded = VerdictStore(path)
        assert len(reloaded) == 2
        assert reloaded.stats.load_failures == 0


class TestStats:
    def test_hit_rate_and_str(self):
        stats = StoreStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert "3 hits" in str(stats)
        assert "failures" not in str(stats)
        assert "failures" in str(StoreStats(load_failures=1))

    def test_as_dict_keys(self):
        d = StoreStats().as_dict()
        assert {"hits", "misses", "stored", "loaded", "load_failures"} <= set(d)

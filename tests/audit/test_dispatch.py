"""Tests for the engine's pool economics: chunked dispatch, slim payloads,
the cross-event tensor cache, and the break-even report.

Chunking must change only the *cost* of the fan-out, never its results:
verdicts stay bit-identical to the serial engine, and the PR-3 resilience
semantics (per-task fault probes, partial-chunk submission, serial
recovery) keep their guarantees — those are covered by the chaos matrix in
``tests/runtime/test_faults.py``; here we pin the economics themselves.
"""

from __future__ import annotations

import math

import pytest

from repro.audit import AuditPolicy, BatchAuditEngine, PriorAssumption
from repro.audit.engine import (
    DEFAULT_CHUNK_SIZE,
    DispatchStats,
    _SlimTask,
    _TaskContext,
)
from repro.db import parse_boolean_query
from repro.perf.bench import build_mixed_density_log, build_registry

AUDIT_TEXT = (
    "EXISTS(SELECT * FROM diagnoses WHERE patient = 'Bob' AND disease = 'hiv')"
)


def make_policy(assumption=PriorAssumption.PRODUCT, name="dispatch-test"):
    return AuditPolicy(
        audit_query=parse_boolean_query(AUDIT_TEXT),
        assumption=assumption,
        name=name,
    )


def make_workload(n_events=40, seed=11):
    universe = build_registry(background_rows=16)
    return universe, build_mixed_density_log(universe, n_events=n_events, seed=seed)


class TestChunkedDispatch:
    def test_chunked_pool_matches_serial_verdicts(self):
        universe, log = make_workload()
        serial = BatchAuditEngine(universe, make_policy(), n_workers=1)
        serial_report = serial.audit_log(log)
        chunked = BatchAuditEngine(
            universe, make_policy(), n_workers=2, parallel_threshold=0
        )
        chunked_report = chunked.audit_log(log)
        assert chunked.pool_engaged
        for ours, theirs in zip(chunked_report.findings, serial_report.findings):
            assert ours.verdict.status is theirs.verdict.status
            assert ours.verdict.method == theirs.verdict.method

    def test_tasks_ship_in_chunks_not_singly(self):
        universe, log = make_workload()
        engine = BatchAuditEngine(
            universe, make_policy(), n_workers=2, parallel_threshold=0
        )
        engine.audit_log(log)
        stats = engine.dispatch_stats
        assert stats.tasks_shipped == engine.cache.misses
        # Fewer futures than tasks: the whole point of chunking.
        assert 0 < stats.chunks_shipped < stats.tasks_shipped
        assert stats.rounds == 1
        assert stats.last_chunk_size is not None and stats.last_chunk_size > 1

    def test_explicit_chunk_size_one_degenerates_to_per_task(self):
        universe, log = make_workload(n_events=20)
        engine = BatchAuditEngine(
            universe, make_policy(), n_workers=2, parallel_threshold=0, chunk_size=1
        )
        engine.audit_log(log)
        stats = engine.dispatch_stats
        assert stats.chunks_shipped == stats.tasks_shipped == engine.cache.misses

    def test_fair_share_caps_the_chunk(self):
        universe, log = make_workload()
        engine = BatchAuditEngine(
            universe, make_policy(), n_workers=2, parallel_threshold=0
        )
        pending = engine.cache.misses or 10
        # With no cost measurements the cap is DEFAULT_CHUNK_SIZE, further
        # capped so both workers receive work.
        cap = engine._chunk_cap(pending_count=10, workers=2)
        assert cap == min(DEFAULT_CHUNK_SIZE, math.ceil(10 / 2))
        assert engine._chunk_cap(pending_count=1000, workers=2) == DEFAULT_CHUNK_SIZE

    def test_adaptive_chunk_tracks_measured_cost(self):
        universe, _ = make_workload()
        engine = BatchAuditEngine(
            universe, make_policy(), n_workers=2, parallel_threshold=0
        )
        # Expensive tasks (100ms each): chunks shrink toward the 0.25s target.
        engine.dispatch_stats.task_cost_ewma = 0.1
        assert engine._chunk_cap(pending_count=1000, workers=2) == 2
        # Cheap tasks (0.1ms): chunks grow, bounded by MAX_CHUNK_SIZE.
        engine.dispatch_stats.task_cost_ewma = 1e-4
        assert engine._chunk_cap(pending_count=10_000, workers=2) == 512


class TestSlimPayloads:
    def test_context_rebuilds_the_full_task(self):
        universe, log = make_workload(n_events=10)
        engine = BatchAuditEngine(universe, make_policy(), decision_budget=2.0)
        sets = engine.compile_log(log)
        context = engine._task_context()
        slim = _SlimTask(disclosed=sets[0], tensor=None, pinned=True)
        task = context.rebuild(slim)
        assert task.audited is engine.audited_set
        assert task.disclosed is sets[0]
        assert task.pinned
        assert task.budget_seconds == 2.0
        assert task.assumption_value == PriorAssumption.PRODUCT.value

    def test_context_is_batch_constant(self):
        universe, _ = make_workload(n_events=5)
        engine = BatchAuditEngine(universe, make_policy())
        assert isinstance(engine._task_context(), _TaskContext)
        assert engine._task_context() == engine._task_context()


class TestBreakEven:
    def test_no_data_reports_none(self):
        universe, _ = make_workload(n_events=5)
        engine = BatchAuditEngine(universe, make_policy(), n_workers=2)
        assert engine.pool_break_even() is None

    def test_single_worker_reports_none(self):
        stats = DispatchStats(task_cost_ewma=0.01, tasks_shipped=10, submit_seconds=0.1)
        universe, _ = make_workload(n_events=5)
        engine = BatchAuditEngine(universe, make_policy(), n_workers=1)
        engine.dispatch_stats = stats
        assert engine.pool_break_even() is None

    def test_overhead_dominated_pool_never_pays(self):
        universe, _ = make_workload(n_events=5)
        engine = BatchAuditEngine(universe, make_policy(), n_workers=2)
        engine.dispatch_stats = DispatchStats(
            tasks_shipped=100,
            submit_seconds=1.0,  # 10ms dispatch overhead per task...
            rounds=1,
            pool_setup_seconds=0.1,
            task_cost_ewma=0.001,  # ...on 1ms tasks: the pool never wins.
        )
        assert engine.pool_break_even() == math.inf

    def test_break_even_solves_the_cost_model(self):
        universe, _ = make_workload(n_events=5)
        engine = BatchAuditEngine(universe, make_policy(), n_workers=2)
        engine.dispatch_stats = DispatchStats(
            tasks_shipped=100,
            submit_seconds=0.01,  # d = 0.1ms
            rounds=1,
            pool_setup_seconds=0.2,  # s = 0.2s
            task_cost_ewma=0.01,  # c = 10ms, w = 2
        )
        expected = 0.2 / (0.01 * 0.5 - 0.0001)
        assert engine.pool_break_even() == pytest.approx(expected)

    def test_pool_run_produces_measurements(self):
        universe, log = make_workload()
        engine = BatchAuditEngine(
            universe, make_policy(), n_workers=2, parallel_threshold=0
        )
        engine.audit_log(log)
        stats = engine.dispatch_stats
        assert stats.task_cost_ewma is not None and stats.task_cost_ewma > 0
        assert stats.per_task_overhead() is not None
        assert stats.pool_setup_cost() is not None
        break_even = engine.pool_break_even()
        assert break_even is None or break_even > 0  # inf allowed: 1-core box
        as_dict = stats.as_dict()
        assert as_dict["tasks_shipped"] == stats.tasks_shipped
        assert as_dict["per_task_overhead"] == stats.per_task_overhead()


class TestTensorCacheSharing:
    def test_duplicate_heavy_log_hits_the_tensor_cache(self):
        universe, log = make_workload()
        engine = BatchAuditEngine(universe, make_policy())
        engine.audit_log(log)
        # Unique pairs each built exactly one tensor; duplicates were
        # deduped upstream by the verdict cache.
        assert engine.tensor_cache.misses == engine.cache.misses
        before = engine.tensor_cache.misses
        # A fresh engine sharing the verdict cache would re-decide nothing;
        # force re-decisions by clearing verdicts — tensors must survive.
        engine.cache.clear()
        engine.audit_log(log)
        assert engine.tensor_cache.misses == before
        assert engine.tensor_cache.hits > 0

    def test_ablation_shares_one_tensor_cache(self):
        universe, log = make_workload(n_events=20)
        engine = BatchAuditEngine(universe, make_policy())
        reports = engine.audit_ablation(
            log, [PriorAssumption.PRODUCT, PriorAssumption.UNRESTRICTED]
        )
        assert set(reports) == {
            PriorAssumption.PRODUCT,
            PriorAssumption.UNRESTRICTED,
        }
        # precompute_tensors + the product run share entries; the
        # unrestricted family never touches tensors.
        assert len(engine.tensor_cache) == engine.tensor_cache.misses > 0

    def test_non_product_assumption_skips_tensors(self):
        universe, log = make_workload(n_events=10)
        engine = BatchAuditEngine(
            universe, make_policy(assumption=PriorAssumption.UNRESTRICTED)
        )
        engine.audit_log(log)
        assert len(engine.tensor_cache) == 0

"""Tests for the probabilistic online observer (strategy-aware Bayesian Alice)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import (
    AlwaysDenyStrategy,
    CoinFlipStrategy,
    TruthfulDenialStrategy,
    simulate_bayesian,
)

TIMELINE = [False, False, False, True, True, True]


class TestTruthfulDenialBayesian:
    def test_posterior_jumps_to_one_at_first_denial(self):
        result = simulate_bayesian(TruthfulDenialStrategy(), TIMELINE)
        assert result.certainty_time == 3
        assert result.steps[2].posterior_positive == pytest.approx(0.0)
        assert result.steps[3].posterior_positive == pytest.approx(1.0)

    def test_negative_answers_drive_posterior_down(self):
        result = simulate_bayesian(TruthfulDenialStrategy(), [False] * 4)
        posteriors = [s.posterior_positive for s in result.steps]
        assert all(p == pytest.approx(0.0) for p in posteriors)


class TestAlwaysDenyBayesian:
    def test_posterior_never_exceeds_time_conditional_prior(self):
        """Denials carry no information: the posterior equals the prior mass
        of 'converted by now', which grows only with the calendar."""
        result = simulate_bayesian(AlwaysDenyStrategy(), TIMELINE, prior_never=0.5)
        horizon = len(TIMELINE)
        for step in result.steps:
            expected = 0.5 * (step.time + 1) / horizon
            assert step.posterior_positive == pytest.approx(expected, abs=1e-12)

    def test_never_certain(self):
        result = simulate_bayesian(AlwaysDenyStrategy(), TIMELINE)
        assert result.certainty_time is None


class TestCoinFlipBayesian:
    @pytest.mark.parametrize("seed", range(6))
    def test_posterior_bounded_away_from_one(self, seed):
        """Footnote 1 quantified: denials raise suspicion but never reach
        knowledge, because 'never converted' stays consistent."""
        result = simulate_bayesian(CoinFlipStrategy(), TIMELINE, seed=seed)
        assert result.certainty_time is None
        assert result.peak_posterior < 1.0

    def test_denials_increase_posterior(self):
        """Once Bob is positive, every denial nudges Alice's posterior up."""
        result = simulate_bayesian(CoinFlipStrategy(0.5), TIMELINE, seed=1)
        tail = [s.posterior_positive for s in result.steps[3:]]
        assert all(b >= a - 1e-12 for a, b in zip(tail, tail[1:]))

    def test_negative_answer_resets_suspicion(self):
        """A "negative" answer proves non-conversion up to now."""
        result = simulate_bayesian(CoinFlipStrategy(0.9), [False, False], seed=0)
        for step in result.steps:
            if step.answer.value == "I am HIV-negative":
                assert step.posterior_positive == pytest.approx(0.0, abs=1e-12)

    def test_biased_coin_leaks_faster(self):
        """The more often Bob answers when negative, the more a denial says.

        Averaged over seeds, a heads-heavy coin yields a higher peak
        posterior than a tails-heavy one.
        """
        def mean_peak(p_heads):
            peaks = [
                simulate_bayesian(
                    CoinFlipStrategy(p_heads), TIMELINE, seed=s
                ).peak_posterior
                for s in range(30)
            ]
            return float(np.mean(peaks))

        assert mean_peak(0.9) > mean_peak(0.1)


class TestPriorSensitivity:
    def test_prior_never_one_means_no_suspicion_from_denials(self):
        result = simulate_bayesian(
            AlwaysDenyStrategy(), TIMELINE, prior_never=1.0 - 1e-9
        )
        assert result.peak_posterior < 1e-6

    def test_posteriors_are_probabilities(self):
        for seed in range(5):
            result = simulate_bayesian(CoinFlipStrategy(), TIMELINE, seed=seed)
            for step in result.steps:
                assert 0.0 <= step.posterior_positive <= 1.0

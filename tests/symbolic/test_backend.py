"""Backend selection and end-to-end engine integration for symbolic decisions.

The selection contract mirrors the native-kernel switch: ``REPRO_SYMBOLIC``
(off / auto / require) picks the process-wide engine, ``decision_backend``
on the audit engines picks per-run, and every shortfall — backend off,
unsupported family — degrades to the mask path *with the degradation
counted*, never silently and never with a changed verdict.
"""

from __future__ import annotations

import time

import pytest

from repro.audit import (
    AuditPolicy,
    BatchAuditEngine,
    DisclosureLog,
    OfflineAuditor,
    PriorAssumption,
)
from repro.audit.engine import DECISION_BACKENDS
from repro.audit.report import render_report
from repro.db import CandidateUniverse, ColumnType, Database, TableSchema
from repro.db.query import AtLeast, ColumnCompare, Comparison, Exists, column_eq
from repro.symbolic import ENV_SYMBOLIC, MODES, configure, enabled

if not enabled():
    pytest.skip(
        "symbolic backend disabled (REPRO_SYMBOLIC=off)",
        allow_module_level=True,
    )

from repro.runtime import Budget
from repro.symbolic import (
    SymbolicPair,
    SymbolicUniverse,
    audit_symbolic,
    backend_name,
    engine as active_engine,
)
from repro.symbolic.decide import SUBCUBES


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-wide backend as the environment set it."""
    yield
    configure()


def build_db(n: int = 6):
    db = Database()
    db.create_table(TableSchema("t", (("v", ColumnType.INTEGER),)))
    records = [db.insert("t", v=i) for i in range(n // 2)]
    records += [db.hypothetical_record("t", v=i) for i in range(n // 2, n)]
    return db, records


def build_scenario(n: int = 6):
    db, records = build_db(n)
    universe = CandidateUniverse(db, records)
    policy = AuditPolicy(
        audit_query=Exists("t", column_eq("v", 0)),
        assumption=PriorAssumption.POSSIBILISTIC_SUBCUBES,
        name="symbolic-backend-test",
    )
    log = DisclosureLog()
    log.record(1, "alice", AtLeast("t", ColumnCompare("v", Comparison.LE, 3), 2))
    log.record(2, "bob", Exists("t", column_eq("v", 1)))
    log.record(3, "carol", AtLeast("t", ColumnCompare("v", Comparison.LE, 5), 3))
    return universe, policy, log


def statuses(report):
    return [finding.verdict.status for finding in report.findings]


class TestBackendSelection:
    def test_mode_validation(self):
        assert MODES == ("auto", "off", "require")
        with pytest.raises(ValueError):
            configure("bogus")

    def test_off_mode_disables(self):
        configure("off")
        assert active_engine() is None
        assert backend_name() == "off"

    def test_auto_loads_an_engine(self):
        backend = configure("auto")
        assert backend.engine is not None
        assert backend.name.startswith("symbolic-")

    def test_invalid_decision_backend_rejected(self):
        universe, policy, _ = build_scenario()
        assert DECISION_BACKENDS == ("auto", "mask", "symbolic")
        with pytest.raises(ValueError):
            BatchAuditEngine(universe, policy, decision_backend="bogus")


class TestEngineIntegration:
    def test_symbolic_verdicts_identical_to_mask(self):
        universe, policy, log = build_scenario()
        mask = BatchAuditEngine(universe, policy, decision_backend="mask")
        mask_report = mask.audit_log(log)
        sym = BatchAuditEngine(universe, policy, decision_backend="symbolic")
        sym_report = sym.audit_log(log)

        assert statuses(sym_report) == statuses(mask_report)
        assert mask_report.backend_counts == {"mask": len(log)}
        assert set(sym_report.backend_counts) == {backend_name()}
        assert sym_report.runtime_stats.decision_backend == "symbolic"
        assert mask_report.runtime_stats.decision_backend == "mask"
        assert sym_report.runtime_stats.symbolic_degraded == 0

    def test_off_degrades_to_mask_counted(self):
        universe, policy, log = build_scenario()
        mask_statuses = statuses(
            BatchAuditEngine(
                universe, policy, decision_backend="mask"
            ).audit_log(log)
        )
        configure("off")
        engine = BatchAuditEngine(universe, policy, decision_backend="symbolic")
        report = engine.audit_log(log)

        assert statuses(report) == mask_statuses  # never a changed verdict
        assert report.backend_counts == {"mask": len(log)}
        assert report.runtime_stats.symbolic_degraded == len(log)
        for finding in report.findings:
            assert "symbolic-unavailable:mask" in finding.outcome.degradation

    def test_auto_follows_require_env(self, monkeypatch):
        monkeypatch.setenv(ENV_SYMBOLIC, "require")
        configure()
        universe, policy, log = build_scenario()
        report = BatchAuditEngine(
            universe, policy, decision_backend="auto"
        ).audit_log(log)
        assert set(report.backend_counts) == {backend_name()}
        assert next(iter(report.backend_counts)).startswith("symbolic-")

    def test_auto_defaults_to_mask(self, monkeypatch):
        monkeypatch.delenv(ENV_SYMBOLIC, raising=False)
        configure()
        universe, policy, log = build_scenario()
        report = BatchAuditEngine(
            universe, policy, decision_backend="auto"
        ).audit_log(log)
        assert report.backend_counts == {"mask": len(log)}

    def test_report_renders_backend_footer(self):
        universe, policy, log = build_scenario()
        report = BatchAuditEngine(
            universe, policy, decision_backend="symbolic"
        ).audit_log(log)
        text = render_report(report)
        assert "decision backend: symbolic" in text
        assert f"decisions: {backend_name()}: {len(log)}" in text

    def test_incremental_symbolic_matches_mask(self):
        universe, policy, log = build_scenario()
        mask_report = OfflineAuditor(
            universe, policy, decision_backend="mask"
        ).audit_log_incremental(log)
        sym_report = OfflineAuditor(
            universe, policy, decision_backend="symbolic"
        ).audit_log_incremental(log)
        assert statuses(sym_report) == statuses(mask_report)
        assert set(sym_report.backend_counts) <= {backend_name(), "mask"}
        assert backend_name() in sym_report.backend_counts

    def test_ablation_shares_formula_cache(self):
        universe, policy, log = build_scenario()
        engine = BatchAuditEngine(universe, policy, decision_backend="symbolic")
        assumptions = [
            PriorAssumption.POSSIBILISTIC_SUBCUBES,
            PriorAssumption.POSSIBILISTIC_IGNORANT,
        ]
        reports = engine.audit_ablation(log, assumptions)
        assert set(reports) == set(assumptions)
        for report in reports.values():
            assert all(s.value in ("safe", "unsafe") for s in statuses(report))
        # Each sibling reused the parent's lowering: one formula per
        # distinct disclosure query, not one per (sibling, query).
        assert len(engine._formulas) == len(log)


class TestBigN:
    def test_n32_decision_under_budget(self):
        """The acceptance regime: n = 32 decided where masks cannot exist."""
        n = 32
        db, records = build_db(n)
        universe = SymbolicUniverse(db, records)
        pair = SymbolicPair(
            universe.lower_boolean(Exists("t", column_eq("v", 0))),
            universe.lower_answer(
                AtLeast("t", ColumnCompare("v", Comparison.LE, 5), 3)
            ),
            n,
        )
        start = time.perf_counter()
        verdict = audit_symbolic(SUBCUBES, pair, budget=Budget(10.0))
        elapsed = time.perf_counter() - start
        assert verdict.is_decided, verdict
        assert elapsed < 10.0
        assert verdict.details["backend"].startswith("symbolic-")

"""Query lowering round-trips: formulas vs the mask compiler, world by world.

Two layers of equivalence:

* **db layer** — ``CandidateUniverse.lower_boolean`` / ``lower_answer`` must
  agree with ``compile_boolean`` / ``compile_answer`` on *every* world of
  seeded random database scenarios (the property the engine's formula cache
  relies on when it attaches symbolic pairs to decision tasks).
* **formula layer** — hypothesis-generated formulas round-trip through the
  Tseitin CNF encoding: a SAT model satisfies the source formula, UNSAT means
  no world does, and fingerprints are stable under structural rebuilds.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import CandidateUniverse, ColumnType, Database, TableSchema
from repro.db.query import (
    AtLeast,
    ColumnCompare,
    Comparison,
    Exists,
    Implies,
    Not,
    Or,
    RowNot,
    RowOr,
    Select,
    column_eq,
)
from repro.exceptions import SymbolicLoweringError
from repro.symbolic import enabled

if not enabled():
    pytest.skip(
        "symbolic backend disabled (REPRO_SYMBOLIC=off)",
        allow_module_level=True,
    )

from repro.symbolic import (
    and_f,
    at_least,
    eval_formula,
    fingerprint,
    not_f,
    or_f,
    to_cnf,
)
from repro.symbolic.formula import AndF, AtLeastF, ConstF, NotF, OrF, Var, var
from repro.symbolic.sat import solve_cnf


def build_universe(rng: random.Random, n: int) -> CandidateUniverse:
    """``n`` candidates over one integer-valued table, presence mixed."""
    db = Database()
    db.create_table(TableSchema("t", (("v", ColumnType.INTEGER),)))
    records = [
        db.insert("t", v=i) if rng.random() < 0.5 else db.hypothetical_record("t", v=i)
        for i in range(n)
    ]
    return CandidateUniverse(db, records)


def random_predicate(rng: random.Random, n: int, depth: int = 2):
    if depth == 0 or rng.random() < 0.5:
        if rng.random() < 0.5:
            return column_eq("v", rng.randrange(n))
        op = rng.choice(list(Comparison))
        return ColumnCompare("v", op, rng.randrange(n))
    if rng.random() < 0.5:
        return RowNot(random_predicate(rng, n, depth - 1))
    return RowOr(
        random_predicate(rng, n, depth - 1), random_predicate(rng, n, depth - 1)
    )


def random_query(rng: random.Random, n: int, depth: int = 2):
    if depth == 0 or rng.random() < 0.4:
        pred = random_predicate(rng, n)
        if rng.random() < 0.5:
            return Exists("t", pred)
        return AtLeast("t", pred, rng.randrange(1, max(2, n // 2)))
    choice = rng.randrange(3)
    if choice == 0:
        return Not(random_query(rng, n, depth - 1))
    cls = Or if choice == 1 else Implies
    return cls(random_query(rng, n, depth - 1), random_query(rng, n, depth - 1))


class TestDbLowering:
    """lower_* vs compile_* on seeded random scenarios, all worlds."""

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_lower_boolean_matches_compile_boolean(self, n):
        rng = random.Random(100 + n)
        universe = build_universe(rng, n)
        for _ in range(40):
            query = random_query(rng, n)
            mask = universe.compile_boolean(query).mask
            formula = universe.lower_boolean(query)
            for world in range(1 << n):
                assert eval_formula(formula, world) == bool(
                    (mask >> world) & 1
                ), (query, world)

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_lower_answer_matches_compile_answer(self, n):
        rng = random.Random(200 + n)
        universe = build_universe(rng, n)
        for _ in range(30):
            query = random_query(rng, n)
            mask = universe.compile_answer(query).mask
            formula = universe.lower_answer(query)
            for world in range(1 << n):
                assert eval_formula(formula, world) == bool(
                    (mask >> world) & 1
                ), (query, world)

    @pytest.mark.parametrize("n", [3, 5])
    def test_lower_answer_select_matches(self, n):
        rng = random.Random(300 + n)
        universe = build_universe(rng, n)
        for _ in range(25):
            query = Select("t", random_predicate(rng, n), ("v",))
            mask = universe.compile_answer(query).mask
            formula = universe.lower_answer(query)
            for world in range(1 << n):
                assert eval_formula(formula, world) == bool(
                    (mask >> world) & 1
                ), (query, world)

    def test_opaque_query_raises_lowering_error(self):
        universe = build_universe(random.Random(0), 3)

        class Opaque:
            def evaluate(self, view):  # pragma: no cover - never called
                return True

        with pytest.raises(SymbolicLoweringError):
            universe.lower_answer(Opaque())


# -- formula layer: hypothesis round-trips ---------------------------------------

N_VARS = 4


def formulas(n: int = N_VARS):
    leaves = st.one_of(
        st.integers(min_value=1, max_value=n).map(var),
        st.booleans().map(lambda b: ConstF(b)),
    )

    def extend(children):
        return st.one_of(
            children.map(not_f),
            st.lists(children, min_size=2, max_size=3).map(lambda fs: and_f(*fs)),
            st.lists(children, min_size=2, max_size=3).map(lambda fs: or_f(*fs)),
            st.tuples(
                st.lists(children, min_size=2, max_size=3),
                st.integers(min_value=0, max_value=4),
            ).map(lambda pair: at_least(pair[0], pair[1])),
        )

    return st.recursive(leaves, extend, max_leaves=12)


@settings(max_examples=120, deadline=None)
@given(formulas())
def test_cnf_round_trip(formula):
    """SAT ⟹ the model satisfies the formula; UNSAT ⟹ no world does."""
    clauses, total_vars = to_cnf(formula, N_VARS)
    status, model = solve_cnf(clauses, total_vars)
    truth_table = [
        eval_formula(formula, world) for world in range(1 << N_VARS)
    ]
    if status == "sat":
        assert eval_formula(formula, model & ((1 << N_VARS) - 1))
        assert any(truth_table)
    else:
        assert status == "unsat"
        assert not any(truth_table)


def test_cnf_two_cardinality_atoms_regression():
    """Two cardinality atoms in one encoding must not share Tseitin literals.

    Each ``AtLeastF`` is Tseitin-encoded through a throwaway expansion DAG;
    with an id-keyed memo that did not pin its nodes, the second atom's
    freshly allocated nodes could reuse the first expansion's ids and
    inherit its literals, yielding a CNF that admits non-models
    (hypothesis-discovered).
    """
    formula = not_f(
        or_f(
            not_f(AtLeastF((Var(2), Var(2), Var(3)), 2)),
            not_f(AtLeastF((Var(3), Var(2), Var(3)), 2)),
        )
    )
    clauses, total_vars = to_cnf(formula, N_VARS)

    def satisfies(model: int) -> bool:
        return all(
            any(
                ((model >> (abs(l) - 1)) & 1) == (1 if l > 0 else 0)
                for l in clause
            )
            for clause in clauses
        )

    projected = {
        model & ((1 << N_VARS) - 1)
        for model in range(1 << total_vars)
        if satisfies(model)
    }
    truth = {w for w in range(1 << N_VARS) if eval_formula(formula, w)}
    assert projected == truth
    status, model = solve_cnf(clauses, total_vars)
    assert status == "sat"
    assert eval_formula(formula, model & ((1 << N_VARS) - 1))


@settings(max_examples=80, deadline=None)
@given(formulas())
def test_fingerprint_stable_under_rebuild(formula):
    """Structurally equal formulas fingerprint identically."""

    def rebuild(f):
        if isinstance(f, (ConstF, Var)):
            return f
        if isinstance(f, NotF):
            return NotF(rebuild(f.inner))
        if isinstance(f, AndF):
            return AndF(tuple(rebuild(g) for g in f.args))
        if isinstance(f, OrF):
            return OrF(tuple(rebuild(g) for g in f.args))
        assert isinstance(f, AtLeastF)
        return AtLeastF(tuple(rebuild(g) for g in f.args), f.threshold)

    assert fingerprint(rebuild(formula)) == fingerprint(formula)

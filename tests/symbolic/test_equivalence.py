"""Randomized mask-vs-symbolic equivalence: the backends must agree.

The contract under test is Prop 4.5 / Definition 3.9 equivalence: for every
supported possibilistic family, :func:`repro.symbolic.decide_safe` on the
lowered ``(A, B)`` formulas returns the *same status* as the mask auditor on
the corresponding property sets — on seeded random instances, at every small
dimension where the mask oracle is feasible.  UNKNOWNs only ever arise from
budget exhaustion and carry the typed ``solver-timeout`` provenance, never a
decided-but-different verdict.
"""

from __future__ import annotations

import random

import pytest

from repro.audit import PriorAssumption, make_decider
from repro.core.knowledge import PossibilisticKnowledge
from repro.core.preserving import is_preserving_possibilistic
from repro.core.worlds import HypercubeSpace
from repro.possibilistic.families import SubcubeFamily
from repro.runtime import Budget
from repro.symbolic import enabled

if not enabled():
    pytest.skip(
        "symbolic backend disabled (REPRO_SYMBOLIC=off)",
        allow_module_level=True,
    )

from repro.symbolic import (
    SymbolicPair,
    and_f,
    at_least,
    decide_safe,
    eval_formula,
    not_f,
    or_f,
    preserving_symbolic,
)
from repro.symbolic.decide import (
    IGNORANT,
    METHOD_TIMEOUT,
    SUBCUBES,
    SUPPORTED,
    UNRESTRICTED,
)
from repro.symbolic.formula import const, var

FAMILIES = {
    SUBCUBES: PriorAssumption.POSSIBILISTIC_SUBCUBES,
    UNRESTRICTED: PriorAssumption.POSSIBILISTIC_UNRESTRICTED,
    IGNORANT: PriorAssumption.POSSIBILISTIC_IGNORANT,
}


def random_formula(rng: random.Random, n: int, depth: int = 3):
    """A depth-bounded random formula over variables ``1..n``."""
    if depth == 0 or rng.random() < 0.3:
        if rng.random() < 0.08:
            return const(rng.random() < 0.5)
        return var(rng.randrange(n) + 1)
    choice = rng.randrange(4)
    if choice == 0:
        return not_f(random_formula(rng, n, depth - 1))
    if choice == 3 and n >= 2:
        width = rng.randrange(2, min(n, 4) + 1)
        picks = [var(i + 1) for i in rng.sample(range(n), width)]
        return at_least(picks, rng.randrange(1, width + 1))
    args = [
        random_formula(rng, n, depth - 1) for _ in range(rng.randrange(2, 4))
    ]
    return and_f(*args) if choice == 1 else or_f(*args)


def as_property_set(space: HypercubeSpace, formula):
    return space.where(lambda w: eval_formula(formula, w))


class TestDecideSafeEquivalence:
    """decide_safe vs the mask auditor on seeded random (A, B) pairs."""

    @pytest.mark.parametrize("assumption_value", SUPPORTED)
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_statuses_identical(self, assumption_value, n):
        rng = random.Random(1000 * n + len(assumption_value))
        space = HypercubeSpace(n)
        decider = make_decider(space, FAMILIES[assumption_value])
        budget = Budget(30.0)
        for trial in range(25):
            f_a = random_formula(rng, n)
            f_b = random_formula(rng, n)
            mask_verdict = decider(
                as_property_set(space, f_a), as_property_set(space, f_b)
            )
            sym = decide_safe(
                assumption_value, SymbolicPair(f_a, f_b, n), budget=budget
            )
            assert sym is not None
            assert sym.is_decided, (assumption_value, n, trial, sym)
            assert sym.status is mask_verdict.status, (
                assumption_value,
                n,
                trial,
                f_a,
                f_b,
                sym,
                mask_verdict,
            )
            assert sym.details["backend"].startswith("symbolic-")

    def test_larger_dimension_spot_check(self):
        """One bigger subcube instance per status against the mask oracle."""
        n = 6
        rng = random.Random(77)
        space = HypercubeSpace(n)
        decider = make_decider(space, FAMILIES[SUBCUBES])
        seen = set()
        for _ in range(40):
            f_a = random_formula(rng, n)
            f_b = random_formula(rng, n)
            mask_verdict = decider(
                as_property_set(space, f_a), as_property_set(space, f_b)
            )
            sym = decide_safe(SUBCUBES, SymbolicPair(f_a, f_b, n))
            assert sym.status is mask_verdict.status
            seen.add(mask_verdict.status)
        assert len(seen) == 2  # the seed exercises both safe and unsafe

    def test_n10_both_backends_agree(self):
        """The top of the mask-feasible range: one seeded pair per family."""
        n = 10
        rng = random.Random(12)
        space = HypercubeSpace(n)
        for assumption_value in (SUBCUBES, UNRESTRICTED):
            decider = make_decider(space, FAMILIES[assumption_value])
            f_a = random_formula(rng, n)
            f_b = random_formula(rng, n)
            mask_verdict = decider(
                as_property_set(space, f_a), as_property_set(space, f_b)
            )
            sym = decide_safe(assumption_value, SymbolicPair(f_a, f_b, n))
            assert sym.status is mask_verdict.status, assumption_value


class TestPreservingEquivalence:
    """preserving_symbolic vs Definition 3.9 on explicit knowledge sets."""

    def test_ignorant(self):
        n = 4
        rng = random.Random(5)
        space = HypercubeSpace(n)
        knowledge = PossibilisticKnowledge.product(space.full, [space.full])
        for _ in range(30):
            f_b = random_formula(rng, n)
            reference = is_preserving_possibilistic(
                knowledge, as_property_set(space, f_b)
            )
            assert preserving_symbolic(IGNORANT, f_b, n) is reference

    def test_subcubes(self):
        n = 4
        rng = random.Random(6)
        space = HypercubeSpace(n)
        knowledge = PossibilisticKnowledge.product(
            space.full, list(SubcubeFamily(space))
        )
        hits = set()
        for _ in range(40):
            f_b = random_formula(rng, n)
            reference = is_preserving_possibilistic(
                knowledge, as_property_set(space, f_b)
            )
            assert preserving_symbolic(SUBCUBES, f_b, n) is reference
            hits.add(reference)
        assert hits == {True, False}  # both outcomes exercised

    def test_unrestricted(self):
        n = 3
        rng = random.Random(7)
        space = HypercubeSpace(n)
        knowledge = PossibilisticKnowledge.full(space)
        for _ in range(15):
            f_b = random_formula(rng, n)
            reference = is_preserving_possibilistic(
                knowledge, as_property_set(space, f_b)
            )
            assert reference is True  # Ω_poss preserves every B
            assert preserving_symbolic(UNRESTRICTED, f_b, n) is True


class TestUnknownProvenance:
    """Budget exhaustion yields a typed UNKNOWN, never a wrong verdict."""

    def test_exhausted_budget_is_solver_timeout(self):
        n = 4
        pair = SymbolicPair(var(1), and_f(var(2), not_f(var(1))), n)
        verdict = decide_safe(SUBCUBES, pair, budget=Budget(0.0))
        assert verdict is not None
        assert not verdict.is_decided
        assert verdict.method == METHOD_TIMEOUT
        assert verdict.details["backend"].startswith("symbolic-")

    def test_unsupported_family_returns_none(self):
        pair = SymbolicPair(var(1), var(2), 2)
        assert decide_safe("product", pair) is None
        assert preserving_symbolic("product", var(1), 2) is None

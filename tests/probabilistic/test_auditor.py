"""End-to-end tests for the probabilistic auditing pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Distribution,
    HypercubeSpace,
    Verdict,
    WorldSpace,
    safe_unrestricted,
    safety_gap,
)
from repro.probabilistic import (
    LogSupermodularFamily,
    ProbabilisticAuditor,
    SupermodularAuditor,
    audit_unconstrained,
    decide_product_safety,
    is_log_supermodular,
)
from tests.conftest import random_pairs


class TestProbabilisticAuditor:
    def test_hiv_example_is_safe(self):
        """The §1.1 headline example: disclosing "HIV ⇒ transfusions" never
        raises confidence in "HIV-positive"."""
        space = HypercubeSpace(2, coordinate_names=["hiv", "transfusion"])
        a = space.coordinate_set(1)
        b = ~space.coordinate_set(1) | space.coordinate_set(2)
        verdict = ProbabilisticAuditor(space).audit(a, b)
        assert verdict.is_safe

    def test_pipeline_agrees_with_exact_decision(self):
        """Whatever stage fires, the verdict matches the rigorous decision."""
        space = HypercubeSpace(3)
        auditor = ProbabilisticAuditor(space, optimizer_restarts=12)
        for a, b in random_pairs(space, 60, seed=21, allow_empty=True):
            verdict = auditor.audit(a, b)
            exact = decide_product_safety(a, b)
            assert exact.is_decided
            assert verdict.is_decided, (a, b)
            assert verdict.status == exact.status, (a, b, verdict.method)

    def test_verdicts_carry_traces(self):
        space = HypercubeSpace(2)
        verdict = ProbabilisticAuditor(space).audit(
            space.coordinate_set(1), space.coordinate_set(2)
        )
        assert "trace" in verdict.details
        assert verdict.is_safe  # independent coordinates

    def test_unsafe_verdicts_carry_witnesses(self):
        space = HypercubeSpace(3)
        a = space.property_set(["100", "101", "110", "111"])
        b = space.property_set(["100"])
        verdict = ProbabilisticAuditor(space).audit(a, b)
        assert verdict.is_unsafe
        witness = verdict.witness
        gap = witness.prob(a) * witness.prob(b) - witness.prob(a & b)
        assert gap < 0

    def test_audit_many(self):
        space = HypercubeSpace(2)
        auditor = ProbabilisticAuditor(space)
        a = space.coordinate_set(1)
        verdicts = auditor.audit_many(
            a, [space.coordinate_set(2), a | space.coordinate_set(2)]
        )
        assert verdicts[0].is_safe
        assert verdicts[1].is_unsafe

    def test_requires_hypercube(self):
        with pytest.raises(TypeError):
            ProbabilisticAuditor(WorldSpace(8))  # type: ignore[arg-type]

    def test_sos_stage_enabled_pipeline_agrees(self):
        """With use_sos=True the certificate stage may decide before the
        exact stage; verdicts must not change."""
        space = HypercubeSpace(3)
        with_sos = ProbabilisticAuditor(space, use_sos=True, optimizer_restarts=6)
        without = ProbabilisticAuditor(space, use_sos=False, optimizer_restarts=6)
        for a, b in random_pairs(space, 12, seed=77, allow_empty=True):
            v1 = with_sos.audit(a, b)
            v2 = without.audit(a, b)
            assert v1.status == v2.status, (a, b, v1.method, v2.method)

    def test_large_dimension_falls_back_to_criteria(self):
        """Beyond the dense-tensor guard (n > 12), the cheap criteria still
        decide structured pairs; genuinely hard ones may return UNKNOWN."""
        space = HypercubeSpace(14)
        auditor = ProbabilisticAuditor(space, optimizer_restarts=2)
        a = space.coordinate_set(1)
        b = space.coordinate_set(14)
        verdict = auditor.audit(a, b)
        assert verdict.is_safe and verdict.method == "miklau-suciu"
        leaky = auditor.audit(a, a)
        assert leaky.is_unsafe  # the optimizer finds the violation


class TestSupermodularAuditor:
    def test_up_down_pair_safe(self):
        from repro.core import down_closure, up_closure

        space = HypercubeSpace(3)
        auditor = SupermodularAuditor(space)
        a = up_closure(space.property_set(["110"]))
        b = down_closure(space.property_set(["001"]))
        verdict = auditor.audit(a, b)
        assert verdict.is_safe

    def test_leaky_pair_unsafe_with_member_witness(self):
        space = HypercubeSpace(2)
        auditor = SupermodularAuditor(space)
        a = space.property_set(["10", "11"])
        b = space.property_set(["11"])
        verdict = auditor.audit(a, b)
        assert verdict.is_unsafe
        assert is_log_supermodular(verdict.witness, tolerance=1e-9)
        assert safety_gap(verdict.witness, a, b) < 0

    def test_never_contradicts_sampled_members(self):
        """SAFE verdicts survive a barrage of sampled Π_m⁺ priors."""
        space = HypercubeSpace(3)
        auditor = SupermodularAuditor(space)
        family = LogSupermodularFamily(space)
        rng = np.random.default_rng(31)
        members = family.sample_many(30, rng)
        for a, b in random_pairs(space, 40, seed=22, allow_empty=True):
            verdict = auditor.audit(a, b)
            if verdict.is_safe:
                for dist in members:
                    assert safety_gap(dist, a, b) >= -1e-9, (a, b)


class TestUnconstrainedAuditor:
    def test_matches_theorem_3_11(self):
        space = WorldSpace(5)
        for a, b in random_pairs(space, 100, seed=23, allow_empty=True):
            if not b:
                continue
            verdict = audit_unconstrained(a, b)
            assert verdict.is_safe == safe_unrestricted(a, b)

    def test_unsafe_witness_gains_confidence(self):
        space = WorldSpace(4)
        a = space.property_set([0, 1])
        b = space.property_set([0, 2])
        verdict = audit_unconstrained(a, b)
        assert verdict.is_unsafe
        witness: Distribution = verdict.witness
        assert witness.conditional_prob(a, b) > witness.prob(a)

"""Tests for the Π_m⁺ criteria (Props 5.2, 5.4; Cor 5.5) and Theorem 5.3."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Distribution,
    HypercubeSpace,
    down_closure,
    safety_gap,
    up_closure,
)
from repro.probabilistic import (
    LogSupermodularFamily,
    is_log_supermodular,
    pointwise_condition_holds,
    set_inequality_holds,
    supermodular_necessary_criterion,
    supermodular_sufficient_criterion,
    supermodularity_deficit,
    fkg_correlation_holds,
    up_down_criterion,
)
from tests.conftest import random_pairs

subsets3 = st.sets(st.integers(0, 7))


class TestNecessaryCriterion:
    def test_witness_is_valid_member_and_violates(self):
        """Whenever Prop 5.2 fails, the attached witness is a genuine
        log-supermodular distribution with a strictly negative safety gap."""
        space = HypercubeSpace(3)
        failures = 0
        for a, b in random_pairs(space, 150, seed=7, allow_empty=True):
            result = supermodular_necessary_criterion(a, b)
            if not result.holds:
                failures += 1
                witness = result.witness
                assert is_log_supermodular(witness, tolerance=1e-12)
                assert safety_gap(witness, a, b) < -1e-12, (a, b)
        assert failures > 20

    def test_comparable_pair_fails(self):
        """ω₁ ∈ AB comparable with ω₂ ∈ ĀB̄ always breaks Π_m⁺ safety."""
        space = HypercubeSpace(2)
        a = space.property_set(["11"])  # AB = {11}
        b = space.property_set(["11", "01"])
        # ĀB̄ contains 00 ≼ 11: comparable.
        result = supermodular_necessary_criterion(a, b)
        assert not result.holds

    def test_criterion_holds_when_quadrants_empty(self):
        space = HypercubeSpace(2)
        a = space.property_set(["10"])
        b = space.property_set(["01", "11", "00"])  # AB = ∅
        assert supermodular_necessary_criterion(a, b).holds


class TestSufficientCriterion:
    def test_soundness_against_sampled_members(self):
        """Prop 5.4 holds ⇒ no sampled Π_m⁺ member ever gains confidence."""
        space = HypercubeSpace(3)
        family = LogSupermodularFamily(space)
        rng = np.random.default_rng(11)
        members = family.sample_many(40, rng)
        holds_count = 0
        for a, b in random_pairs(space, 80, seed=8, allow_empty=True):
            if supermodular_sufficient_criterion(a, b).holds:
                holds_count += 1
                for dist in members:
                    assert safety_gap(dist, a, b) >= -1e-9, (a, b)
        assert holds_count > 0

    def test_up_down_implies_sufficient(self):
        """Corollary 5.5 instances satisfy Proposition 5.4."""
        space = HypercubeSpace(3)
        for seed in range(10):
            rng = np.random.default_rng(seed)
            a = up_closure(
                space.property_set([int(rng.integers(space.size))])
            )
            b = down_closure(
                space.property_set([int(rng.integers(space.size))])
            )
            assert up_down_criterion(a, b).holds
            assert supermodular_sufficient_criterion(a, b).holds

    def test_trivial_quadrant_cases(self):
        space = HypercubeSpace(2)
        a = space.property_set(["10"])
        b = space.property_set(["01"])  # AB = ∅
        assert supermodular_sufficient_criterion(a, b).holds
        assert supermodular_sufficient_criterion(a, space.full).holds  # ĀB̄ = ∅


class TestCorollary55:
    def test_monotone_disclosure_protects_monotone_audit(self):
        """Remark 5.6: a "no" to a monotone query protects a "yes" to another."""
        space = HypercubeSpace(4)
        # A: "at least records 1 and 2 present" (monotone, answered yes).
        a = space.coordinate_set(1) & space.coordinate_set(2)
        # B: complement of monotone query "record 3 present" = a down-set.
        b = ~space.coordinate_set(3)
        assert up_down_criterion(a, b).holds
        family = LogSupermodularFamily(space)
        rng = np.random.default_rng(3)
        for dist in family.sample_many(25, rng):
            assert safety_gap(dist, a, b) >= -1e-9

    def test_vice_versa_direction(self):
        space = HypercubeSpace(3)
        a = ~space.coordinate_set(2)  # down-set
        b = space.coordinate_set(1)  # up-set
        assert up_down_criterion(a, b).holds


class TestFourFunctionsTheorem:
    @settings(max_examples=40, deadline=None)
    @given(subsets3, subsets3, st.integers(0, 2**31 - 1))
    def test_pointwise_implies_set_level(self, xs, ys, seed):
        """Theorem 5.3 forward direction with α=β=γ=δ=P log-supermodular."""
        space = HypercubeSpace(3)
        rng = np.random.default_rng(seed)
        dist = LogSupermodularFamily(space).sample(rng)
        func = lambda w: float(dist.probs[w])
        assert pointwise_condition_holds(space, func, func, func, func, tolerance=1e-9)
        a, b = space.property_set(xs), space.property_set(ys)
        assert set_inequality_holds(space, func, func, func, func, a, b)

    def test_reverse_direction_counterexample(self):
        """A non-supermodular P breaks the pointwise condition."""
        space = HypercubeSpace(2)
        dist = Distribution.from_mapping(space, {"01": 0.5, "10": 0.5})
        func = lambda w: float(dist.probs[w])
        assert not pointwise_condition_holds(space, func, func, func, func)


class TestModularityHelpers:
    def test_deficit_zero_for_members(self):
        space = HypercubeSpace(3)
        rng = np.random.default_rng(2)
        dist = LogSupermodularFamily(space).sample(rng)
        assert supermodularity_deficit(dist) <= 1e-9

    def test_deficit_positive_for_antidiagonal(self):
        space = HypercubeSpace(2)
        dist = Distribution.from_mapping(space, {"01": 0.5, "10": 0.5})
        assert supermodularity_deficit(dist) == pytest.approx(0.25)

    def test_fkg_for_members(self):
        """Up-sets are nonnegatively correlated under Π_m⁺ (FKG)."""
        space = HypercubeSpace(3)
        rng = np.random.default_rng(9)
        family = LogSupermodularFamily(space)
        u1 = up_closure(space.property_set(["100"]))
        u2 = up_closure(space.property_set(["010"]))
        for dist in family.sample_many(20, rng):
            assert fkg_correlation_holds(dist, u1, u2)

"""Property-based tests tying the exact decision to the ground truth.

Hypothesis drives random (A, B, prior) triples through the full identity
chain: gap polynomial ≡ direct computation ≡ the cancellation expansion,
and the Bernstein decision never contradicts a concrete violating or
certifying prior.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic.encode import safety_gap_polynomial
from repro.core import HypercubeSpace, safety_gap
from repro.probabilistic import (
    ProductDistribution,
    circ_pair_counter,
    decide_product_safety,
    monomial_weight,
)
from repro.core.worlds import quadrants

subsets3 = st.sets(st.integers(0, 7))
bernoulli3 = st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=3, max_size=3)


class TestGapIdentityChain:
    @settings(max_examples=80, deadline=None)
    @given(subsets3, subsets3, bernoulli3)
    def test_cancellation_expansion_equals_gap(self, xs, ys, ps):
        """Σ_w m(w)·(|AB̄×ĀB ∩ Circ(w)| − |AB×ĀB̄ ∩ Circ(w)|) = gap(p)."""
        space = HypercubeSpace(3)
        a, b = space.property_set(xs), space.property_set(ys)
        ab, a_not_b, not_a_b, neither = quadrants(a, b)
        positive = circ_pair_counter(a_not_b, not_a_b)
        negative = circ_pair_counter(ab, neither)
        total = 0.0
        for key, count in positive.items():
            total += monomial_weight(space, key, ps) * count
        for key, count in negative.items():
            total -= monomial_weight(space, key, ps) * count
        dist = ProductDistribution(space, ps)
        direct = dist.prob(a) * dist.prob(b) - dist.prob(a & b)
        assert total == pytest.approx(direct, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(subsets3, subsets3, bernoulli3)
    def test_decision_never_contradicts_a_concrete_prior(self, xs, ys, ps):
        """If any tested prior has a clearly negative gap, the decision is
        UNSAFE; SAFE decisions keep every tested prior's gap ≥ −atol."""
        space = HypercubeSpace(3)
        a, b = space.property_set(xs), space.property_set(ys)
        dist = ProductDistribution(space, ps)
        value = dist.prob(a) * dist.prob(b) - dist.prob(a & b)
        verdict = decide_product_safety(a, b)
        assert verdict.is_decided
        if verdict.is_safe:
            assert value >= -1e-8, (xs, ys, ps)

    @settings(max_examples=40, deadline=None)
    @given(subsets3, subsets3)
    def test_gap_polynomial_zero_iff_independent_everywhere(self, xs, ys):
        """gap ≡ 0 exactly when A ⟂ B under every product prior — sampled."""
        space = HypercubeSpace(3)
        a, b = space.property_set(xs), space.property_set(ys)
        poly = safety_gap_polynomial(a, b)
        rng = np.random.default_rng(1)
        samples = rng.uniform(0, 1, size=(20, 3))
        values = [poly(list(p)) for p in samples]
        if poly.is_zero(1e-12):
            assert all(abs(v) < 1e-9 for v in values)
        else:
            assert any(abs(v) > 1e-12 for v in values) or poly.max_abs_coefficient() < 1e-6


class TestDenseSparseAgreement:
    @settings(max_examples=40, deadline=None)
    @given(subsets3, subsets3, bernoulli3)
    def test_gap_via_dense_distribution(self, xs, ys, ps):
        space = HypercubeSpace(3)
        a, b = space.property_set(xs), space.property_set(ys)
        sparse = ProductDistribution(space, ps)
        dense = sparse.to_dense()
        sparse_gap = sparse.prob(a) * sparse.prob(b) - sparse.prob(a & b)
        assert safety_gap(dense, a, b) == pytest.approx(sparse_gap, abs=1e-12)

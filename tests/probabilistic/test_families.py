"""Tests for distribution families and liftability (Definitions 3.7, 5.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Distribution, HypercubeSpace, WorldSpace, safe_pi
from repro.probabilistic import (
    ExplicitDistributionFamily,
    LogSubmodularFamily,
    LogSupermodularFamily,
    ProductFamily,
    UnconstrainedFamily,
    is_log_submodular,
    is_log_supermodular,
    is_product,
)


@pytest.fixture
def cube():
    return HypercubeSpace(3)


class TestProductFamily:
    def test_membership(self, cube):
        family = ProductFamily(cube)
        rng = np.random.default_rng(0)
        assert family.contains(family.sample(rng))
        non_product = Distribution.from_mapping(cube, {"000": 0.5, "111": 0.5})
        assert not family.contains(non_product)

    def test_bernoulli_roundtrip(self, cube):
        family = ProductFamily(cube)
        from repro.probabilistic import dense_product

        dist = dense_product(cube, [0.2, 0.5, 0.9])
        recovered = family.bernoulli_of(dist)
        assert np.allclose(recovered, [0.2, 0.5, 0.9])

    def test_lift_gives_full_support(self, cube):
        family = ProductFamily(cube)
        from repro.probabilistic import dense_product

        degenerate = dense_product(cube, [0.0, 1.0, 0.5])
        lifted = family.lift(degenerate, epsilon=1e-3)
        assert lifted.support().is_full()
        assert degenerate.distance_linf(lifted) < 1e-3
        assert is_product(lifted)

    def test_liftability_justifies_safe_pi(self, cube):
        """Prop 3.8 in action: Safe_Π decisions transfer to (C, Π) with
        degenerate members, because lifts approximate them."""
        family = ProductFamily(cube)
        assert family.is_liftable()


class TestLogSupermodularFamily:
    def test_membership_and_sampling(self, cube):
        family = LogSupermodularFamily(cube)
        rng = np.random.default_rng(1)
        for _ in range(5):
            assert family.contains(family.sample(rng))

    def test_products_are_members(self, cube):
        family = LogSupermodularFamily(cube)
        rng = np.random.default_rng(2)
        assert family.contains(ProductFamily(cube).sample(rng))

    def test_lift_members_stay_members(self, cube):
        family = LogSupermodularFamily(cube)
        diagonal = Distribution.from_mapping(cube, {"000": 0.5, "111": 0.5})
        assert family.contains(diagonal)
        lifted = family.lift(diagonal, epsilon=1e-4)
        assert lifted.support().is_full()
        assert is_log_supermodular(lifted, tolerance=1e-9)


class TestLogSubmodularFamily:
    def test_membership_and_sampling(self, cube):
        family = LogSubmodularFamily(cube)
        rng = np.random.default_rng(3)
        for _ in range(5):
            assert family.contains(family.sample(rng))

    def test_antidiagonal_is_member(self, cube2=HypercubeSpace(2)):
        family = LogSubmodularFamily(cube2)
        anti = Distribution.from_mapping(cube2, {"01": 0.5, "10": 0.5})
        assert family.contains(anti)


class TestUnconstrainedFamily:
    def test_contains_everything(self):
        space = WorldSpace(5)
        family = UnconstrainedFamily(space)
        rng = np.random.default_rng(4)
        assert family.contains(Distribution.random(space, rng))
        assert family.is_liftable()

    def test_lift(self):
        space = WorldSpace(4)
        family = UnconstrainedFamily(space)
        point = Distribution.point_mass(space, 0)
        lifted = family.lift(point, 1e-3)
        assert lifted.support().is_full()
        assert point.distance_linf(lifted) <= 1e-3


class TestExplicitFamily:
    def test_membership(self):
        space = WorldSpace(3)
        members = [Distribution.uniform(space)]
        family = ExplicitDistributionFamily(space, members)
        assert family.contains(Distribution.uniform(space))
        assert not family.contains(Distribution.point_mass(space, 0))

    def test_liftability_requires_full_support(self):
        space = WorldSpace(3)
        full = ExplicitDistributionFamily(space, [Distribution.uniform(space)])
        assert full.is_liftable()
        partial = ExplicitDistributionFamily(
            space, [Distribution.point_mass(space, 0)]
        )
        assert not partial.is_liftable()
        with pytest.raises(ValueError):
            partial.lift(Distribution.point_mass(space, 0), 0.1)

    def test_safe_pi_over_explicit_family(self):
        space = WorldSpace(4)
        family = ExplicitDistributionFamily(space, [Distribution.uniform(space)])
        a = space.property_set([0])
        b = space.property_set([0, 1])
        assert not safe_pi(list(family), a, b)
        assert safe_pi(list(family), a, space.property_set([1, 2, 3]))

    def test_empty_family_rejected(self):
        with pytest.raises(ValueError):
            ExplicitDistributionFamily(WorldSpace(2), [])

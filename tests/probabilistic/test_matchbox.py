"""Tests for the Match/Box/Circ machinery (Definition 5.8)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import _bitops
from repro.core import HypercubeSpace
from repro.probabilistic import (
    ProductDistribution,
    box,
    box_count,
    box_count_tensor,
    circ_count,
    circ_members,
    circ_pair_counter,
    match,
    match_string,
    monomial_weight,
)

subsets3 = st.sets(st.integers(0, 7))
subsets4 = st.sets(st.integers(0, 15))


class TestMatch:
    def test_paper_example(self):
        space = HypercubeSpace(5)
        key = match(space, "01011", "01101")
        assert match_string(space, key) == "01**1"

    def test_box_of_match(self):
        space = HypercubeSpace(5)
        key = match(space, "01011", "01101")
        members = box(space, key)
        assert len(members) == 4
        assert "01011" in members and "01101" in members


class TestBoxCounts:
    @given(subsets4)
    def test_tensor_matches_brute_force(self, xs):
        space = HypercubeSpace(4)
        event = space.property_set(xs)
        tensor = box_count_tensor(event)
        for star, agreed in _bitops.all_match_vectors(4):
            idx = tuple(
                2 if (star >> i) & 1 else ((agreed >> i) & 1) for i in range(4)
            )
            assert tensor[idx] == box_count(event, (star, agreed)), (star, agreed)

    def test_full_star_counts_everything(self):
        space = HypercubeSpace(3)
        event = space.property_set([1, 3, 5])
        tensor = box_count_tensor(event)
        assert tensor[(2, 2, 2)] == 3

    def test_zero_dimension(self):
        space = HypercubeSpace(0)
        tensor = box_count_tensor(space.full)
        assert tensor[0] == 1


class TestCircCounts:
    def test_remark_5_12_counts(self):
        """The paper's exact numbers: |AB̄×ĀB ∩ Circ(***)| = 0 and
        |AB×ĀB̄ ∩ Circ(***)| = 2."""
        space = HypercubeSpace(3)
        a = space.property_set(["011", "100", "110", "111"])
        b = space.property_set(["010", "101", "110", "111"])
        key = _bitops.parse_match_vector("***")
        assert circ_count(a & ~b, ~a & b, key) == 0
        assert circ_count(a & b, ~a & ~b, key) == 2

    @given(subsets3, subsets3)
    def test_counter_matches_brute_force(self, xs, ys):
        space = HypercubeSpace(3)
        x, y = space.property_set(xs), space.property_set(ys)
        counter = circ_pair_counter(x, y)
        assert sum(counter.values()) == len(x) * len(y)
        for star, agreed in _bitops.all_match_vectors(3):
            expected = circ_count(x, y, (star, agreed))
            assert counter.get((star, agreed), 0) == expected

    def test_circ_members_partition_pairs(self):
        space = HypercubeSpace(3)
        key = _bitops.parse_match_vector("0**")
        pairs = list(circ_members(space, key))
        assert len(pairs) == 4  # 2^(#stars) ordered pairs
        for u, v in pairs:
            assert _bitops.match_key(u, v) == key


class TestMonomialWeight:
    @given(
        st.integers(0, 7),
        st.integers(0, 7),
        st.lists(st.floats(0.01, 0.99), min_size=3, max_size=3),
    )
    def test_weight_equals_pair_mass(self, u, v, ps):
        """m(w) = P(u)·P(v) for every pair (u,v) ∈ Circ(w) under a product P."""
        space = HypercubeSpace(3)
        dist = ProductDistribution(space, ps)
        key = _bitops.match_key(u, v)
        weight = monomial_weight(space, key, ps)
        assert weight == pytest.approx(dist.mass(u) * dist.mass(v), rel=1e-9)

    def test_grouping_identity(self):
        """Σ_w m(w)·|(X×Y) ∩ Circ(w)| = P[X]·P[Y]: the expansion behind
        the cancellation criterion."""
        space = HypercubeSpace(3)
        ps = [0.3, 0.6, 0.8]
        dist = ProductDistribution(space, ps)
        x = space.property_set(["001", "011", "100"])
        y = space.property_set(["111", "010"])
        counter = circ_pair_counter(x, y)
        total = sum(
            monomial_weight(space, key, ps) * count for key, count in counter.items()
        )
        assert total == pytest.approx(dist.prob(x) * dist.prob(y), rel=1e-9)

"""Tests for the §1.1 baseline privacy definitions (relaxations module)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Distribution, HypercubeSpace
from repro.probabilistic import (
    ProductFamily,
    definition_matrix,
    epistemic_privacy_holds,
    gain_vs_loss_gap,
    lambda_bound_holds,
    perfect_secrecy_holds,
    rho1_rho2_breach,
    sulq_bound_holds,
)


@pytest.fixture
def hiv_setting():
    space = HypercubeSpace(2)
    a = space.coordinate_set(1)
    b = ~space.coordinate_set(1) | space.coordinate_set(2)
    return space, a, b


class TestPerPriorDefinitions:
    def test_perfect_secrecy_requires_equality(self, hiv_setting):
        space, a, b = hiv_setting
        uniform = Distribution.uniform(space)
        # Learning B strictly lowers P[A] under the uniform prior.
        assert not perfect_secrecy_holds(uniform, a, b)
        assert epistemic_privacy_holds(uniform, a, b)

    def test_independent_events_satisfy_all(self):
        space = HypercubeSpace(2)
        a = space.coordinate_set(1)
        b = space.coordinate_set(2)
        uniform = Distribution.uniform(space)
        assert perfect_secrecy_holds(uniform, a, b)
        assert epistemic_privacy_holds(uniform, a, b)
        assert lambda_bound_holds(uniform, a, b, 0.2)
        assert sulq_bound_holds(uniform, a, b, 0.1)

    def test_inconsistent_prior_is_vacuous(self, hiv_setting):
        space, a, b = hiv_setting
        outside = Distribution.point_mass(space, space.world_id("10"))
        # P[B] = 0 for this prior: every definition holds vacuously.
        assert perfect_secrecy_holds(outside, a, b)
        assert epistemic_privacy_holds(outside, a, b)
        assert not rho1_rho2_breach(outside, a, b, 0.3, 0.7)

    def test_rho_breach_detection(self):
        space = HypercubeSpace(2)
        a = space.property_set(["11"])
        b = space.property_set(["11", "10"])
        prior = Distribution.from_mapping(
            space, {"11": 0.2, "00": 0.7, "10": 0.1}
        )
        # P[A] = 0.2 ≤ 0.3; P[A|B] = 0.2/0.3 ≈ 0.67 < 0.7: below ρ2.
        assert not rho1_rho2_breach(prior, a, b, 0.3, 0.7)
        assert rho1_rho2_breach(prior, a, b, 0.3, 0.6)

    def test_rho_parameter_validation(self, hiv_setting):
        space, a, b = hiv_setting
        prior = Distribution.uniform(space)
        with pytest.raises(ValueError):
            rho1_rho2_breach(prior, a, b, 0.7, 0.3)

    def test_lambda_bound_symmetric(self):
        """λ-bound punishes confidence LOSS too — the paper's observation."""
        space = HypercubeSpace(2)
        a = space.coordinate_set(1)
        b = ~space.coordinate_set(1) | space.coordinate_set(2)
        prior = Distribution.from_mapping(
            space, {"10": 0.45, "00": 0.45, "11": 0.05, "01": 0.05}
        )
        # Learning B halves the confidence in A: epistemic privacy is happy,
        # the ratio bound with small λ is violated by the LOSS.
        assert epistemic_privacy_holds(prior, a, b)
        assert not lambda_bound_holds(prior, a, b, 0.1)

    def test_sulq_two_sided_vs_gain_only(self):
        """Placing |…| over the difference forbids loss; dropping it doesn't."""
        space = HypercubeSpace(2)
        a = space.coordinate_set(1)
        b = ~space.coordinate_set(1) | space.coordinate_set(2)
        prior = Distribution.from_mapping(
            space, {"10": 0.45, "00": 0.45, "11": 0.05, "01": 0.05}
        )
        assert not sulq_bound_holds(prior, a, b, epsilon=0.3, two_sided=True)
        assert sulq_bound_holds(prior, a, b, epsilon=0.3, two_sided=False)

    def test_sulq_parameter_validation(self, hiv_setting):
        space, a, b = hiv_setting
        with pytest.raises(ValueError):
            sulq_bound_holds(Distribution.uniform(space), a, b, epsilon=0.0)

    def test_gain_vs_loss_decomposition(self, hiv_setting):
        space, a, b = hiv_setting
        uniform = Distribution.uniform(space)
        gain, loss = gain_vs_loss_gap(uniform, a, b)
        assert gain == 0.0
        assert loss > 0.0
        # And on a genuinely leaking disclosure, gain > 0.
        gain2, loss2 = gain_vs_loss_gap(uniform, a, a & space.coordinate_set(2))
        assert gain2 > 0.0 and loss2 == 0.0


class TestDefinitionMatrix:
    def test_hiv_example_matrix(self, hiv_setting):
        """The §1.1 example under sampled product priors: epistemic privacy
        admits it, perfect secrecy and the symmetric relaxations refuse."""
        space, a, b = hiv_setting
        rng = np.random.default_rng(1)
        priors = ProductFamily(space).sample_many(50, rng)
        outcome = definition_matrix(priors, a, b, lam=0.1, epsilon=0.25)
        assert outcome.epistemic
        assert not outcome.perfect_secrecy
        assert not outcome.lambda_bound  # loss punished
        assert not outcome.sulq_two_sided  # loss punished
        assert outcome.sulq_gain_only

    def test_independent_pair_admitted_by_all(self):
        space = HypercubeSpace(2)
        a = space.coordinate_set(1)
        b = space.coordinate_set(2)
        rng = np.random.default_rng(2)
        priors = ProductFamily(space).sample_many(30, rng)
        outcome = definition_matrix(priors, a, b)
        assert all(outcome.as_dict().values())

    def test_leaky_pair_rejected_by_all_strict(self):
        space = HypercubeSpace(2)
        a = space.property_set(["10", "11"])
        b = space.property_set(["10"])
        rng = np.random.default_rng(3)
        priors = ProductFamily(space).sample_many(30, rng)
        outcome = definition_matrix(priors, a, b, epsilon=0.05, lam=0.02)
        assert not outcome.epistemic
        assert not outcome.perfect_secrecy
        assert not outcome.sulq_gain_only

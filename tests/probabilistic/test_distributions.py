"""Tests for product distributions and modularity predicates (Definition 5.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Distribution, HypercubeSpace
from repro.exceptions import InvalidDistributionError
from repro.probabilistic import (
    ProductDistribution,
    dense_product,
    is_log_submodular,
    is_log_supermodular,
    is_product,
    random_log_supermodular,
)


bernoulli_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=3, max_size=3
)


class TestProductDistribution:
    def test_eq_17_point_mass_formula(self):
        space = HypercubeSpace(3)
        dist = ProductDistribution(space, [0.5, 0.25, 0.8])
        assert dist.mass("101") == pytest.approx(0.5 * 0.75 * 0.8)
        assert dist.mass("000") == pytest.approx(0.5 * 0.75 * 0.2)

    def test_validation(self):
        space = HypercubeSpace(2)
        with pytest.raises(InvalidDistributionError):
            ProductDistribution(space, [0.5])
        with pytest.raises(InvalidDistributionError):
            ProductDistribution(space, [0.5, 1.5])

    @given(bernoulli_vectors)
    def test_dense_matches_sparse(self, ps):
        space = HypercubeSpace(3)
        sparse = ProductDistribution(space, ps)
        dense = sparse.to_dense()
        for w in space.worlds():
            assert dense.mass(w) == pytest.approx(sparse.mass(w), abs=1e-12)

    @given(bernoulli_vectors)
    def test_event_prob_matches_dense(self, ps):
        space = HypercubeSpace(3)
        sparse = ProductDistribution(space, ps)
        dense = sparse.to_dense()
        event = space.property_set(["001", "011", "111"])
        assert sparse.prob(event) == pytest.approx(dense.prob(event), abs=1e-12)

    def test_uniform(self):
        space = HypercubeSpace(4)
        dist = ProductDistribution.uniform(space)
        assert dist.mass(0) == pytest.approx(1.0 / 16)

    def test_degenerate_detection(self):
        space = HypercubeSpace(2)
        assert ProductDistribution(space, [0.0, 0.5]).is_degenerate()
        assert not ProductDistribution(space, [0.3, 0.5]).is_degenerate()

    def test_bernoulli_read_only(self):
        dist = ProductDistribution(HypercubeSpace(2), [0.3, 0.7])
        with pytest.raises(ValueError):
            dist.bernoulli[0] = 0.5


class TestModularityPredicates:
    @given(bernoulli_vectors)
    def test_products_are_both_modular(self, ps):
        """Π_m⁰ = Π_m⁻ ∩ Π_m⁺ (the Lovász fact quoted in Section 5)."""
        dist = dense_product(HypercubeSpace(3), ps)
        assert is_log_supermodular(dist, tolerance=1e-9)
        assert is_log_submodular(dist, tolerance=1e-9)
        assert is_product(dist)

    def test_supermodular_but_not_product(self):
        """Mass on the diagonal {00, 11} is supermodular, not product."""
        space = HypercubeSpace(2)
        dist = Distribution.from_mapping(space, {"00": 0.5, "11": 0.5})
        assert is_log_supermodular(dist)
        assert not is_log_submodular(dist, tolerance=1e-12)
        assert not is_product(dist)

    def test_submodular_but_not_product(self):
        """Mass on the antidiagonal {01, 10} is submodular, not supermodular."""
        space = HypercubeSpace(2)
        dist = Distribution.from_mapping(space, {"01": 0.5, "10": 0.5})
        assert is_log_submodular(dist)
        assert not is_log_supermodular(dist, tolerance=1e-12)

    def test_equation_18_characterisation(self):
        """Eq. (18): product ⇔ equality P(ω₁)P(ω₂) = P(ω₁∧ω₂)P(ω₁∨ω₂)."""
        space = HypercubeSpace(2)
        product = dense_product(space, [0.7, 0.6])
        assert is_product(product)
        perturbed = Distribution(
            space, product.probs + np.array([0.01, -0.01, 0.0, 0.0])
        )
        assert not is_product(perturbed)

    def test_requires_hypercube(self):
        from repro.core import WorldSpace

        dist = Distribution.uniform(WorldSpace(4))
        with pytest.raises(InvalidDistributionError):
            is_log_supermodular(dist)


class TestRandomLogSupermodular:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_samples_are_members(self, seed):
        space = HypercubeSpace(3)
        rng = np.random.default_rng(seed)
        dist = random_log_supermodular(space, rng)
        assert is_log_supermodular(dist, tolerance=1e-9)
        assert dist.probs.sum() == pytest.approx(1.0)

    def test_samples_vary(self):
        space = HypercubeSpace(2)
        rng = np.random.default_rng(5)
        d1 = random_log_supermodular(space, rng)
        d2 = random_log_supermodular(space, rng)
        assert not d1.allclose(d2)

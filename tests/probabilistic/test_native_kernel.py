"""Three-way equivalence for the E20 native Bernstein kernel.

The compiled fused de Casteljau kernel, the pure-NumPy fallback and the
scalar reference must agree verdict-for-verdict: the backend is allowed to
change throughput and provenance, never a decision.  The suite pins each
backend explicitly via ``repro._native.configure`` and restores the
environment's selection afterwards, so test order cannot leak a backend.

Native-only tests skip (rather than fail) when the extension was not
built — ``REPRO_NATIVE=require`` CI legs prove the compiled path runs.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import _native
from repro.algebraic.encode import safety_gap_tensor
from repro.core import HypercubeSpace
from repro.exceptions import NativeBackendError
from repro.perf.bench import quadratic_well_tensor
from repro.probabilistic import (
    ProductDistribution,
    decide_nonnegative_on_box,
    decide_nonnegative_on_box_batched,
)
from repro.runtime import Budget
from tests.conftest import random_pairs

ATOL = 1e-9
MAX_BOXES = 4096

#: Seeded (A, B) pairs per dimension for the randomized three-way sweep.
PAIR_COUNTS = {2: 25, 3: 25, 4: 20, 5: 15, 6: 12, 7: 8, 8: 6}

NATIVE_AVAILABLE = _native.configure("auto").fused_split is not None


@pytest.fixture(autouse=True)
def restore_backend():
    """Every test leaves the process on the environment's backend choice."""
    yield
    _native.configure(None)


def _decide_with_backend(mode: str, tensor: np.ndarray, **kwargs):
    _native.configure(mode)
    return decide_nonnegative_on_box_batched(tensor, **kwargs)


def exact_gap(space: HypercubeSpace, a, b, point: np.ndarray) -> float:
    dist = ProductDistribution(space, np.clip(point, 0.0, 1.0))
    return dist.prob(a) * dist.prob(b) - dist.prob(a & b)


class TestBackendSelection:
    def test_off_loads_no_native_code(self):
        backend = _native.configure("off")
        assert backend.name == "numpy-fallback"
        assert backend.mode == "off"
        assert backend.fused_split is None
        assert not _native.native_loaded()

    def test_auto_reports_a_known_backend(self):
        backend = _native.configure("auto")
        assert backend.name in ("native", "numpy-fallback")
        if backend.name == "numpy-fallback":
            assert backend.load_error is not None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="REPRO_NATIVE"):
            _native.configure("vectorised-harder")

    @pytest.mark.skipif(
        NATIVE_AVAILABLE, reason="extension built; require cannot fail here"
    )
    def test_require_raises_without_extension(self):
        with pytest.raises(NativeBackendError):
            _native.configure("require")

    @pytest.mark.skipif(not NATIVE_AVAILABLE, reason="extension not built")
    def test_require_selects_native_when_available(self):
        backend = _native.configure("require")
        assert backend.name == "native"
        assert backend.fused_split is not None

    def test_backend_name_matches_backend(self):
        _native.configure("off")
        assert _native.backend_name() == "numpy-fallback"

    def test_off_exposes_no_kernel_entry_points(self):
        backend = _native.configure("off")
        assert backend.fused_split is None
        assert backend.select_axes is None


@pytest.mark.skipif(not NATIVE_AVAILABLE, reason="extension not built")
class TestSelectAxes:
    """The compiled lazy axis selection is bit-identical to the NumPy one."""

    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_matches_lazy_split_axes(self, n):
        from repro.probabilistic.exact import (
            _Workspace,
            _lazy_split_axes,
            _seed_root_variations,
        )

        rng = np.random.default_rng(900 + n)
        size = 3**n
        count = 17
        sel = np.ascontiguousarray(rng.standard_normal((count, size)))
        ws = _Workspace(count, size, n, 2**n)
        # Mixed bound quality: exact per-axis variations for some rows
        # (nothing to measure), inflated ones for the rest (forces the
        # lazy loop through several measurements).
        ubs = np.empty((count, n))
        for i in range(count):
            _seed_root_variations(sel[i], n, ws.scratch, ubs[i])
            if i % 2:
                ubs[i] *= 1.0 + rng.random(n)
        ubs_native = ubs.copy()

        expected = _lazy_split_axes(sel, ubs, ws, n)
        axes = np.empty(count, dtype=np.int64)
        _native.configure("auto").select_axes(sel, ubs_native, axes, n)

        np.testing.assert_array_equal(axes, np.asarray(expected))
        # The tightened bounds the children inherit must match too.
        np.testing.assert_array_equal(ubs_native, ubs)

    def test_ties_resolve_to_first_axis(self):
        n = 3
        size = 3**n
        # A separable symmetric tensor: every axis has the same variation,
        # so the first axis must win, matching np.argmax semantics.
        line = np.array([0.0, 1.0, 0.0])
        tensor = (
            line[:, None, None] + line[None, :, None] + line[None, None, :]
        )
        sel = np.ascontiguousarray(tensor.reshape(1, size))
        ubs = np.full((1, n), 5.0)  # identical loose bounds everywhere
        axes = np.empty(1, dtype=np.int64)
        _native.configure("auto").select_axes(sel, ubs, axes, n)
        assert axes[0] == 0


class TestThreeWayEquivalence:
    """scalar == fallback == native on every seeded pair."""

    @pytest.mark.parametrize("n", sorted(PAIR_COUNTS))
    def test_random_pairs_agree(self, n):
        space = HypercubeSpace(n)
        pairs = random_pairs(space, PAIR_COUNTS[n], seed=2000 + n, allow_empty=True)
        modes = ["off"] + (["auto"] if NATIVE_AVAILABLE else [])
        for a, b in pairs:
            tensor = safety_gap_tensor(a, b)
            scalar = decide_nonnegative_on_box(tensor, atol=ATOL, max_boxes=MAX_BOXES)
            for mode in modes:
                got = _decide_with_backend(
                    mode, tensor, atol=ATOL, max_boxes=MAX_BOXES
                )
                assert got.nonnegative == scalar.nonnegative, (mode, n, a.mask, b.mask)
                if scalar.nonnegative is False:
                    # Witness points may differ (tie order); both must violate.
                    assert exact_gap(space, a, b, got.witness) < -ATOL
                elif scalar.nonnegative is None:
                    assert got.lower_bound == pytest.approx(
                        scalar.lower_bound, abs=1e-6
                    )

    @pytest.mark.skipif(not NATIVE_AVAILABLE, reason="extension not built")
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_native_explores_identical_boxes(self, n):
        # The native kernel walks each row at its own axis stride instead of
        # reordering; the exact midpoint arithmetic makes the search tree —
        # not just the verdict — bit-identical to the fallback's.
        space = HypercubeSpace(n)
        for a, b in random_pairs(space, 15, seed=3100 + n, allow_empty=True):
            tensor = safety_gap_tensor(a, b)
            fallback = _decide_with_backend(
                "off", tensor, atol=ATOL, max_boxes=MAX_BOXES
            )
            native = _decide_with_backend(
                "auto", tensor, atol=ATOL, max_boxes=MAX_BOXES
            )
            assert native.nonnegative == fallback.nonnegative
            assert native.boxes_explored == fallback.boxes_explored
            assert native.lower_bound == pytest.approx(
                fallback.lower_bound, abs=0.0
            )

    @pytest.mark.parametrize("n,seed", [(4, 0), (6, 2)])
    @pytest.mark.parametrize("eps", [1e-7, -1e-7])
    def test_deep_subdivision_wells_agree(self, n, seed, eps):
        tensor = quadratic_well_tensor(n, seed, eps)
        scalar = decide_nonnegative_on_box(tensor, atol=ATOL, max_boxes=3000)
        modes = ["off"] + (["auto"] if NATIVE_AVAILABLE else [])
        for mode in modes:
            got = _decide_with_backend(mode, tensor, atol=ATOL, max_boxes=3000)
            assert got.nonnegative == scalar.nonnegative, mode
            if scalar.nonnegative is None:
                # Certified bounds stay below the true minimum (= eps).
                assert got.lower_bound <= eps


class TestBudgetExpiry:
    def make_clock(self, step: float):
        ticks = itertools.count()
        return lambda: next(ticks) * step

    @pytest.mark.parametrize(
        "mode",
        ["off"] + (["auto"] if NATIVE_AVAILABLE else []),
    )
    def test_expiry_mid_search_stays_sound(self, mode):
        tensor = quadratic_well_tensor(6, seed=5, eps=1e-7)
        budget = Budget(10.0, clock=self.make_clock(1.0))
        decision = _decide_with_backend(mode, tensor, atol=ATOL, budget=budget)
        assert decision.nonnegative is None
        assert decision.witness is None
        assert 0 < decision.boxes_explored < 200_000
        assert decision.lower_bound <= 1e-7

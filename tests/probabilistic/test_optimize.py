"""Tests for the numeric counterexample search."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HypercubeSpace, safety_gap
from repro.probabilistic import (
    GapEvaluator,
    decide_product_safety,
    find_log_supermodular_counterexample,
    find_product_counterexample,
    is_log_supermodular,
)
from tests.conftest import random_pairs

subsets3 = st.sets(st.integers(0, 7))
interior_points = st.lists(st.floats(0.05, 0.95), min_size=3, max_size=3)


class TestGapEvaluator:
    @given(subsets3, subsets3, interior_points)
    def test_value_matches_direct(self, xs, ys, ps):
        from repro.probabilistic import ProductDistribution

        space = HypercubeSpace(3)
        a, b = space.property_set(xs), space.property_set(ys)
        evaluator = GapEvaluator.build(a, b)
        dist = ProductDistribution(space, ps)
        direct = dist.prob(a) * dist.prob(b) - dist.prob(a & b)
        assert evaluator.value(np.array(ps)) == pytest.approx(direct, abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(subsets3, subsets3, interior_points)
    def test_gradient_matches_finite_differences(self, xs, ys, ps):
        space = HypercubeSpace(3)
        a, b = space.property_set(xs), space.property_set(ys)
        evaluator = GapEvaluator.build(a, b)
        point = np.array(ps)
        _, grad = evaluator.value_and_grad(point)
        eps = 1e-6
        for i in range(3):
            forward = point.copy()
            backward = point.copy()
            forward[i] += eps
            backward[i] -= eps
            numeric = (evaluator.value(forward) - evaluator.value(backward)) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, abs=1e-5)

    def test_empty_events(self):
        space = HypercubeSpace(3)
        evaluator = GapEvaluator.build(space.empty, space.full)
        value, grad = evaluator.value_and_grad(np.full(3, 0.5))
        assert value == 0.0
        assert np.allclose(grad, 0.0)


class TestBuildMemo:
    def test_same_pair_returns_the_same_instance(self):
        from repro.probabilistic import (
            clear_gap_evaluator_cache,
            gap_evaluator_cache_stats,
        )

        clear_gap_evaluator_cache()
        space = HypercubeSpace(3)
        a, b = space.property_set([1, 3]), space.property_set([2, 3])
        first = GapEvaluator.build(a, b)
        # Logically identical sets built differently must still hit.
        second = GapEvaluator.build(space.property_set([3, 1]), b)
        assert first is second
        stats = gap_evaluator_cache_stats()
        assert stats == {"hits": 1, "misses": 1, "size": 1}
        clear_gap_evaluator_cache()
        assert gap_evaluator_cache_stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_order_matters_in_the_key(self):
        from repro.probabilistic import clear_gap_evaluator_cache

        clear_gap_evaluator_cache()
        space = HypercubeSpace(3)
        a, b = space.property_set([1, 3]), space.property_set([2, 5])
        assert GapEvaluator.build(a, b) is not GapEvaluator.build(b, a)

    def test_eviction_respects_capacity(self):
        from repro.probabilistic import optimize as opt

        opt.clear_gap_evaluator_cache()
        space = HypercubeSpace(4)
        a = space.property_set([1, 2])
        for mask in range(1, opt.BUILD_CACHE_CAPACITY + 9):
            GapEvaluator.build(a, space.from_mask(mask))
        assert opt.gap_evaluator_cache_stats()["size"] == opt.BUILD_CACHE_CAPACITY
        opt.clear_gap_evaluator_cache()

    def test_cached_matrices_are_immutable(self):
        space = HypercubeSpace(3)
        evaluator = GapEvaluator.build(
            space.property_set([1, 3]), space.property_set([2, 3])
        )
        with pytest.raises(ValueError):
            evaluator.a_bits[0, 0] = 1


class TestProductCounterexample:
    def test_finds_obvious_violation(self):
        space = HypercubeSpace(3)
        a = space.property_set(["100", "101", "110", "111"])
        b = space.property_set(["100", "101"])
        witness = find_product_counterexample(a, b)
        assert witness is not None
        gap = witness.prob(a) * witness.prob(b) - witness.prob(a & b)
        assert gap < -1e-9

    def test_no_false_positives(self):
        """A returned witness always has a verified negative gap."""
        space = HypercubeSpace(3)
        for a, b in random_pairs(space, 40, seed=12, allow_empty=True):
            witness = find_product_counterexample(a, b, restarts=6)
            if witness is not None:
                gap = witness.prob(a) * witness.prob(b) - witness.prob(a & b)
                assert gap < 0, (a, b)
                assert decide_product_safety(a, b).is_unsafe

    def test_agrees_with_exact_on_unsafe_pairs(self):
        """The optimizer finds every violation the exact procedure confirms
        (on this sample) — evidence it is a strong refuter in practice."""
        space = HypercubeSpace(3)
        missed = 0
        unsafe_count = 0
        for a, b in random_pairs(space, 60, seed=13, allow_empty=True):
            exact_unsafe = decide_product_safety(a, b).is_unsafe
            if exact_unsafe:
                unsafe_count += 1
                if find_product_counterexample(a, b, restarts=12) is None:
                    missed += 1
        assert unsafe_count > 10
        assert missed == 0


class TestLogSupermodularCounterexample:
    def test_finds_violation_for_comparable_leak(self):
        """B ⊆ A over Π_m⁺ is refutable with a supermodular prior."""
        space = HypercubeSpace(2)
        a = space.property_set(["10", "11"])
        b = space.property_set(["11"])
        witness = find_log_supermodular_counterexample(a, b, restarts=6)
        assert witness is not None
        assert is_log_supermodular(witness, tolerance=1e-9)
        assert safety_gap(witness, a, b) < -1e-9

    def test_no_witness_for_up_down_pair(self):
        """Cor 5.5 pairs are Π_m⁺-safe, so the search must come up empty."""
        from repro.core import down_closure, up_closure

        space = HypercubeSpace(2)
        a = up_closure(space.property_set(["11"]))
        b = down_closure(space.property_set(["00"]))
        assert find_log_supermodular_counterexample(a, b, restarts=4) is None

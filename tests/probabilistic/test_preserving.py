"""Tests for family-level preservation and Prop 3.10 composition over Π."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Distribution, HypercubeSpace
from repro.probabilistic import (
    LogSupermodularFamily,
    ProductDistribution,
    ProductFamily,
    UnconstrainedFamily,
    compose_safe_disclosures,
    conditioned_bernoulli,
    decide_product_safety,
    is_family_preserving,
    is_log_supermodular,
    is_product,
    is_subcube,
)

bernoulli3 = st.lists(st.floats(0.05, 0.95), min_size=3, max_size=3)
subcube_patterns = st.text(alphabet="01*", min_size=3, max_size=3)


class TestIsSubcube:
    def test_examples(self):
        space = HypercubeSpace(3)
        assert is_subcube(space.subcube("1*0"))
        assert is_subcube(space.full)
        assert is_subcube(space.singleton("101"))
        assert not is_subcube(space.property_set(["000", "011"]))
        assert not is_subcube(space.empty)

    @given(subcube_patterns)
    def test_every_pattern_is_a_subcube(self, pattern):
        space = HypercubeSpace(3)
        assert is_subcube(space.subcube(pattern))


class TestProductConditioning:
    @settings(max_examples=60, deadline=None)
    @given(bernoulli3, subcube_patterns)
    def test_conditioning_on_subcube_stays_product(self, ps, pattern):
        """The closed form: P(·|subcube) is again a product distribution."""
        space = HypercubeSpace(3)
        event = space.subcube(pattern)
        dense = ProductDistribution(space, ps).to_dense()
        if dense.prob(event) <= 1e-12:
            return
        conditioned = dense.conditional(event)
        assert is_product(conditioned, tolerance=1e-9)
        # ... with exactly the predicted Bernoulli vector.
        predicted = conditioned_bernoulli(ps, event)
        rebuilt = ProductDistribution(space, predicted).to_dense()
        assert conditioned.allclose(rebuilt, atol=1e-9)

    def test_non_subcube_conditioning_breaks_product(self):
        space = HypercubeSpace(2)
        dense = ProductDistribution(space, [0.5, 0.5]).to_dense()
        xor_event = space.property_set(["01", "10"])
        conditioned = dense.conditional(xor_event)
        assert not is_product(conditioned, tolerance=1e-9)

    def test_conditioned_bernoulli_rejects_non_subcube(self):
        space = HypercubeSpace(2)
        with pytest.raises(ValueError):
            conditioned_bernoulli([0.5, 0.5], space.property_set(["01", "10"]))


class TestSupermodularConditioning:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1), subcube_patterns)
    def test_conditioning_on_subcube_stays_supermodular(self, seed, pattern):
        space = HypercubeSpace(3)
        rng = np.random.default_rng(seed)
        member = LogSupermodularFamily(space).sample(rng)
        event = space.subcube(pattern)
        if member.prob(event) <= 1e-9:
            return
        conditioned = member.conditional(event)
        assert is_log_supermodular(conditioned, tolerance=1e-9)


class TestIsFamilyPreserving:
    def test_product_family(self):
        space = HypercubeSpace(3)
        family = ProductFamily(space)
        assert is_family_preserving(family, space.subcube("1**"))
        assert not is_family_preserving(family, space.property_set(["000", "011"]))
        assert not is_family_preserving(family, space.empty)

    def test_unconstrained_family(self):
        space = HypercubeSpace(2)
        family = UnconstrainedFamily(space)
        assert is_family_preserving(family, space.property_set(["01", "10"]))

    def test_supermodular_family(self):
        space = HypercubeSpace(2)
        family = LogSupermodularFamily(space)
        assert is_family_preserving(family, space.subcube("1*"))


class TestComposition:
    def test_composes_when_one_is_subcube(self):
        """Prop 3.10 over Π_m⁰: safe B₁ (subcube) + safe B₂ ⇒ safe B₁∩B₂."""
        space = HypercubeSpace(3)
        family = ProductFamily(space)
        a = space.coordinate_set(1)
        b1 = space.subcube("*1*")  # coordinate-2 evidence: independent of A
        b2 = ~space.coordinate_set(3)  # complement of coordinate 3

        def decide(x, y):
            return decide_product_safety(x, y).is_safe

        ok, reason = compose_safe_disclosures(family, a, b1, b2, decide)
        assert ok, reason
        # The guaranteed conclusion checks out.
        assert decide(a, b1 & b2)

    def test_refuses_unsafe_inputs(self):
        space = HypercubeSpace(2)
        family = ProductFamily(space)
        a = space.coordinate_set(1)

        def decide(x, y):
            return decide_product_safety(x, y).is_safe

        ok, reason = compose_safe_disclosures(family, a, a, space.full, decide)
        assert not ok and "B1" in reason

    def test_refuses_when_nothing_preserves(self):
        space = HypercubeSpace(2)
        family = ProductFamily(space)
        a = space.coordinate_set(1)
        xor_event = space.property_set(["01", "10"])
        odd = ~xor_event  # {00, 11}, also not a subcube

        def decide(x, y):
            return decide_product_safety(x, y).is_safe

        if decide(a, xor_event) and decide(a, odd):
            ok, reason = compose_safe_disclosures(family, a, xor_event, odd, decide)
            assert not ok and "preserving" in reason

    def test_prop_3_10_conclusion_holds_broadly(self):
        """Randomised: whenever composition is granted, the intersection is
        genuinely safe per the exact decision."""
        import random

        space = HypercubeSpace(3)
        family = ProductFamily(space)
        rnd = random.Random(3)
        worlds = list(space.worlds())
        patterns = ["0**", "1**", "*0*", "*1*", "**0", "**1", "***"]

        def decide(x, y):
            return decide_product_safety(x, y).is_safe

        granted = 0
        for _ in range(60):
            a = space.property_set([w for w in worlds if rnd.random() < 0.5])
            b1 = space.subcube(rnd.choice(patterns))
            b2 = space.property_set([w for w in worlds if rnd.random() < 0.6])
            if not a or not b2 or not (b1 & b2):
                continue
            ok, _ = compose_safe_disclosures(family, a, b1, b2, decide)
            if ok:
                granted += 1
                assert decide(a, b1 & b2), (a, b1, b2)
        assert granted > 5

"""Tests for the Bernstein branch-and-bound exact decision and the encoding."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic.encode import (
    event_multilinear_coeffs,
    event_polynomial,
    polynomial_from_tensor,
    safety_gap_polynomial,
    safety_gap_tensor,
)
from repro.core import HypercubeSpace
from repro.probabilistic import (
    ProductDistribution,
    bernstein_range,
    bernstein_split,
    decide_nonnegative_on_box,
    decide_product_safety,
    power_tensor_to_bernstein,
)
from tests.conftest import random_pairs

subsets3 = st.sets(st.integers(0, 7))
points3 = st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=3, max_size=3)


class TestEncoding:
    @given(subsets3, points3)
    def test_event_polynomial_matches_probability(self, xs, ps):
        space = HypercubeSpace(3)
        event = space.property_set(xs)
        poly = event_polynomial(event)
        dist = ProductDistribution(space, ps)
        assert poly(ps) == pytest.approx(dist.prob(event), abs=1e-9)

    def test_multilinear_coeffs_simple(self):
        space = HypercubeSpace(2)
        # X = {11}: P[X] = p1·p2, a single monomial.
        coeffs = event_multilinear_coeffs(space.property_set(["11"]))
        assert coeffs[0b11] == 1.0
        assert np.count_nonzero(coeffs) == 1
        # X = {00}: (1-p1)(1-p2) = 1 - p1 - p2 + p1 p2.
        coeffs = event_multilinear_coeffs(space.property_set(["00"]))
        assert list(coeffs) == [1.0, -1.0, -1.0, 1.0]

    def test_full_event_is_constant_one(self):
        space = HypercubeSpace(3)
        poly = event_polynomial(space.full)
        assert poly == 1

    @given(subsets3, subsets3, points3)
    def test_gap_polynomial_matches_direct(self, xs, ys, ps):
        space = HypercubeSpace(3)
        a, b = space.property_set(xs), space.property_set(ys)
        poly = safety_gap_polynomial(a, b)
        dist = ProductDistribution(space, ps)
        direct = dist.prob(a) * dist.prob(b) - dist.prob(a & b)
        assert poly(ps) == pytest.approx(direct, abs=1e-9)

    @given(subsets3, subsets3)
    def test_tensor_equals_polynomial(self, xs, ys):
        space = HypercubeSpace(3)
        a, b = space.property_set(xs), space.property_set(ys)
        tensor = safety_gap_tensor(a, b)
        assert polynomial_from_tensor(tensor).almost_equal(
            safety_gap_polynomial(a, b), tol=1e-9
        )

    def test_tensor_dimension_guard(self):
        space = HypercubeSpace(13)
        with pytest.raises(ValueError):
            safety_gap_tensor(space.full, space.full)


class TestTensorCache:
    def test_builds_once_per_pair(self):
        from repro.algebraic import TensorCache

        space = HypercubeSpace(3)
        a, b = space.property_set([1, 3, 5]), space.property_set([2, 3])
        cache = TensorCache()
        first = cache.get(a, b)
        second = cache.get(a, b)
        assert first is second
        np.testing.assert_array_equal(first, safety_gap_tensor(a, b))
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1}

    def test_cached_tensor_is_read_only(self):
        from repro.algebraic import TensorCache

        space = HypercubeSpace(2)
        tensor = TensorCache().get(space.property_set([1]), space.property_set([2]))
        with pytest.raises(ValueError):
            tensor[0, 0] = 1.0

    def test_lru_eviction_at_capacity(self):
        from repro.algebraic import TensorCache

        space = HypercubeSpace(3)
        a = space.property_set([1, 2])
        cache = TensorCache(capacity=4)
        for mask in range(8):
            cache.get(a, space.property_set([mask]))
        assert len(cache) == 4
        # The oldest entries were evicted: re-requesting one is a miss.
        cache.get(a, space.property_set([0]))
        assert cache.misses == 9
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_capacity_must_be_positive(self):
        from repro.algebraic import TensorCache

        with pytest.raises(ValueError):
            TensorCache(capacity=0)


class TestBernsteinBasics:
    @given(subsets3, subsets3, points3)
    def test_enclosure_contains_values(self, xs, ys, ps):
        space = HypercubeSpace(3)
        a, b = space.property_set(xs), space.property_set(ys)
        tensor = safety_gap_tensor(a, b)
        coeffs = power_tensor_to_bernstein(tensor)
        low, high = bernstein_range(coeffs)
        value = safety_gap_polynomial(a, b)(ps)
        assert low - 1e-9 <= value <= high + 1e-9

    def test_corner_coefficients_are_exact(self):
        space = HypercubeSpace(2)
        a = space.property_set(["10", "11"])
        b = space.property_set(["01", "11"])
        tensor = safety_gap_tensor(a, b)
        coeffs = power_tensor_to_bernstein(tensor)
        poly = safety_gap_polynomial(a, b)
        for corner in itertools.product((0, 1), repeat=2):
            idx = tuple(2 * c for c in corner)
            assert coeffs[idx] == pytest.approx(poly(list(map(float, corner))))

    @given(subsets3, subsets3, points3, st.integers(0, 2))
    def test_split_preserves_values(self, xs, ys, ps, axis):
        """De Casteljau halves evaluate to the same polynomial, reparametrised."""
        space = HypercubeSpace(3)
        a, b = space.property_set(xs), space.property_set(ys)
        coeffs = power_tensor_to_bernstein(safety_gap_tensor(a, b))
        left, right = bernstein_split(coeffs, axis)
        poly = safety_gap_polynomial(a, b)

        def eval_bernstein(c, point):
            # Evaluate a degree-2 tensor Bernstein form at a point of [0,1]^n.
            value = 0.0
            n = c.ndim
            basis = []
            for t in point:
                basis.append(((1 - t) ** 2, 2 * t * (1 - t), t**2))
            for idx in itertools.product(range(3), repeat=n):
                weight = c[idx]
                for i, j in enumerate(idx):
                    weight *= basis[i][j]
                value += weight
            return value

        point = list(ps)
        left_point = list(point)
        left_point[axis] = point[axis] / 2.0
        right_point = list(point)
        right_point[axis] = 0.5 + point[axis] / 2.0
        assert eval_bernstein(left, point) == pytest.approx(
            poly(left_point), abs=1e-9
        )
        assert eval_bernstein(right, point) == pytest.approx(
            poly(right_point), abs=1e-9
        )


class TestDecisionProcedure:
    def test_disjoint_sets_safe(self):
        space = HypercubeSpace(3)
        a = space.property_set(["100"])
        b = space.property_set(["011", "010"])
        assert decide_product_safety(a, b).is_safe

    def test_subset_disclosure_unsafe_with_witness(self):
        space = HypercubeSpace(3)
        a = space.property_set(["100", "101", "110", "111"])
        b = space.property_set(["100"])
        verdict = decide_product_safety(a, b)
        assert verdict.is_unsafe
        witness = verdict.witness
        gap = witness.prob(a) * witness.prob(b) - witness.prob(a & b)
        assert gap < -1e-9

    def test_agrees_with_grid_search(self):
        """Exhaustive 11³ grid scan agrees with the decision on random pairs."""
        space = HypercubeSpace(3)
        grid = np.linspace(0.0, 1.0, 11)
        for a, b in random_pairs(space, 40, seed=9, allow_empty=True):
            verdict = decide_product_safety(a, b)
            assert verdict.is_decided
            poly = safety_gap_polynomial(a, b)
            grid_min = min(
                poly([x, y, z]) for x in grid for y in grid for z in grid
            )
            if verdict.is_safe:
                assert grid_min >= -1e-8, (a, b)
            else:
                witness = verdict.witness
                gap = witness.prob(a) * witness.prob(b) - witness.prob(a & b)
                assert gap < -1e-9, (a, b)

    def test_boundary_zero_minimum_is_safe(self):
        """Pairs with gap ≡ 0 (independent events) decide SAFE, not UNKNOWN."""
        space = HypercubeSpace(4)
        a = space.coordinate_set(1)
        b = space.coordinate_set(3)
        verdict = decide_product_safety(a, b)
        assert verdict.is_safe

    def test_remark_5_12_pair_is_safe(self):
        space = HypercubeSpace(3)
        a = space.property_set(["011", "100", "110", "111"])
        b = space.property_set(["010", "101", "110", "111"])
        assert decide_product_safety(a, b).is_safe

    def test_budget_exhaustion_reports_unknown(self):
        space = HypercubeSpace(3)
        a = space.property_set(["011", "100", "110", "111"])
        b = space.property_set(["010", "101", "110", "111"])
        verdict = decide_product_safety(a, b, max_boxes=1)
        assert not verdict.is_decided

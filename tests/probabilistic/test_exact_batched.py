"""Equivalence and soundness tests for the frontier-batched Bernstein kernel.

The batched kernel must be decision-equivalent to the scalar kernel: same
verdict on every pair, witnesses that genuinely violate safety (witness
*points* may differ — subdivision tie order is the one permitted
divergence), and UNKNOWN lower bounds that agree to tolerance.  The lazy
split-axis scan must reproduce the full argmax exactly, first index winning
ties.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.algebraic.encode import safety_gap_tensor
from repro.core import HypercubeSpace
from repro.probabilistic import (
    ProductDistribution,
    decide_nonnegative_on_box,
    decide_nonnegative_on_box_batched,
    decide_product_safety,
)
from repro.perf.bench import quadratic_well_tensor
from repro.probabilistic.exact import (
    _lazy_split_axes,
    _split_axes_batch,
    _split_axis,
    _Workspace,
)
from repro.runtime import Budget
from tests.conftest import random_pairs

#: Pairs per dimension; totals 202 seeded (A, B) pairs over n ∈ {2..8}.
PAIR_COUNTS = {2: 40, 3: 40, 4: 40, 5: 30, 6: 25, 7: 15, 8: 12}

MAX_BOXES = 4096
ATOL = 1e-9


def exact_gap(space: HypercubeSpace, a, b, point: np.ndarray) -> float:
    dist = ProductDistribution(space, np.clip(point, 0.0, 1.0))
    return dist.prob(a) * dist.prob(b) - dist.prob(a & b)


class TestKernelEquivalence:
    @pytest.mark.parametrize("n", sorted(PAIR_COUNTS))
    def test_batched_equals_scalar_on_random_pairs(self, n):
        space = HypercubeSpace(n)
        pairs = random_pairs(space, PAIR_COUNTS[n], seed=700 + n, allow_empty=True)
        for a, b in pairs:
            tensor = safety_gap_tensor(a, b)
            scalar = decide_nonnegative_on_box(tensor, atol=ATOL, max_boxes=MAX_BOXES)
            batched = decide_nonnegative_on_box_batched(
                tensor, atol=ATOL, max_boxes=MAX_BOXES
            )
            assert batched.nonnegative == scalar.nonnegative, (n, a.mask, b.mask)
            if scalar.nonnegative is False:
                # Witness points may differ (tie order); both must violate.
                assert exact_gap(space, a, b, scalar.witness) < -ATOL
                assert exact_gap(space, a, b, batched.witness) < -ATOL
            elif scalar.nonnegative is None:
                assert batched.lower_bound == pytest.approx(
                    scalar.lower_bound, abs=1e-6
                )

    @pytest.mark.parametrize("n,seed", [(4, 0), (5, 1), (6, 2)])
    @pytest.mark.parametrize("eps", [1e-7, -1e-7])
    def test_deep_subdivision_wells_agree(self, n, seed, eps):
        tensor = quadratic_well_tensor(n, seed, eps)
        scalar = decide_nonnegative_on_box(tensor, atol=ATOL, max_boxes=3000)
        batched = decide_nonnegative_on_box_batched(tensor, atol=ATOL, max_boxes=3000)
        assert batched.nonnegative == scalar.nonnegative
        if scalar.nonnegative is None:
            # Both certified bounds must lie below the true minimum (= eps).
            assert scalar.lower_bound <= eps
            assert batched.lower_bound <= eps

    def test_boxes_explored_matches_on_shallow_decisions(self):
        # Root-level decisions (certified or witnessed without subdividing)
        # must report identical boxes_explored in both kernels.
        space = HypercubeSpace(3)
        for a, b in random_pairs(space, 30, seed=3, allow_empty=True):
            tensor = safety_gap_tensor(a, b)
            scalar = decide_nonnegative_on_box(tensor, atol=ATOL, max_boxes=2)
            batched = decide_nonnegative_on_box_batched(tensor, atol=ATOL, max_boxes=2)
            if scalar.boxes_explored <= 1:
                assert batched.boxes_explored == scalar.boxes_explored

    def test_product_safety_kernel_knob(self):
        space = HypercubeSpace(3)
        a = space.property_set([1, 3, 5])
        b = space.property_set([2, 3, 7])
        for kernel in ("batched", "scalar"):
            verdict = decide_product_safety(a, b, kernel=kernel)
            assert verdict.status is not None
        with pytest.raises(ValueError):
            decide_product_safety(a, b, kernel="vectorised-harder")


class TestBudgetExpiry:
    def make_clock(self, step: float):
        ticks = itertools.count()
        return lambda: next(ticks) * step

    def test_batched_returns_sound_unknown_mid_round(self):
        tensor = quadratic_well_tensor(6, seed=5, eps=1e-7)
        # Each clock read advances 1s; a 10s budget expires after a handful
        # of frontier rounds, far from the 200k max_boxes ceiling.
        budget = Budget(10.0, clock=self.make_clock(1.0))
        decision = decide_nonnegative_on_box_batched(tensor, atol=ATOL, budget=budget)
        assert decision.nonnegative is None
        assert decision.witness is None
        assert 0 < decision.boxes_explored < 200_000
        # Sound: the reported bound never exceeds the true minimum (= eps).
        assert decision.lower_bound <= 1e-7

    def test_budget_dead_on_arrival_does_no_work(self):
        tensor = quadratic_well_tensor(5, seed=6, eps=1e-7)
        budget = Budget(0.5, clock=self.make_clock(1.0))  # expired at 1st poll
        decision = decide_nonnegative_on_box_batched(tensor, atol=ATOL, budget=budget)
        assert decision.nonnegative is None
        assert decision.boxes_explored == 0

    def test_unlimited_budget_never_stops_the_search(self):
        tensor = quadratic_well_tensor(4, seed=7, eps=1e-7)
        no_budget = decide_nonnegative_on_box_batched(tensor, atol=ATOL, max_boxes=800)
        unlimited = decide_nonnegative_on_box_batched(
            tensor, atol=ATOL, max_boxes=800, budget=Budget.unlimited()
        )
        assert unlimited.nonnegative == no_budget.nonnegative
        assert unlimited.boxes_explored == no_budget.boxes_explored


class TestLazySplitAxes:
    def run_lazy(self, sel: np.ndarray, ubs: np.ndarray, n: int) -> np.ndarray:
        count, size = sel.shape
        ws = _Workspace(count, size, n, 2**n)
        return np.array(_lazy_split_axes(sel, ubs, ws, n))

    def true_variations(self, sel: np.ndarray, n: int) -> np.ndarray:
        shaped = sel.reshape((sel.shape[0],) + (3,) * n)
        out = np.empty((sel.shape[0], n))
        for axis in range(n):
            view = np.moveaxis(shaped, 1 + axis, 1)
            out[:, axis] = (
                np.abs(view[:, 1:] - view[:, :-1]).reshape(sel.shape[0], -1).max(axis=1)
            )
        return out

    @pytest.mark.parametrize("n", [2, 4, 6])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_full_argmax_with_exact_bounds(self, n, seed):
        rng = np.random.default_rng(seed)
        sel = rng.normal(size=(17, 3**n))
        variations = self.true_variations(sel, n)
        expected = np.argmax(variations, axis=1)
        got = self.run_lazy(sel, variations.copy(), n)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("n", [3, 5])
    def test_matches_full_argmax_with_inflated_bounds(self, n):
        rng = np.random.default_rng(42)
        sel = rng.normal(size=(23, 3**n))
        variations = self.true_variations(sel, n)
        expected = np.argmax(variations, axis=1)
        # Any per-entry inflation keeps the bounds valid; the scan must
        # still land on the exact argmax.
        ubs = variations * rng.uniform(1.0, 3.0, size=variations.shape)
        got = self.run_lazy(sel, ubs, n)
        np.testing.assert_array_equal(got, expected)

    def test_ties_resolve_to_first_axis(self):
        # T(x, y) = g(x) + g(y) has exactly equal variation on both axes;
        # np.argmax picks the first index, and so must the lazy scan.
        n = 2
        g = np.array([0.0, 1.0, -0.5])
        sel = (g[:, None] + g[None, :]).reshape(1, -1).repeat(5, axis=0)
        variations = self.true_variations(sel, n)
        assert variations[0, 0] == variations[0, 1]
        got = self.run_lazy(sel.copy(), variations.copy(), n)
        np.testing.assert_array_equal(got, np.zeros(5, dtype=got.dtype))

    def test_agrees_with_reference_batch_scan(self):
        rng = np.random.default_rng(9)
        n = 4
        sel = rng.normal(size=(11, 3**n))
        shaped = sel.reshape((11,) + (3,) * n)
        expected = _split_axes_batch(shaped)
        got = self.run_lazy(sel, self.true_variations(sel, n), n)
        np.testing.assert_array_equal(got, expected)

    def test_tightens_bounds_in_place(self):
        rng = np.random.default_rng(10)
        n = 3
        sel = rng.normal(size=(7, 3**n))
        variations = self.true_variations(sel, n)
        ubs = variations * 2.0
        self.run_lazy(sel, ubs, n)
        # Measured axes collapse to their true variation; none may ever
        # drop below it (that would be an unsound bound).
        assert np.all(ubs >= variations - 1e-12)
        assert np.any(ubs < variations * 2.0 - 1e-12)


class TestScalarSplitAxis:
    @pytest.mark.parametrize("n", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_matches_per_axis_reference(self, n, seed):
        rng = np.random.default_rng(seed)
        coeffs = rng.normal(size=(3,) * n)
        reference = [
            float(np.abs(np.diff(coeffs, axis=axis)).max()) for axis in range(n)
        ]
        assert _split_axis(coeffs) == int(np.argmax(reference))

"""Tests for the Section 5.1 product-family criteria.

Soundness is cross-validated against the rigorous Bernstein decision
procedure; the implications of Theorem 5.11 are verified exhaustively for
n = 3 and on random pairs for n = 4.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HypercubeSpace, safety_gap
from repro.probabilistic import (
    box_necessary_criterion,
    cancellation_criterion,
    critical_coordinates,
    decide_product_safety,
    independence_holds,
    miklau_suciu_criterion,
    monotonicity_criterion,
)
from tests.conftest import random_pairs

subsets3 = st.sets(st.integers(0, 7))


def exact_safe(a, b) -> bool:
    verdict = decide_product_safety(a, b)
    assert verdict.is_decided
    return verdict.is_safe


class TestCriticalCoordinates:
    def test_examples(self):
        space = HypercubeSpace(3)
        x1 = space.coordinate_set(1)
        assert critical_coordinates(x1) == frozenset([1])
        assert critical_coordinates(space.full) == frozenset()
        assert critical_coordinates(space.empty) == frozenset()
        mixed = x1 & space.coordinate_set(3)
        assert critical_coordinates(mixed) == frozenset([1, 3])

    @given(subsets3)
    def test_membership_determined_by_critical_coords(self, xs):
        """Flipping a non-critical coordinate never changes membership."""
        space = HypercubeSpace(3)
        event = space.property_set(xs)
        critical = critical_coordinates(event)
        for w in space.worlds():
            for i in range(1, 4):
                if i not in critical:
                    flipped = w ^ (1 << (i - 1))
                    assert (w in event) == (flipped in event)


class TestMiklauSuciu:
    def test_disjoint_coordinates_independent(self):
        space = HypercubeSpace(4)
        a = space.coordinate_set(1) & space.coordinate_set(2)
        b = space.coordinate_set(3) | space.coordinate_set(4)
        assert miklau_suciu_criterion(a, b).holds
        assert independence_holds(a, b)

    def test_shared_coordinate_fails(self):
        space = HypercubeSpace(3)
        a = space.coordinate_set(1)
        b = space.coordinate_set(1) | space.coordinate_set(2)
        result = miklau_suciu_criterion(a, b)
        assert not result.holds
        assert result.details["shared_critical_coordinates"] == [1]

    def test_section_5_1_example(self):
        """Safe_{Π_m⁰}(X₁, X̄₁∪X₂) holds but X₁ ⊥ (X̄₁∪X₂) does not."""
        space = HypercubeSpace(2)
        x1, x2 = space.coordinate_set(1), space.coordinate_set(2)
        a = x1
        b = ~x1 | x2
        assert not independence_holds(a, b)
        assert exact_safe(a, b)

    def test_independence_semantics(self):
        """When the criterion holds, P[A]P[B] = P[AB] for random products."""
        from repro.probabilistic import ProductDistribution

        space = HypercubeSpace(4)
        a = space.coordinate_set(1)
        b = space.coordinate_set(3) & space.coordinate_set(4)
        assert miklau_suciu_criterion(a, b).holds
        rng = np.random.default_rng(0)
        for _ in range(20):
            dist = ProductDistribution.random(space, rng)
            gap = dist.prob(a) * dist.prob(b) - dist.prob(a & b)
            assert gap == pytest.approx(0.0, abs=1e-12)


class TestMonotonicityCriterion:
    def test_up_down_pair(self):
        from repro.core import down_closure, up_closure

        space = HypercubeSpace(3)
        a = up_closure(space.property_set(["110"]))
        b = down_closure(space.property_set(["001"]))
        result = monotonicity_criterion(a, b)
        assert result.holds and result.details["mask"] == 0

    def test_flipped_pair_found(self):
        from repro.core import down_closure, up_closure, xor_mask

        space = HypercubeSpace(3)
        a = xor_mask(0b011, up_closure(space.property_set(["110"])))
        b = xor_mask(0b011, down_closure(space.property_set(["001"])))
        assert monotonicity_criterion(a, b).holds

    def test_soundness_on_random_pairs(self):
        space = HypercubeSpace(3)
        for a, b in random_pairs(space, 120, seed=1, allow_empty=True):
            if monotonicity_criterion(a, b).holds:
                assert exact_safe(a, b), (a, b)


class TestCancellationCriterion:
    def test_remark_5_12_fails_criterion_but_safe(self):
        space = HypercubeSpace(3)
        a = space.property_set(["011", "100", "110", "111"])
        b = space.property_set(["010", "101", "110", "111"])
        result = cancellation_criterion(a, b)
        assert not result.holds
        assert result.details["violated_match_vector"] == "***"
        assert result.details["positive_pairs"] == 0
        assert result.details["negative_pairs"] == 2
        # ... and yet the pair is safe: the criterion is not necessary.
        assert exact_safe(a, b)

    def test_soundness_exhaustive_n2(self):
        space = HypercubeSpace(2)
        worlds = list(space.worlds())
        for a_bits in range(16):
            for b_bits in range(16):
                a = space.property_set([w for w in worlds if (a_bits >> w) & 1])
                b = space.property_set([w for w in worlds if (b_bits >> w) & 1])
                if cancellation_criterion(a, b).holds:
                    assert exact_safe(a, b), (a_bits, b_bits)

    def test_soundness_on_random_pairs_n4(self):
        space = HypercubeSpace(4)
        hits = 0
        for a, b in random_pairs(space, 80, seed=2, allow_empty=True):
            if cancellation_criterion(a, b).holds:
                hits += 1
                assert exact_safe(a, b), (a, b)
        assert hits > 0  # the check must not be vacuous


class TestTheorem511:
    """Miklau–Suciu or monotonicity ⇒ cancellation."""

    def test_exhaustive_n3_implications(self):
        space = HypercubeSpace(3)
        worlds = list(space.worlds())
        checked = 0
        for a_bits, b_bits in itertools.product(range(256), repeat=2):
            if a_bits % 17 or b_bits % 13:
                continue  # systematic subsample to keep runtime sane
            a = space.property_set([w for w in worlds if (a_bits >> w) & 1])
            b = space.property_set([w for w in worlds if (b_bits >> w) & 1])
            ms = miklau_suciu_criterion(a, b).holds
            mono = monotonicity_criterion(a, b).holds
            canc = cancellation_criterion(a, b).holds
            if ms or mono:
                assert canc, (a_bits, b_bits)
            checked += 1
        assert checked > 100

    def test_random_n4_implications(self):
        space = HypercubeSpace(4)
        for a, b in random_pairs(space, 150, seed=3, allow_empty=True):
            if miklau_suciu_criterion(a, b).holds or monotonicity_criterion(a, b).holds:
                assert cancellation_criterion(a, b).holds, (a, b)

    def test_cancellation_strictly_stronger(self):
        """Some pair passes cancellation but fails both weaker criteria."""
        space = HypercubeSpace(2)
        found = False
        worlds = list(space.worlds())
        for a_bits in range(16):
            for b_bits in range(16):
                a = space.property_set([w for w in worlds if (a_bits >> w) & 1])
                b = space.property_set([w for w in worlds if (b_bits >> w) & 1])
                if (
                    cancellation_criterion(a, b).holds
                    and not miklau_suciu_criterion(a, b).holds
                    and not monotonicity_criterion(a, b).holds
                ):
                    found = True
        assert found


class TestBoxNecessaryCriterion:
    def test_failure_gives_verified_witness(self):
        space = HypercubeSpace(2)
        a = space.property_set(["10", "11"])
        b = space.property_set(["10"])  # B ⊆ A: clearly unsafe
        result = box_necessary_criterion(a, b)
        assert not result.holds
        witness = result.witness
        gap = witness.prob(a) * witness.prob(b) - witness.prob(a & b)
        assert gap < -1e-9

    def test_soundness_on_random_pairs(self):
        """Criterion fails ⇒ pair really unsafe; witness gap always < 0."""
        space = HypercubeSpace(3)
        failures = 0
        for a, b in random_pairs(space, 120, seed=4, allow_empty=True):
            result = box_necessary_criterion(a, b)
            if not result.holds:
                failures += 1
                witness = result.witness
                gap = witness.prob(a) * witness.prob(b) - witness.prob(a & b)
                assert gap < 0, (a, b)
                assert not exact_safe(a, b), (a, b)
        assert failures > 0

    def test_completeness_direction_is_absent(self):
        """Prop 5.10 is only necessary: an unsafe pair can pass every box.

        The fixed pair below (found by search) satisfies the box criterion
        for all 27 match-vectors yet has a strictly negative gap somewhere
        in the interior of the Bernoulli box.
        """
        space = HypercubeSpace(3)
        worlds = list(space.worlds())
        a_bits, b_bits = 164, 200
        a = space.property_set([w for w in worlds if (a_bits >> w) & 1])
        b = space.property_set([w for w in worlds if (b_bits >> w) & 1])
        assert box_necessary_criterion(a, b).holds
        assert not exact_safe(a, b)

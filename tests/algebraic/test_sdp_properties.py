"""Property-based tests for the mini SDP solver's building blocks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import AffineSystem, project_psd, solve_psd_feasibility


@st.composite
def symmetric_matrices(draw, size=4):
    entries = draw(
        st.lists(
            st.floats(-5.0, 5.0, allow_nan=False),
            min_size=size * size,
            max_size=size * size,
        )
    )
    m = np.array(entries).reshape(size, size)
    return 0.5 * (m + m.T)


class TestPsdProjectionProperties:
    @settings(max_examples=60)
    @given(symmetric_matrices())
    def test_projection_is_psd(self, m):
        eigenvalues = np.linalg.eigvalsh(project_psd(m))
        assert np.all(eigenvalues >= -1e-10)

    @settings(max_examples=60)
    @given(symmetric_matrices())
    def test_projection_idempotent(self, m):
        once = project_psd(m)
        assert np.allclose(project_psd(once), once, atol=1e-10)

    @settings(max_examples=40)
    @given(symmetric_matrices(), symmetric_matrices())
    def test_projection_is_nearest_among_samples(self, m, candidate):
        """Frobenius optimality: no sampled PSD matrix is closer to m than
        its projection (the projection theorem, spot-checked)."""
        projected = project_psd(m)
        psd_candidate = project_psd(candidate)
        assert np.linalg.norm(m - projected) <= np.linalg.norm(
            m - psd_candidate
        ) + 1e-9

    @settings(max_examples=40)
    @given(symmetric_matrices())
    def test_projection_never_increases_trace_gap(self, m):
        """The projection only clips negative eigenvalues: trace(P) equals
        the sum of the positive eigenvalues of m."""
        projected = project_psd(m)
        eigenvalues = np.linalg.eigvalsh(m)
        assert np.trace(projected) == pytest.approx(
            float(np.clip(eigenvalues, 0, None).sum()), abs=1e-8
        )


class TestAffineProjectionProperties:
    @settings(max_examples=40)
    @given(
        st.lists(st.floats(-3, 3, allow_nan=False), min_size=5, max_size=5),
        st.lists(st.floats(-3, 3, allow_nan=False), min_size=5, max_size=5),
    )
    def test_projection_minimises_distance(self, vector, other):
        system = AffineSystem(5)
        system.add_constraint({0: 1.0, 2: 2.0}, 1.5)
        system.add_constraint({1: -1.0, 4: 1.0}, 0.25)
        v = np.array(vector)
        projected = system.project(v)
        assert system.residual_norm(projected) < 1e-9
        # Any other point of the subspace is at least as far away.
        candidate = system.project(np.array(other))
        assert np.linalg.norm(v - projected) <= np.linalg.norm(v - candidate) + 1e-9

    def test_overdetermined_consistent_system(self):
        system = AffineSystem(3)
        system.add_constraint({0: 1.0}, 1.0)
        system.add_constraint({0: 2.0}, 2.0)  # redundant but consistent
        system.add_constraint({1: 1.0, 2: 1.0}, 0.0)
        assert system.is_consistent()
        projected = system.project(np.zeros(3))
        assert projected[0] == pytest.approx(1.0)


class TestFeasibilityEndToEnd:
    def test_multi_block(self):
        """Two blocks, coupled constraint: trace(Q1) + trace(Q2) = 3."""
        system = AffineSystem(4 + 1)
        system.add_constraint({0: 1.0, 3: 1.0, 4: 1.0}, 3.0)
        result = solve_psd_feasibility([2, 1], system, tolerance=1e-8)
        assert result.feasible
        q1, q2 = result.matrices
        assert np.trace(q1) + q2[0, 0] == pytest.approx(3.0, abs=1e-6)
        assert np.all(np.linalg.eigvalsh(q1) >= -1e-9)
        assert q2[0, 0] >= -1e-9

    def test_dimension_mismatch_rejected(self):
        system = AffineSystem(10)
        with pytest.raises(ValueError):
            solve_psd_feasibility([2], system)

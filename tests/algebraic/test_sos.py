"""Tests for the SDP solver, Σ² membership, and box certificates (§6.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebraic import (
    AffineSystem,
    Polynomial,
    certify_box_nonnegative,
    certify_gap_nonnegative,
    handelman_certificate,
    is_sos,
    motzkin_artin_lift,
    motzkin_polynomial,
    project_psd,
    safety_gap_polynomial,
    solve_psd_feasibility,
    sos_decompose,
)
from repro.algebraic.sos import BoxCertificate, HandelmanCertificate
from repro.core import HypercubeSpace
from repro.exceptions import CertificateError


def var(i, n):
    return Polynomial.variable(i, n)


class TestPsdProjection:
    def test_psd_matrix_unchanged(self):
        m = np.array([[2.0, 1.0], [1.0, 2.0]])
        assert np.allclose(project_psd(m), m)

    def test_negative_definite_projects_to_zero(self):
        m = -np.eye(3)
        assert np.allclose(project_psd(m), 0.0)

    def test_result_is_psd(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            m = rng.normal(size=(4, 4))
            eigenvalues = np.linalg.eigvalsh(project_psd(m))
            assert np.all(eigenvalues >= -1e-12)


class TestAffineSystem:
    def test_projection_satisfies_constraints(self):
        system = AffineSystem(3)
        system.add_constraint({0: 1.0, 1: 1.0}, 2.0)
        system.add_constraint({2: 1.0}, 5.0)
        projected = system.project(np.zeros(3))
        assert system.residual_norm(projected) < 1e-12

    def test_inconsistent_detection(self):
        system = AffineSystem(2)
        system.add_constraint({0: 1.0}, 1.0)
        system.add_constraint({0: 1.0}, 2.0)
        assert not system.is_consistent()

    def test_projection_is_idempotent(self):
        system = AffineSystem(4)
        system.add_constraint({0: 1.0, 3: -2.0}, 1.0)
        rng = np.random.default_rng(1)
        v = rng.normal(size=4)
        once = system.project(v)
        assert np.allclose(system.project(once), once)


class TestSolvePsdFeasibility:
    def test_simple_feasible_system(self):
        # Find a PSD 2x2 matrix with trace 2 and off-diagonal sum 1.
        system = AffineSystem(4)
        system.add_constraint({0: 1.0, 3: 1.0}, 2.0)
        system.add_constraint({1: 1.0, 2: 1.0}, 1.0)
        result = solve_psd_feasibility([2], system, tolerance=1e-8)
        assert result.feasible
        matrix = result.matrices[0]
        assert np.all(np.linalg.eigvalsh(matrix) >= -1e-9)
        assert matrix[0, 0] + matrix[1, 1] == pytest.approx(2.0, abs=1e-7)

    def test_infeasible_system_returns_none(self):
        # Trace of a PSD matrix cannot be negative.
        system = AffineSystem(4)
        system.add_constraint({0: 1.0, 3: 1.0}, -1.0)
        result = solve_psd_feasibility([2], system, max_iterations=600)
        assert not result.feasible


class TestSOSMembership:
    def test_perfect_square(self):
        x, y = var(0, 2), var(1, 2)
        decomposition = sos_decompose(x * x - 2 * x * y + y * y)
        assert decomposition is not None
        squares = decomposition.squares()
        assert squares  # at least one square
        # The squares really sum back to the target.
        total = Polynomial(2)
        for s in squares:
            total = total + s * s
        assert total.almost_equal(x * x - 2 * x * y + y * y, tol=1e-5)

    def test_sum_of_two_squares(self):
        x, y = var(0, 2), var(1, 2)
        assert is_sos(x**2 + y**2 + 2.0)

    def test_negative_constant_rejected(self):
        assert not is_sos(Polynomial.constant(2, -1.0))

    def test_odd_degree_rejected(self):
        x = var(0, 1)
        assert not is_sos(x**3)

    def test_indefinite_quadratic_rejected(self):
        x, y = var(0, 2), var(1, 2)
        assert not is_sos(x * y)

    def test_motzkin_not_sos(self):
        """Motzkin's polynomial: nonnegative but not Σ² (Section 6.2)."""
        assert not is_sos(motzkin_polynomial())

    def test_artin_lift_is_sos(self):
        """(x²+y²+z²)·M is Σ² — Hilbert's 17th problem in action.

        The lift sits on a thin face of the SOS cone, so give the splitting
        solver a larger iteration budget than the default.
        """
        assert is_sos(motzkin_artin_lift(), max_iterations=40000)


class TestBoxCertificates:
    def test_hiv_gap_certified(self):
        space = HypercubeSpace(2)
        a = space.coordinate_set(1)
        b = ~a | space.coordinate_set(2)
        gap = safety_gap_polynomial(a, b)
        certificate = certify_box_nonnegative(gap)
        assert certificate is not None
        certificate.verify(gap)

    def test_remark_5_12_gap_certified(self):
        """The pair that defeats every combinatorial criterion gets an
        algebraic certificate — the paper's motivation for Section 6."""
        space = HypercubeSpace(3)
        a = space.property_set(["011", "100", "110", "111"])
        b = space.property_set(["010", "101", "110", "111"])
        certificate = certify_gap_nonnegative(a, b)
        assert certificate is not None

    def test_unsafe_gap_not_certified(self):
        space = HypercubeSpace(3)
        a = space.property_set(["100", "101", "110", "111"])
        b = space.property_set(["100"])
        assert certify_gap_nonnegative(a, b) is None

    def test_verify_rejects_wrong_target(self):
        space = HypercubeSpace(2)
        a = space.coordinate_set(1)
        b = ~a | space.coordinate_set(2)
        gap = safety_gap_polynomial(a, b)
        certificate = certify_box_nonnegative(gap)
        assert certificate is not None
        with pytest.raises(CertificateError):
            certificate.verify(gap + 1.0)

    def test_zero_gap_certified(self):
        space = HypercubeSpace(2)
        a = space.coordinate_set(1)
        b = space.coordinate_set(2)
        certificate = certify_gap_nonnegative(a, b)
        assert certificate is not None


class TestHandelman:
    def test_product_of_constraints(self):
        # x(1-x)(1-y) is literally a Handelman product.
        x, y = var(0, 2), var(1, 2)
        poly = x * (1 - x) * (1 - y)
        certificate = handelman_certificate(poly)
        assert certificate is not None
        certificate.verify(poly)

    def test_negative_poly_rejected(self):
        assert handelman_certificate(Polynomial.constant(2, -1.0)) is None

    def test_too_high_degree_rejected(self):
        x = var(0, 1)
        assert handelman_certificate(x**3) is None

    def test_certificate_coefficients_nonnegative(self):
        x, y = var(0, 2), var(1, 2)
        certificate = handelman_certificate(x * (1 - x) + y * y)
        assert certificate is not None
        assert all(coef >= 0 for _, coef in certificate.coefficients)

    def test_soundness_against_exact_decision(self):
        """Any certified gap is indeed safe per Bernstein branch-and-bound."""
        from repro.probabilistic import decide_product_safety
        from tests.conftest import random_pairs

        space = HypercubeSpace(3)
        certified = 0
        for a, b in random_pairs(space, 30, seed=41, allow_empty=True):
            gap = safety_gap_polynomial(a, b)
            if handelman_certificate(gap) is not None:
                certified += 1
                assert decide_product_safety(a, b).is_safe, (a, b)
        assert certified > 0

"""Tests for K(A,B,Π) programs (Prop 6.1), Positivstellensatz (Thm 6.7),
Motzkin examples, and the MAX-CUT reduction (Thm 6.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import (
    Graph,
    Polynomial,
    PolynomialProgram,
    amgm_gap,
    cone_products,
    cut_polynomial,
    feasibility_by_sampling,
    gap_strict_inequality,
    k_program,
    k_set_is_empty,
    log_supermodular_constraints,
    maxcut_reduction,
    monoid_members,
    motzkin_value,
    product_constraints,
    reduced_product_program,
    reduction_is_faithful,
    refute_feasibility,
    refutes_emptiness_of_interval,
    safe_under_graph_family,
    simplex_sampler,
)
from repro.core import Distribution, HypercubeSpace
from repro.probabilistic import decide_product_safety, is_log_supermodular


class TestPolynomialProgram:
    def test_satisfaction(self):
        x = Polynomial.variable(0, 1)
        program = PolynomialProgram(nvars=1)
        program.add_inequality(x)  # x ≥ 0
        program.add_equality(x * x - x)  # x ∈ {0, 1}
        program.add_strict(x)  # x > 0
        assert program.is_satisfied([1.0])
        assert not program.is_satisfied([0.0])
        assert not program.is_satisfied([0.5])

    def test_violation_metric(self):
        x = Polynomial.variable(0, 1)
        program = PolynomialProgram(nvars=1)
        program.add_inequality(x)
        assert program.violation([-0.5]) == pytest.approx(0.5)
        assert program.violation([0.5]) == 0.0

    def test_combined_equality(self):
        x = Polynomial.variable(0, 2)
        y = Polynomial.variable(1, 2)
        program = PolynomialProgram(nvars=2)
        program.add_equality(x - 1)
        program.add_equality(y + 1)
        combined = program.combined_equality()
        assert combined([1.0, -1.0]) == pytest.approx(0.0)
        assert combined([0.0, 0.0]) == pytest.approx(2.0)

    def test_arity_check(self):
        program = PolynomialProgram(nvars=2)
        with pytest.raises(ValueError):
            program.add_inequality(Polynomial.variable(0, 3))


class TestKProgram:
    def test_prop_6_1_unsafe_pair_feasible(self):
        """Unsafe (A,B) ⇒ K(A,B,Π) has a point — the violating prior."""
        space = HypercubeSpace(2)
        a = space.property_set(["10", "11"])
        b = space.property_set(["10"])
        program = k_program(a, b, [])
        point = feasibility_by_sampling(
            program, samples=4000, sampler=simplex_sampler(program.nvars)
        )
        assert point is not None
        # The point is a genuine violating distribution.
        dist = Distribution(space, point)
        assert dist.prob(a & b) > dist.prob(a) * dist.prob(b)

    def test_prop_6_1_safe_pair_sampled_empty(self):
        """The §1.1 pair is safe for ALL priors: no sample ever violates."""
        space = HypercubeSpace(2)
        a = space.coordinate_set(1)
        b = ~a | space.coordinate_set(2)
        program = k_program(a, b, [])
        assert (
            feasibility_by_sampling(
                program, samples=4000, sampler=simplex_sampler(program.nvars)
            )
            is None
        )

    def test_supermodular_constraints_recognise_members(self):
        space = HypercubeSpace(2)
        constraints = log_supermodular_constraints(space)
        diagonal = Distribution.from_mapping(space, {"00": 0.5, "11": 0.5})
        anti = Distribution.from_mapping(space, {"01": 0.5, "10": 0.5})
        assert all(c(diagonal.probs) >= -1e-12 for c in constraints)
        assert any(c(anti.probs) < -1e-9 for c in constraints)

    def test_product_constraints_both_directions(self):
        space = HypercubeSpace(2)
        constraints = product_constraints(space)
        from repro.probabilistic import dense_product

        member = dense_product(space, [0.3, 0.8])
        assert all(abs(c(member.probs)) <= 1e-12 for c in constraints)

    def test_gap_strict_inequality_values(self):
        space = HypercubeSpace(2)
        a = space.property_set(["10", "11"])
        b = space.property_set(["10"])
        strict = gap_strict_inequality(a, b)
        dist = Distribution.from_mapping(space, {"10": 0.5, "01": 0.5})
        expected = dist.prob(a & b) - dist.prob(a) * dist.prob(b)
        assert strict(dist.probs) == pytest.approx(expected)


class TestReducedProgram:
    def test_section_6_1_shape(self):
        """n variables and n+1 inequalities, as the paper counts."""
        space = HypercubeSpace(4)
        a = space.coordinate_set(1)
        b = space.coordinate_set(2)
        program = reduced_product_program(a, b)
        assert program.nvars == 4
        assert len(program.inequalities) == 4
        assert len(program.strict_inequalities) == 1

    def test_feasibility_tracks_safety(self):
        from tests.conftest import random_pairs

        space = HypercubeSpace(3)
        rng = np.random.default_rng(5)
        for a, b in random_pairs(space, 25, seed=51, allow_empty=True):
            program = reduced_product_program(a, b)
            point = feasibility_by_sampling(program, samples=1500, rng=rng)
            if point is not None:
                # Found a violating Bernoulli vector ⇒ genuinely unsafe.
                assert decide_product_safety(a, b).is_unsafe, (a, b)


class TestPositivstellensatz:
    def test_cone_products(self):
        x = Polynomial.variable(0, 1)
        products = cone_products([x, 1 - x], max_factors=2)
        assert len(products) == 4  # ∅, {0}, {1}, {0,1}
        indexed = dict(products)
        assert indexed[(0, 1)].almost_equal(x * (1 - x))

    def test_monoid_members(self):
        x = Polynomial.variable(0, 1)
        members = monoid_members([x - 1], max_degree=3, nvars=1)
        degrees = sorted(p.total_degree() for _, p in members)
        assert degrees == [0, 1, 2, 3]

    def test_interval_refutation(self):
        """The 'hello world' refutation: [0.7, ∞) ∩ (−∞, 0.3] = ∅."""
        refutation = refutes_emptiness_of_interval(0.3, 0.7)
        assert refutation is not None
        assert refutation.residual < 1e-6

    def test_refutation_verification_catches_tampering(self):
        from repro.exceptions import CertificateError

        refutation = refutes_emptiness_of_interval(0.0, 1.0)
        assert refutation is not None
        x = Polynomial.variable(0, 1)
        with pytest.raises(CertificateError):
            # Verifying against the wrong constraint set must fail.
            refutation.verify([x - 100.0, -100.0 - x], [])

    def test_no_refutation_for_feasible_program(self):
        x = Polynomial.variable(0, 1)
        program = PolynomialProgram(nvars=1)
        program.add_inequality(x)  # feasible: x ≥ 0
        assert refute_feasibility(program, degree_bound=1) is None

    def test_boolean_contradiction_refuted(self):
        """{x ≥ 1/2, x² = x, x ≤ 1/4} is empty; find a certificate."""
        x = Polynomial.variable(0, 1)
        program = PolynomialProgram(nvars=1)
        program.add_inequality(x - 0.5)
        program.add_inequality(0.25 - x)
        refutation = refute_feasibility(program, degree_bound=1)
        assert refutation is not None


class TestMotzkin:
    @given(
        st.floats(-3, 3, allow_nan=False),
        st.floats(-3, 3, allow_nan=False),
        st.floats(-3, 3, allow_nan=False),
    )
    def test_nonnegative_everywhere(self, x, y, z):
        assert motzkin_value(x, y, z) >= -1e-9

    @given(st.floats(-2, 2), st.floats(-2, 2), st.floats(-2, 2))
    def test_amgm_gap_nonnegative(self, x, y, z):
        assert amgm_gap(x, y, z) >= -1e-9

    def test_zero_at_unit_point(self):
        assert motzkin_value(1.0, 1.0, 1.0) == pytest.approx(0.0)


class TestMaxCutReduction:
    def test_graph_basics(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert g.cut_size([0, 1, 0, 1]) == 4
        size, side = g.max_cut()
        assert size == 4
        assert g.cut_size(side) == 4

    def test_graph_validation(self):
        with pytest.raises(ValueError):
            Graph(2, ((0, 0),))
        with pytest.raises(ValueError):
            Graph(2, ((0, 5),))

    def test_cut_polynomial_matches_cut_size(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        poly = cut_polynomial(g, 3)
        assert poly([0.0, 1.0, 0.0]) == pytest.approx(2.0)
        assert poly([1.0, 1.0, 1.0]) == pytest.approx(0.0)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reduction_faithful_on_random_graphs(self, seed):
        """K(A,B,Π_G) ≠ ∅ ⇔ maxcut(G) ≥ k, across all thresholds."""
        rng = np.random.default_rng(seed)
        g = Graph.random(5, 0.5, rng)
        for k in range(0, len(g.edges) + 2):
            assert reduction_is_faithful(g, k), (g.edges, k)

    def test_theorem_6_2_shape(self):
        """Degree ≤ 2 constraints, poly(N)-many of them."""
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        reduction = maxcut_reduction(g, 1)
        assert reduction.program.max_degree() <= 2
        assert reduction.program.n_constraints <= 2 * g.n_vertices + 4

    def test_safety_decides_maxcut(self):
        """Safe ⇔ maxcut < k: the hardness connection, concretely."""
        triangle = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        max_size, _ = triangle.max_cut()
        assert max_size == 2
        assert not safe_under_graph_family(maxcut_reduction(triangle, 2))
        assert safe_under_graph_family(maxcut_reduction(triangle, 3))

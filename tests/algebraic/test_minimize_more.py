"""Additional coverage for the §6.2 minimisation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebraic import (
    Polynomial,
    box_lower_bound,
    sampled_minimum,
    sos_lower_bound,
)


def var(i, n):
    return Polynomial.variable(i, n)


class TestSampledMinimum:
    def test_unconstrained_search(self):
        x, y = var(0, 2), var(1, 2)
        poly = (x - 3) ** 2 + (y + 2) ** 2 + 0.5
        assert sampled_minimum(poly, box=None) == pytest.approx(0.5, abs=1e-6)

    def test_constant_polynomial(self):
        poly = Polynomial.constant(2, 4.0)
        assert sampled_minimum(poly) == pytest.approx(4.0)

    def test_zero_variables(self):
        poly = Polynomial.constant(0, 2.5)
        assert sampled_minimum(poly) == 2.5

    def test_deterministic_under_rng(self):
        x = var(0, 1)
        poly = x**4 - x**2
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        assert sampled_minimum(poly, rng=rng1) == sampled_minimum(poly, rng=rng2)


class TestShorBoundEdges:
    def test_constant(self):
        result = sos_lower_bound(Polynomial.constant(1, 7.0), tolerance=1e-3)
        assert result is not None
        assert result.lower_bound == pytest.approx(7.0, abs=5e-3)

    def test_two_variable_coupled(self):
        x, y = var(0, 2), var(1, 2)
        poly = x**2 + y**2 - x * y + 1  # PSD quadratic form + 1, min 1 at origin
        result = sos_lower_bound(poly, tolerance=1e-3)
        assert result is not None
        assert result.lower_bound == pytest.approx(1.0, abs=5e-3)

    def test_bound_is_sound_even_when_loose(self):
        """Whatever λ comes back, it never exceeds a sampled value."""
        x, y = var(0, 2), var(1, 2)
        poly = (x * y - 1) ** 2 + x**2
        result = sos_lower_bound(poly, tolerance=1e-2)
        if result is not None:
            probe = sampled_minimum(poly, box=None, restarts=32)
            assert result.lower_bound <= probe + 1e-2


class TestBoxBoundEdges:
    def test_negative_minimum_found(self):
        x, y = var(0, 2), var(1, 2)
        poly = -1 * x * y * (1 - x) * (1 - y)  # min −1/16 inside the box
        result = box_lower_bound(poly, tolerance=1e-3)
        assert result is not None
        assert result.lower_bound == pytest.approx(-1.0 / 16.0, abs=5e-3)

    def test_linear_boundary_minimum(self):
        x, y = var(0, 2), var(1, 2)
        poly = 2 * x + y  # min 0 at the origin corner
        result = box_lower_bound(poly, tolerance=1e-3)
        assert result is not None
        assert result.lower_bound == pytest.approx(0.0, abs=5e-3)

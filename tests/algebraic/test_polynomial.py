"""Tests for the sparse multivariate polynomial library."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import Polynomial, monomials_up_to_degree


@st.composite
def polynomials(draw, nvars=3, max_terms=6, max_exp=3):
    terms = draw(
        st.lists(
            st.tuples(
                st.floats(-5.0, 5.0, allow_nan=False),
                st.tuples(*[st.integers(0, max_exp) for _ in range(nvars)]),
            ),
            max_size=max_terms,
        )
    )
    return Polynomial.from_terms(nvars, terms)


points3 = st.lists(st.floats(-2.0, 2.0, allow_nan=False), min_size=3, max_size=3)


class TestConstruction:
    def test_constant_and_variable(self):
        c = Polynomial.constant(2, 3.5)
        assert c([0, 0]) == 3.5
        x = Polynomial.variable(0, 2)
        assert x([4.0, 1.0]) == 4.0
        with pytest.raises(ValueError):
            Polynomial.variable(2, 2)

    def test_zero_coefficients_dropped(self):
        p = Polynomial(2, {(1, 0): 0.0, (0, 1): 2.0})
        assert len(p) == 1

    def test_like_terms_merge(self):
        p = Polynomial.from_terms(2, [(1.0, (1, 0)), (2.0, (1, 0))])
        assert p.coefficient((1, 0)) == 3.0

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            Polynomial(2, {(1,): 1.0})
        with pytest.raises(ValueError):
            Polynomial(2, {(-1, 0): 1.0})


class TestArithmetic:
    @settings(max_examples=60)
    @given(polynomials(), polynomials(), points3)
    def test_ring_axioms_by_evaluation(self, p, q, point):
        assert (p + q)(point) == pytest.approx(p(point) + q(point), rel=1e-9, abs=1e-7)
        assert (p - q)(point) == pytest.approx(p(point) - q(point), rel=1e-9, abs=1e-7)
        assert (p * q)(point) == pytest.approx(p(point) * q(point), rel=1e-9, abs=1e-6)

    @given(polynomials(), points3)
    def test_scalar_operations(self, p, point):
        assert (2.5 * p)(point) == pytest.approx(2.5 * p(point), abs=1e-7)
        assert (p + 1)(point) == pytest.approx(p(point) + 1, abs=1e-7)
        assert (1 - p)(point) == pytest.approx(1 - p(point), abs=1e-7)

    @given(polynomials(max_exp=2), st.integers(0, 3), points3)
    def test_power(self, p, e, point):
        assert (p**e)(point) == pytest.approx(p(point) ** e, rel=1e-6, abs=1e-5)

    def test_power_validation(self):
        with pytest.raises(ValueError):
            Polynomial.constant(1, 2.0) ** -1

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            Polynomial.constant(2, 1.0) + Polynomial.constant(3, 1.0)

    @given(polynomials())
    def test_additive_inverse(self, p):
        assert (p + (-p)).is_zero()


class TestCalculus:
    def test_partial_derivative(self):
        x = Polynomial.variable(0, 2)
        y = Polynomial.variable(1, 2)
        f = x**2 * y + 3 * y
        fx = f.partial(0)
        fy = f.partial(1)
        assert fx([2.0, 5.0]) == pytest.approx(2 * 2 * 5)
        assert fy([2.0, 5.0]) == pytest.approx(4 + 3)

    @settings(max_examples=40)
    @given(polynomials(), points3)
    def test_gradient_matches_finite_differences(self, p, point):
        grads = p.gradient()
        eps = 1e-6
        for i in range(3):
            plus = list(point)
            minus = list(point)
            plus[i] += eps
            minus[i] -= eps
            numeric = (p(plus) - p(minus)) / (2 * eps)
            assert grads[i](point) == pytest.approx(numeric, rel=1e-3, abs=1e-3)

    def test_gradient_of_constant(self):
        assert all(g.is_zero() for g in Polynomial.constant(3, 7.0).gradient())


class TestQueriesAndSubstitution:
    def test_degrees(self):
        x = Polynomial.variable(0, 2)
        y = Polynomial.variable(1, 2)
        f = x**3 * y + y**2
        assert f.total_degree() == 4
        assert f.degree_in(0) == 3
        assert f.degree_in(1) == 2

    def test_multilinear_detection(self):
        x = Polynomial.variable(0, 2)
        y = Polynomial.variable(1, 2)
        assert (x * y + x).is_multilinear()
        assert not (x * x).is_multilinear()

    @given(polynomials(), points3)
    def test_substitute_matches_evaluation(self, p, point):
        partial = p.substitute({0: point[0]})
        assert partial([0.0, point[1], point[2]]) == pytest.approx(
            p(point), rel=1e-9, abs=1e-7
        )

    def test_almost_equal(self):
        p = Polynomial.from_terms(1, [(1.0, (1,))])
        q = Polynomial.from_terms(1, [(1.0 + 1e-12, (1,))])
        assert p.almost_equal(q, tol=1e-9)
        assert not p.almost_equal(q + 1, tol=1e-9)


class TestPresentation:
    def test_to_string(self):
        x = Polynomial.variable(0, 2)
        y = Polynomial.variable(1, 2)
        f = 2 * x * y - y**2 + 1
        text = f.to_string(["p", "q"])
        assert "2*p*q" in text and "q^2" in text and "1" in text

    def test_zero_renders(self):
        assert Polynomial(3).to_string() == "0"

    def test_sorted_terms_deterministic(self):
        f = Polynomial.from_terms(2, [(1.0, (0, 2)), (1.0, (1, 0)), (1.0, (0, 0))])
        monos = [m for m, _ in f.sorted_terms()]
        assert monos == [(0, 0), (1, 0), (0, 2)]


class TestMonomialBases:
    def test_counts(self):
        # Monomials in 3 vars of total degree ≤ 2: C(5,2) = 10.
        assert len(monomials_up_to_degree(3, 2)) == 10
        # Multilinear of degree ≤ 2 in 3 vars: 1 + 3 + 3 = 7.
        assert len(monomials_up_to_degree(3, 2, max_degree_per_var=1)) == 7

    def test_ordering_graded(self):
        basis = monomials_up_to_degree(2, 2)
        degrees = [sum(m) for m in basis]
        assert degrees == sorted(degrees)

    def test_zero_degree(self):
        assert monomials_up_to_degree(4, 0) == [(0, 0, 0, 0)]

"""Tests for the §6.1 critical-point toolbox and the §6.2 SOS bounds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebraic import (
    Polynomial,
    box_lower_bound,
    decide_safety_by_critical_points,
    minimize_bivariate_on_box,
    minimize_univariate_on_interval,
    sampled_minimum,
    solve_bivariate_system,
    sos_lower_bound,
    sylvester_resultant,
    univariate_real_roots,
    safety_gap_polynomial,
)
from repro.core import HypercubeSpace
from repro.probabilistic import decide_product_safety
from tests.conftest import random_pairs


def X(n=2):
    return Polynomial.variable(0, n)


def Y():
    return Polynomial.variable(1, 2)


class TestUnivariateRoots:
    def test_quadratic(self):
        x = X(1)
        assert univariate_real_roots((x - 1) * (x - 3)) == [1.0, 3.0]

    def test_no_real_roots(self):
        x = X(1)
        assert univariate_real_roots(x * x + 1) == []

    def test_constant_and_zero(self):
        assert univariate_real_roots(Polynomial.constant(1, 5.0)) == []
        assert univariate_real_roots(Polynomial(1)) == []

    @given(st.lists(st.floats(-3, 3), min_size=1, max_size=4, unique=True))
    def test_constructed_roots_recovered(self, roots):
        x = X(1)
        poly = Polynomial.constant(1, 1.0)
        for r in roots:
            poly = poly * (x - r)
        recovered = univariate_real_roots(poly)
        for r in roots:
            assert any(abs(r - q) < 1e-5 for q in recovered), (roots, recovered)


class TestResultants:
    def test_resultant_vanishes_iff_common_root(self):
        x, y = X(), Y()
        f = x * x + y * y - 1  # unit circle
        g = x - y  # diagonal
        res = sylvester_resultant(f, g, eliminate=1)
        roots = univariate_real_roots(res)
        expected = 1 / np.sqrt(2)
        assert any(abs(r - expected) < 1e-6 for r in roots)
        assert any(abs(r + expected) < 1e-6 for r in roots)

    def test_disjoint_curves_have_no_real_projection(self):
        x, y = X(), Y()
        f = x * x + y * y - 1
        g = x * x + y * y - 9  # concentric circle: no intersection
        res = sylvester_resultant(f, g, eliminate=1)
        assert univariate_real_roots(res) == []


class TestBivariateSystems:
    def test_circle_line(self):
        x, y = X(), Y()
        solutions = solve_bivariate_system(x * x + y * y - 1, x - y)
        assert len(solutions) == 2
        for sx, sy in solutions:
            assert sx == pytest.approx(sy, abs=1e-6)
            assert sx * sx + sy * sy == pytest.approx(1.0, abs=1e-6)

    def test_two_parabolas(self):
        x, y = X(), Y()
        solutions = solve_bivariate_system(y - x * x, x - y * y)
        points = {(round(sx, 4), round(sy, 4)) for sx, sy in solutions}
        assert (0.0, 0.0) in points and (1.0, 1.0) in points

    def test_solutions_verified(self):
        x, y = X(), Y()
        f = x * y - 1
        g = x + y - 2
        for sx, sy in solve_bivariate_system(f, g):
            assert f([sx, sy]) == pytest.approx(0.0, abs=1e-6)
            assert g([sx, sy]) == pytest.approx(0.0, abs=1e-6)


class TestBoxMinimisation:
    def test_univariate(self):
        x = X(1)
        result = minimize_univariate_on_interval((x - 0.3) ** 2 + 1)
        assert result.value == pytest.approx(1.0, abs=1e-9)
        assert result.point[0] == pytest.approx(0.3, abs=1e-9)

    def test_univariate_boundary_minimum(self):
        x = X(1)
        result = minimize_univariate_on_interval(x)  # minimised at 0
        assert result.point == (0.0,)

    def test_bivariate_interior(self):
        x, y = X(), Y()
        result = minimize_bivariate_on_box((x - 0.3) ** 2 + (y - 0.8) ** 2)
        assert result.value == pytest.approx(0.0, abs=1e-9)
        assert result.point == pytest.approx((0.3, 0.8), abs=1e-6)

    def test_bivariate_degenerate_gradient(self):
        """−xy(1−x)(1−y): gradient variety is positive-dimensional; the
        isolated interior minimum at (½, ½) must still be found."""
        x, y = X(), Y()
        poly = -1 * x * y * (1 - x) * (1 - y)
        result = minimize_bivariate_on_box(poly)
        assert result.value == pytest.approx(-1 / 16, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_matches_dense_grid(self, seed):
        rng = np.random.default_rng(seed)
        x, y = X(), Y()
        poly = Polynomial(2)
        for _ in range(4):
            cx, cy = rng.integers(0, 3, size=2)
            poly = poly + float(rng.normal()) * x**int(cx) * y**int(cy)
        result = minimize_bivariate_on_box(poly)
        grid = np.linspace(0, 1, 21)
        grid_min = min(poly([gx, gy]) for gx in grid for gy in grid)
        assert result.value <= grid_min + 1e-8


class TestCriticalPointSafetyDecision:
    def test_agrees_with_bernstein_exhaustively_n2(self):
        space = HypercubeSpace(2)
        worlds = list(space.worlds())
        for a_bits in range(16):
            for b_bits in range(16):
                a = space.property_set([w for w in worlds if (a_bits >> w) & 1])
                b = space.property_set([w for w in worlds if (b_bits >> w) & 1])
                is_safe, _, _ = decide_safety_by_critical_points(a, b)
                assert is_safe == decide_product_safety(a, b).is_safe, (
                    a_bits,
                    b_bits,
                )

    def test_rejects_large_n(self):
        space = HypercubeSpace(3)
        with pytest.raises(ValueError):
            decide_safety_by_critical_points(space.full, space.full)

    def test_unsafe_witness_point_has_negative_gap(self):
        space = HypercubeSpace(2)
        a = space.property_set(["10", "11"])
        b = space.property_set(["10"])
        is_safe, minimum, point = decide_safety_by_critical_points(a, b)
        assert not is_safe
        gap = safety_gap_polynomial(a, b)
        assert gap(list(point)) == pytest.approx(minimum, abs=1e-9)
        assert minimum < 0


class TestSOSBounds:
    def test_shor_bound_simple_quadratic(self):
        x = X(1)
        poly = (x - 2) ** 2 + 3  # global minimum 3
        result = sos_lower_bound(poly, tolerance=1e-3)
        assert result is not None
        assert result.lower_bound == pytest.approx(3.0, abs=5e-3)

    def test_shor_bound_odd_degree_unbounded(self):
        x = X(1)
        assert sos_lower_bound(x**3) is None

    def test_box_bound_matches_critical_point_min(self):
        x, y = X(), Y()
        poly = x * (1 - x) * (1 - y) + 0.25  # min 0.25 on the box
        result = box_lower_bound(poly, tolerance=1e-3)
        assert result is not None
        exact = minimize_bivariate_on_box(poly).value
        assert result.lower_bound == pytest.approx(exact, abs=5e-3)
        assert result.lower_bound <= exact + 1e-9

    def test_sampled_minimum_is_upper_bound(self):
        x, y = X(), Y()
        poly = (x - 0.4) ** 2 + (y - 0.6) ** 2 + 1.5
        assert sampled_minimum(poly) == pytest.approx(1.5, abs=1e-6)

    def test_gap_lower_bound_agrees_with_safety(self):
        """The §6.2 search applied to a safety gap: bound ≈ min, sign decides."""
        space = HypercubeSpace(2)
        a = space.coordinate_set(1)
        b = ~a | space.coordinate_set(2)
        gap = safety_gap_polynomial(a, b)
        result = box_lower_bound(gap, tolerance=1e-3)
        assert result is not None
        assert result.lower_bound == pytest.approx(0.0, abs=5e-3)

"""Cross-module integration tests: the full paper pipeline, end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import (
    AuditPolicy,
    DisclosureLog,
    OfflineAuditor,
    PriorAssumption,
)
from repro.core import (
    HypercubeSpace,
    PossibilisticKnowledge,
    safe_possibilistic,
    safe_unrestricted,
    safety_gap,
)
from repro.db import (
    CandidateUniverse,
    ColumnType,
    Database,
    TableSchema,
    parse_boolean_query,
)
from repro.probabilistic import (
    ProbabilisticAuditor,
    ProductFamily,
    audit_unconstrained,
    decide_product_safety,
)
from tests.conftest import random_pairs


class TestProposition38Integration:
    """Safe_Π decisions are consistent with per-member quantification."""

    def test_exact_safe_means_no_member_violates(self):
        space = HypercubeSpace(3)
        family = ProductFamily(space)
        rng = np.random.default_rng(5)
        members = family.sample_many(40, rng)
        for a, b in random_pairs(space, 30, seed=61, allow_empty=True):
            if decide_product_safety(a, b).is_safe:
                for dist in members:
                    assert safety_gap(dist, a, b) >= -1e-9, (a, b)

    def test_exact_unsafe_witness_is_family_member(self):
        space = HypercubeSpace(3)
        family = ProductFamily(space)
        for a, b in random_pairs(space, 30, seed=62, allow_empty=True):
            verdict = decide_product_safety(a, b)
            if verdict.is_unsafe:
                witness = verdict.witness
                assert family.contains(witness.to_dense()), (a, b)


class TestTheorem311CrossModel:
    """Probabilistic and possibilistic unrestricted auditors agree (Thm 3.11)."""

    def test_verdict_agreement(self):
        from repro.core import WorldSpace

        small = WorldSpace(4)
        k_poss = PossibilisticKnowledge.full(small)
        for a, b in random_pairs(small, 60, seed=63):
            prob_verdict = audit_unconstrained(a, b)
            poss_result = safe_possibilistic(k_poss, a, b)
            assert prob_verdict.is_safe == poss_result, (a, b)


class TestSqlToVerdictPipeline:
    """SQL text → AST → PropertySet → verdict, against hand-built sets."""

    def test_full_stack(self):
        db = Database()
        db.create_table(
            TableSchema.build("t", who=ColumnType.TEXT, what=ColumnType.TEXT)
        )
        r1 = db.insert("t", who="Bob", what="hiv")
        r2 = db.insert("t", who="Bob", what="transfusion")
        universe = CandidateUniverse(db, [r1, r2])
        space = universe.space

        a_text = "EXISTS(SELECT * FROM t WHERE who = 'Bob' AND what = 'hiv')"
        b_text = (
            f"{a_text} IMPLIES "
            "EXISTS(SELECT * FROM t WHERE who = 'Bob' AND what = 'transfusion')"
        )
        a = universe.compile_boolean(parse_boolean_query(a_text))
        b = universe.compile_boolean(parse_boolean_query(b_text))
        assert a == space.coordinate_set(1)
        assert b == (~space.coordinate_set(1) | space.coordinate_set(2))

        verdict = ProbabilisticAuditor(space).audit(a, b)
        assert verdict.is_safe
        assert safe_unrestricted(a, b)

    def test_policy_families_are_ordered_by_strictness(self):
        """Remark 3.2 end-to-end: larger prior families flag at least as many
        disclosures as smaller ones (product ⊆ log-supermodular ⊆ all)."""
        db = Database()
        db.create_table(
            TableSchema.build("t", who=ColumnType.TEXT, what=ColumnType.TEXT)
        )
        records = [
            db.insert("t", who="Bob", what="hiv"),
            db.insert("t", who="Bob", what="transfusion"),
            db.hypothetical_record("t", who="Eve", what="hiv"),
        ]
        universe = CandidateUniverse(db, records)
        log = DisclosureLog()
        queries = [
            "EXISTS(SELECT * FROM t WHERE who = 'Bob' AND what = 'hiv') IMPLIES "
            "EXISTS(SELECT * FROM t WHERE who = 'Bob' AND what = 'transfusion')",
            "NOT EXISTS(SELECT * FROM t WHERE who = 'Eve')",
            "EXISTS(SELECT * FROM t WHERE what = 'hiv')",
            "COUNT(t WHERE what = 'hiv') >= 1",
        ]
        for i, text in enumerate(queries):
            log.record(i, f"user{i}", parse_boolean_query(text))

        audit_text = "EXISTS(SELECT * FROM t WHERE who = 'Bob' AND what = 'hiv')"

        def flagged(assumption):
            policy = AuditPolicy(
                audit_query=parse_boolean_query(audit_text), assumption=assumption
            )
            report = OfflineAuditor(universe, policy).audit_log(log)
            return {
                f.event.user for f in report.findings if f.verdict.is_unsafe
            }

        product_flags = flagged(PriorAssumption.PRODUCT)
        supermodular_flags = flagged(PriorAssumption.LOG_SUPERMODULAR)
        unrestricted_flags = flagged(PriorAssumption.UNRESTRICTED)
        # Product ⊂ log-supermodular ⊂ unconstrained: verdicts that are
        # decided must be monotone.  (UNKNOWNs are not counted as flags.)
        assert product_flags <= unrestricted_flags
        assert supermodular_flags <= unrestricted_flags


class TestWitnessQuality:
    """Every UNSAFE witness across the stack genuinely gains confidence."""

    def test_product_pipeline_witnesses(self):
        space = HypercubeSpace(3)
        auditor = ProbabilisticAuditor(space, optimizer_restarts=8)
        checked = 0
        for a, b in random_pairs(space, 25, seed=64):
            verdict = auditor.audit(a, b)
            if verdict.is_unsafe and verdict.witness is not None:
                witness = verdict.witness
                gap = (
                    witness.prob(a) * witness.prob(b) - witness.prob(a & b)
                )
                assert gap < 1e-9, (a, b, verdict.method)
                checked += 1
        assert checked > 5

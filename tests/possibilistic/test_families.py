"""Tests for ∩-closed knowledge families."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GridSpace, HypercubeSpace, WorldSpace
from repro.core.events import is_up_set
from repro.exceptions import SpaceMismatchError
from repro.possibilistic import (
    ExplicitFamily,
    IntegerRectangleFamily,
    PowerSetFamily,
    SubcubeFamily,
    UpSetFamily,
)


class TestPowerSetFamily:
    def test_membership(self):
        space = WorldSpace(4)
        family = PowerSetFamily(space)
        assert space.property_set([1, 2]) in family
        assert space.empty not in family

    def test_interval_is_pair(self):
        space = WorldSpace(4)
        family = PowerSetFamily(space)
        assert family.interval_between(1, 3) == space.property_set([1, 3])
        assert family.interval_between(2, 2) == space.property_set([2])

    def test_closed(self):
        assert PowerSetFamily(WorldSpace(3)).is_intersection_closed()

    def test_enumeration_counts(self):
        family = PowerSetFamily(WorldSpace(3))
        assert len(list(family)) == 7

    def test_enumeration_guard(self):
        with pytest.raises(ValueError):
            list(PowerSetFamily(WorldSpace(20)))


class TestSubcubeFamily:
    def test_enumeration_counts(self):
        # Subcubes of {0,1}^n correspond to {0,1,*}^n patterns: 3^n of them.
        family = SubcubeFamily(HypercubeSpace(3))
        assert len(list(family)) == 27

    def test_membership(self):
        space = HypercubeSpace(3)
        family = SubcubeFamily(space)
        assert space.subcube("1*0") in family
        assert space.subcube("***") in family
        assert space.property_set(["000", "011"]) not in family
        assert space.empty not in family

    def test_interval_is_match_box(self):
        space = HypercubeSpace(4)
        family = SubcubeFamily(space)
        w1, w2 = space.world_id("0110"), space.world_id("0011")
        interval = family.interval_between(w1, w2)
        # Coordinates 1 and 3 agree (0 and 1); coordinates 2 and 4 differ.
        assert interval == space.subcube("0*1*")
        assert w1 in interval and w2 in interval
        assert len(interval) == 4

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_interval_is_smallest_subcube(self, w1, w2):
        space = HypercubeSpace(4)
        family = SubcubeFamily(space)
        interval = family.interval_between(w1, w2)
        assert interval in family
        # No strictly smaller subcube contains both worlds.
        for other in family:
            if w1 in other and w2 in other:
                assert interval <= other

    def test_requires_hypercube(self):
        with pytest.raises(SpaceMismatchError):
            SubcubeFamily(WorldSpace(8))  # type: ignore[arg-type]

    def test_closed(self):
        assert SubcubeFamily(HypercubeSpace(2)).is_intersection_closed()


class TestIntegerRectangleFamily:
    def test_enumeration_counts(self):
        # Rectangles of a w×h grid: C(w+1,2)·C(h+1,2).
        family = IntegerRectangleFamily(GridSpace(3, 2))
        assert len(list(family)) == 6 * 3

    def test_membership(self):
        grid = GridSpace(4, 4)
        family = IntegerRectangleFamily(grid)
        assert grid.rectangle(1, 1, 2, 3) in family
        l_shape = grid.rectangle(0, 0, 1, 1) | grid.rectangle(0, 2, 0, 2)
        assert l_shape not in family

    def test_interval_is_bounding_box(self):
        grid = GridSpace(10, 10)
        family = IntegerRectangleFamily(grid)
        w1, w2 = grid.world_id((2, 7)), grid.world_id((5, 3))
        assert family.interval_between(w1, w2) == grid.rectangle(2, 3, 5, 7)

    def test_closed(self):
        assert IntegerRectangleFamily(GridSpace(3, 3)).is_intersection_closed()

    def test_generic_interval_agrees_with_analytic(self):
        grid = GridSpace(4, 3)
        family = IntegerRectangleFamily(grid)
        generic = ExplicitFamily(grid, list(family))
        for w1, w2 in [(0, 11), (5, 6), (2, 2)]:
            assert family.interval_between(w1, w2) == generic.interval_between(w1, w2)


class TestUpSetFamily:
    def test_membership(self):
        space = HypercubeSpace(3)
        family = UpSetFamily(space)
        assert space.property_set(["111", "110"]) in family
        assert space.property_set(["001"]) not in family

    def test_interval_is_up_closure(self):
        space = HypercubeSpace(3)
        family = UpSetFamily(space)
        interval = family.interval_between(
            space.world_id("001"), space.world_id("010")
        )
        assert interval is not None
        assert is_up_set(interval)
        assert len(interval) == 6  # everything above 001 or 010

    def test_enumeration_counts_dedekind(self):
        # Non-empty up-sets of {0,1}^2: the Dedekind number M(2) = 6 minus ∅ = 5.
        family = UpSetFamily(HypercubeSpace(2))
        assert len(list(family)) == 5

    def test_closed(self):
        assert UpSetFamily(HypercubeSpace(2)).is_intersection_closed()


class TestExplicitFamily:
    def test_dedup_and_validation(self):
        space = WorldSpace(4)
        family = ExplicitFamily(
            space, [space.property_set([0, 1]), space.property_set([1, 0])]
        )
        assert len(family) == 1
        with pytest.raises(ValueError):
            ExplicitFamily(space, [space.empty])
        with pytest.raises(ValueError):
            ExplicitFamily(space, [])

    def test_closure_detection(self):
        space = WorldSpace(4)
        open_family = ExplicitFamily(
            space, [space.property_set([0, 1]), space.property_set([1, 2])]
        )
        assert not open_family.is_intersection_closed()
        closed = open_family.intersection_closure()
        assert closed.is_intersection_closed()
        assert space.property_set([1]) in closed

    def test_disjoint_members_do_not_block_closure(self):
        space = WorldSpace(4)
        family = ExplicitFamily(
            space, [space.property_set([0]), space.property_set([1])]
        )
        assert family.is_intersection_closed()  # empty meets are exempt

    @settings(max_examples=30)
    @given(
        st.lists(
            st.sets(st.integers(0, 5), min_size=1),
            min_size=1,
            max_size=6,
        )
    )
    def test_closure_is_idempotent_and_minimal_superset(self, raw_sets):
        space = WorldSpace(6)
        family = ExplicitFamily(space, [space.property_set(s) for s in raw_sets])
        closed = family.intersection_closure()
        assert closed.is_intersection_closed()
        for member in family:
            assert member in closed
        again = closed.intersection_closure()
        assert len(again) == len(closed)

"""Property-based invariants of the minimal-interval machinery (Section 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PossibilisticKnowledge, WorldSpace, safe_possibilistic
from repro.possibilistic import (
    ExplicitFamily,
    ExplicitIntervalIndex,
    interval_partition,
    minimal_intervals_to,
)


@st.composite
def closed_setup(draw):
    raw_sets = draw(
        st.lists(
            st.sets(st.integers(0, 4), min_size=1),
            min_size=1,
            max_size=5,
        )
    )
    origin_pool = sorted(set().union(*raw_sets))
    origin = draw(st.sampled_from(origin_pool))
    target = draw(st.sets(st.integers(0, 4)))
    return raw_sets, origin, target


def build_oracle(raw_sets):
    space = WorldSpace(5)
    family = ExplicitFamily(
        space, [space.property_set(s) for s in raw_sets]
    ).intersection_closure()
    k = PossibilisticKnowledge.product(space.full, list(family))
    return space, k, ExplicitIntervalIndex(k)


class TestMinimalIntervalInvariants:
    @settings(max_examples=100, deadline=None)
    @given(closed_setup())
    def test_minimal_intervals_are_intervals(self, setup):
        """Every reported minimal interval is a genuine I_K(ω₁, ω₂)."""
        raw_sets, origin, target_members = setup
        space, _, oracle = build_oracle(raw_sets)
        target = space.property_set(target_members)
        for item in minimal_intervals_to(oracle, origin, target):
            assert item.witness in target
            assert oracle.interval(origin, item.witness) == item.interval

    @settings(max_examples=100, deadline=None)
    @given(closed_setup())
    def test_every_target_world_in_class_realises_same_interval(self, setup):
        """Definition 4.7: all target worlds inside a minimal interval give
        back that same interval."""
        raw_sets, origin, target_members = setup
        space, _, oracle = build_oracle(raw_sets)
        target = space.property_set(target_members)
        for item in minimal_intervals_to(oracle, origin, target):
            for w in (item.interval & target):
                assert oracle.interval(origin, w) == item.interval

    @settings(max_examples=100, deadline=None)
    @given(closed_setup())
    def test_partition_tiles_target(self, setup):
        """Prop 4.10: classes + unreachable exactly tile the target set."""
        raw_sets, origin, target_members = setup
        space, _, oracle = build_oracle(raw_sets)
        target = space.property_set(target_members)
        partition = interval_partition(oracle, origin, target)
        assert partition.is_partition_of(target)

    @settings(max_examples=100, deadline=None)
    @given(closed_setup())
    def test_unreachable_worlds_have_no_minimal_interval(self, setup):
        """D_∞ members belong to no minimal interval from the origin."""
        raw_sets, origin, target_members = setup
        space, _, oracle = build_oracle(raw_sets)
        target = space.property_set(target_members)
        partition = interval_partition(oracle, origin, target)
        minimal = minimal_intervals_to(oracle, origin, target)
        for w in partition.unreachable:
            assert all(w not in item.interval or
                       oracle.interval(origin, w) != item.interval
                       for item in minimal) or all(
                w not in item.interval for item in minimal
            )

    @settings(max_examples=60, deadline=None)
    @given(closed_setup())
    def test_nonminimal_intervals_strictly_contain_a_minimal_one(self, setup):
        """Any existing interval to the target contains a minimal interval
        whenever its target part is non-empty — the engine behind Prop 4.8."""
        raw_sets, origin, target_members = setup
        space, _, oracle = build_oracle(raw_sets)
        target = space.property_set(target_members)
        minimal = [i.interval for i in minimal_intervals_to(oracle, origin, target)]
        for w in target:
            interval = oracle.interval(origin, w)
            if interval is None:
                continue
            assert any(m <= interval for m in minimal), (raw_sets, origin, w)


class TestSafetyConsistencyUnderClosure:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.sets(st.integers(0, 4), min_size=1), min_size=1, max_size=4),
        st.sets(st.integers(0, 4)),
        st.sets(st.integers(0, 4), min_size=1),
    )
    def test_closure_only_restricts(self, raw_sets, a_members, b_members):
        """Remark 3.2 through the closure: adding coalition knowledge can
        only turn SAFE verdicts into UNSAFE, never the reverse."""
        space = WorldSpace(5)
        family = ExplicitFamily(space, [space.property_set(s) for s in raw_sets])
        closed = family.intersection_closure()
        k_small = PossibilisticKnowledge.product(space.full, list(family))
        k_big = PossibilisticKnowledge.product(space.full, list(closed))
        a = space.property_set(a_members)
        b = space.property_set(b_members)
        if safe_possibilistic(k_big, a, b):
            assert safe_possibilistic(k_small, a, b)

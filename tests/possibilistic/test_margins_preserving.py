"""Proposition 4.1's two directions: margins, preservation, and the converse.

The forward direction (12) — margin condition ⇒ safety — holds for all B.
The converse (13) holds only for K-preserving B (Remark 4.2's counterexample
shows it fails otherwise).  These tests exercise both directions against
the literal definitions.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PossibilisticKnowledge,
    WorldSpace,
    is_preserving_possibilistic,
    safe_possibilistic,
)
from repro.possibilistic import (
    ExplicitFamily,
    ExplicitIntervalIndex,
    FamilyIntervalOracle,
    PowerSetFamily,
    SafetyMarginIndex,
    SubcubeFamily,
)
from tests.conftest import all_subsets


def closed_k(space, raw_sets):
    family = ExplicitFamily(
        space, [space.property_set(s) for s in raw_sets]
    ).intersection_closure()
    return PossibilisticKnowledge.product(space.full, list(family))


class TestProposition41Forward:
    """(12): margin condition ⇒ Safe_K(A, B), for arbitrary B."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.sets(st.integers(0, 4), min_size=1), min_size=1, max_size=4),
        st.sets(st.integers(0, 4)),
        st.sets(st.integers(0, 4), min_size=1),
    )
    def test_margin_implies_safe(self, raw_sets, a_members, b_members):
        space = WorldSpace(5)
        k = closed_k(space, raw_sets)
        oracle = ExplicitIntervalIndex(k)
        a = space.property_set(a_members)
        b = space.property_set(b_members)
        index = SafetyMarginIndex(oracle, a, require_tight=False)
        if index.test(b):
            assert safe_possibilistic(k, a, b)


class TestProposition41Converse:
    """(13): for K-preserving B, Safe_K(A, B) ⇒ margin condition."""

    def test_converse_on_preserving_disclosures(self):
        space = WorldSpace(4)
        # The subcube family over a tiny hypercube is ∩-closed and its
        # product with Ω is preserved by subcube-shaped disclosures.
        from repro.core import HypercubeSpace

        cube = HypercubeSpace(2)
        family = SubcubeFamily(cube)
        k = PossibilisticKnowledge.product(cube.full, list(family))
        oracle = FamilyIntervalOracle(cube.full, family)
        for a in all_subsets(cube):
            index = SafetyMarginIndex(oracle, a, require_tight=False)
            for b in all_subsets(cube):
                if not b or not is_preserving_possibilistic(k, b):
                    continue
                if safe_possibilistic(k, a, b):
                    assert index.test(b), (a, b)

    def test_converse_fails_without_preservation(self):
        """Remark 4.2: no β works for B₁, B₂ that are not K-preserving."""
        space = WorldSpace(3)
        family = ExplicitFamily(space, [space.full])
        k = PossibilisticKnowledge.product(space.full, [space.full])
        oracle = FamilyIntervalOracle(space.full, family)
        a = space.property_set([2])
        b1 = space.property_set([0, 2])
        b2 = space.property_set([1, 2])
        assert safe_possibilistic(k, a, b1)
        assert safe_possibilistic(k, a, b2)
        assert not is_preserving_possibilistic(k, b1)
        index = SafetyMarginIndex(oracle, a, require_tight=False)
        # The margin test must reject at least one of the two safe B's —
        # otherwise (12) would certify their (unsafe) intersection too.
        assert not (index.test(b1) and index.test(b2))


class TestPreservingFamilies:
    def test_power_set_product_preserved_by_everything(self):
        space = WorldSpace(4)
        k = PossibilisticKnowledge.product(
            space.full, list(PowerSetFamily(space))
        )
        for b in all_subsets(space):
            if b:
                assert is_preserving_possibilistic(k, b)

    def test_subcube_product_preserved_by_subcubes_only(self):
        from repro.core import HypercubeSpace

        cube = HypercubeSpace(2)
        family = SubcubeFamily(cube)
        k = PossibilisticKnowledge.product(cube.full, list(family))
        assert is_preserving_possibilistic(k, cube.subcube("1*"))
        non_subcube = cube.property_set(["00", "11"])
        assert not is_preserving_possibilistic(k, non_subcube)


class TestLazyMargins:
    """The per-origin margin memo: filled on demand, counted, verdict-inert."""

    def _index(self, space):
        k = closed_k(space, [[0, 1, 2], [1, 2, 3], [0, 3], [0, 1, 2, 3]])
        oracle = ExplicitIntervalIndex(k)
        audited = space.property_set([0, 1])
        return SafetyMarginIndex(oracle, audited, require_tight=False)

    def test_construction_computes_nothing(self):
        index = self._index(WorldSpace(4))
        assert index.cache_stats().lookups == 0

    def test_first_test_fills_only_touched_origins(self):
        space = WorldSpace(4)
        index = self._index(space)
        # B contains origin 0 but not origin 1: only 0's margin is built.
        index.test(space.property_set([0, 2, 3]))
        assert index.cache_stats().misses == 1
        index.test(space.property_set([0, 2, 3]))
        assert index.cache_stats().hits >= 1
        assert index.cache_stats().misses == 1

    def test_lazy_margins_match_eager_walk(self):
        """Every origin queried directly agrees with what test() uses."""
        space = WorldSpace(4)
        index = self._index(space)
        lazy = {w: frozenset(index.margin(w)) for w in [0, 1]}
        fresh = self._index(space)
        for b in all_subsets(space):
            expected = all(
                lazy[w] <= set(b) for w in [0, 1] if w in b
            )
            assert fresh.test(b) == expected, b

    def test_margin_outside_candidates_is_empty_without_compute(self):
        space = WorldSpace(4)
        k = closed_k(space, [[0, 1, 2]])
        oracle = ExplicitIntervalIndex(k)
        audited = space.property_set([0, 3])  # 3 ∉ π₁(K)... unless it is
        index = SafetyMarginIndex(oracle, audited, require_tight=False)
        lookups = index.cache_stats().lookups
        if 3 not in oracle.candidate_worlds():
            assert not index.margin(3)
            assert index.cache_stats().lookups == lookups


class TestWordSweepEquivalence:
    """The E20 word-array margin sweep against its big-int reference."""

    def _index(self, space):
        k = closed_k(space, [[0, 1, 2], [1, 2, 3], [0, 3], [0, 1, 2, 3]])
        oracle = ExplicitIntervalIndex(k)
        audited = space.property_set([0, 1])
        return SafetyMarginIndex(oracle, audited, require_tight=False)

    def test_word_and_bigint_sweeps_agree_on_all_subsets(self):
        space = WorldSpace(4)
        word_index = self._index(space)
        bigint_index = self._index(space)
        for b in all_subsets(space):
            assert word_index.test(b) == bigint_index.test_bigint(b), b

    def test_audit_offending_origin_matches_bigint_walk(self):
        """UNSAFE audits blame the first violating origin in increasing order."""
        space = WorldSpace(4)
        index = self._index(space)
        for b in all_subsets(space):
            if index.test(b):
                continue
            b_mask = b.mask
            expected = next(
                w
                for w in sorted(index._origin_index)
                if (b_mask >> w) & 1 and index._margin_mask(w) & ~b_mask != 0
            )
            verdict_index = self._index(space)
            verdict_index._tight = True  # skip the tightness scan; data is fixed
            verdict = verdict_index.audit(b)
            assert not verdict.is_safe
            assert verdict.details["origin"] == expected

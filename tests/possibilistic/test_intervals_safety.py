"""Cross-validation of the Section 4 interval machinery against Definition 3.1.

The central property: for ∩-closed K, Propositions 4.5/4.8 and Corollary 4.12
all agree with the literal privacy definition, on exhaustive small cases and
hypothesis-generated random families.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PossibilisticKnowledge,
    WorldSpace,
    safe_possibilistic,
)
from repro.exceptions import NotIntersectionClosedError
from repro.possibilistic import (
    ExplicitFamily,
    ExplicitIntervalIndex,
    FamilyIntervalOracle,
    PossibilisticAuditor,
    PowerSetFamily,
    SafetyMarginIndex,
    brute_force_audit,
    interval_partition,
    minimal_intervals_to,
    safe_via_intervals,
    safe_via_minimal_intervals,
    safe_via_partition,
)
from tests.conftest import all_subsets


def closed_knowledge(space, raw_sets, candidate_worlds=None):
    """Build an ∩-closed K = C ⊗ closure(Σ) from raw member sets."""
    family = ExplicitFamily(
        space, [space.property_set(s) for s in raw_sets]
    ).intersection_closure()
    candidates = (
        space.full if candidate_worlds is None else space.property_set(candidate_worlds)
    )
    return PossibilisticKnowledge.product(candidates, list(family))


class TestIntervalIndex:
    def test_requires_closed(self):
        space = WorldSpace(4)
        k = PossibilisticKnowledge.from_tuples(space, [(1, [0, 1]), (1, [1, 2])])
        with pytest.raises(NotIntersectionClosedError):
            ExplicitIntervalIndex(k)

    def test_interval_values(self):
        space = WorldSpace(4)
        k = closed_knowledge(space, [[0, 1, 2], [1, 2, 3]])
        index = ExplicitIntervalIndex(k)
        # Smallest S containing both 1 and 2 is {1,2} (the closure meet).
        assert index.interval(1, 2) == space.property_set([1, 2])
        # From world 0, only {0,1,2} is available.
        assert index.interval(0, 2) == space.property_set([0, 1, 2])
        assert index.interval(0, 3) is None  # no member holds both 0 and 3

    def test_interval_requires_pair_in_k(self):
        space = WorldSpace(4)
        k = closed_knowledge(space, [[0, 1]], candidate_worlds=[0])
        index = ExplicitIntervalIndex(k)
        assert index.interval(1, 0) is None  # world 1 ∉ C, so (1, S) ∉ K

    def test_storage_bound(self):
        space = WorldSpace(4)
        k = closed_knowledge(space, [[0, 1]])
        assert ExplicitIntervalIndex(k).storage_bound_bits() == 64

    def test_family_oracle_matches_explicit(self):
        space = WorldSpace(5)
        raw = [[0, 1, 2], [2, 3], [1, 2, 3, 4], [0, 4]]
        family = ExplicitFamily(
            space, [space.property_set(s) for s in raw]
        ).intersection_closure()
        candidates = space.property_set([0, 2, 4])
        k = PossibilisticKnowledge.product(candidates, list(family))
        explicit = ExplicitIntervalIndex(k)
        from_family = FamilyIntervalOracle(candidates, family)
        for w1 in space.worlds():
            for w2 in space.worlds():
                assert explicit.interval(w1, w2) == from_family.interval(w1, w2)


class TestTightIntervals:
    def test_power_set_family_is_tight(self):
        space = WorldSpace(4)
        oracle = FamilyIntervalOracle(space.full, PowerSetFamily(space))
        assert oracle.has_tight_intervals()

    def test_remark_4_2_family_is_not_tight(self):
        """K = Ω ⊗ {Ω} over 3 worlds: the counterexample of Remark 4.2."""
        space = WorldSpace(3)
        family = ExplicitFamily(space, [space.full])
        oracle = FamilyIntervalOracle(space.full, family)
        assert not oracle.has_tight_intervals()


class TestMinimalIntervals:
    def test_minimal_intervals_power_set(self):
        """For Σ = P(Ω), I(ω₁, ω₂) = {ω₁, ω₂}: every target world is minimal."""
        space = WorldSpace(5)
        oracle = FamilyIntervalOracle(space.full, PowerSetFamily(space))
        target = space.property_set([2, 3, 4])
        items = minimal_intervals_to(oracle, 0, target)
        assert len(items) == 3
        for item in items:
            assert len(item.interval) == 2

    def test_partition_properties(self):
        space = WorldSpace(5)
        k = closed_knowledge(space, [[0, 1, 2], [0, 2, 3], [0, 3, 4]])
        oracle = ExplicitIntervalIndex(k)
        target = space.property_set([1, 3, 4])
        partition = interval_partition(oracle, 0, target)
        assert partition.is_partition_of(target)

    def test_unreachable_class(self):
        space = WorldSpace(4)
        # From world 0 only {0,1} is available: world 3 is unreachable.
        k = closed_knowledge(space, [[0, 1], [2, 3]])
        oracle = ExplicitIntervalIndex(k)
        target = space.property_set([1, 3])
        partition = interval_partition(oracle, 0, target)
        assert partition.unreachable == space.property_set([3])


@st.composite
def random_family_setup(draw):
    """A random ∩-closed (C, Σ) over a 5-world space, plus A and B."""
    space_size = 5
    raw_sets = draw(
        st.lists(
            st.sets(st.integers(0, space_size - 1), min_size=1),
            min_size=1,
            max_size=5,
        )
    )
    a_members = draw(st.sets(st.integers(0, space_size - 1)))
    b_members = draw(st.sets(st.integers(0, space_size - 1), min_size=1))
    return raw_sets, a_members, b_members


class TestSafetyEquivalences:
    """Props 4.5, 4.8 and Cor 4.12 all agree with Definition 3.1."""

    @settings(max_examples=120, deadline=None)
    @given(random_family_setup())
    def test_interval_criteria_match_definition(self, setup):
        raw_sets, a_members, b_members = setup
        space = WorldSpace(5)
        k = closed_knowledge(space, raw_sets)
        oracle = ExplicitIntervalIndex(k)
        a = space.property_set(a_members)
        b = space.property_set(b_members)
        expected = safe_possibilistic(k, a, b)
        assert safe_via_intervals(oracle, a, b) == expected
        assert safe_via_minimal_intervals(oracle, a, b) == expected
        assert safe_via_partition(oracle, a, b) == expected

    def test_exhaustive_three_worlds(self):
        space = WorldSpace(3)
        k = PossibilisticKnowledge.full(space)
        oracle = ExplicitIntervalIndex(k)
        for a in all_subsets(space):
            for b in all_subsets(space):
                if not b:
                    continue
                expected = safe_possibilistic(k, a, b)
                assert safe_via_minimal_intervals(oracle, a, b) == expected, (a, b)


class TestSafetyMargins:
    def test_margin_exact_for_tight_intervals(self):
        """Cor 4.14 over Σ = P(Ω): margin test ⇔ Definition 3.1, exhaustively."""
        space = WorldSpace(3)
        k = PossibilisticKnowledge.full(space)
        oracle = ExplicitIntervalIndex(k)
        for a in all_subsets(space):
            index = SafetyMarginIndex(oracle, a)
            assert index.is_exact
            for b in all_subsets(space):
                if not b:
                    continue
                assert index.test(b) == safe_possibilistic(k, a, b), (a, b)

    def test_margin_values_power_set(self):
        """For Σ = P(Ω): β(ω) = Ā whenever A ≠ Ω (every outside world is a margin)."""
        space = WorldSpace(4)
        oracle = FamilyIntervalOracle(space.full, PowerSetFamily(space))
        a = space.property_set([0, 1])
        index = SafetyMarginIndex(oracle, a)
        assert index.margin(0) == ~a

    def test_margin_requires_tightness_by_default(self):
        space = WorldSpace(3)
        family = ExplicitFamily(space, [space.full])
        oracle = FamilyIntervalOracle(space.full, family)
        a = space.property_set([2])
        with pytest.raises(NotIntersectionClosedError):
            SafetyMarginIndex(oracle, a)
        # Sufficient-only mode still sound: test(B) ⇒ Safe.
        index = SafetyMarginIndex(oracle, a, require_tight=False)
        assert not index.is_exact
        k = PossibilisticKnowledge.product(space.full, [space.full])
        for b in all_subsets(space):
            if b and index.test(b):
                assert safe_possibilistic(k, a, b)

    def test_margin_rejects_world_outside_a(self):
        space = WorldSpace(3)
        oracle = FamilyIntervalOracle(space.full, PowerSetFamily(space))
        index = SafetyMarginIndex(oracle, space.property_set([0]))
        with pytest.raises(ValueError):
            index.margin(1)

    def test_audit_verdicts(self):
        space = WorldSpace(3)
        oracle = FamilyIntervalOracle(space.full, PowerSetFamily(space))
        a = space.property_set([0])
        index = SafetyMarginIndex(oracle, a)
        safe_b = space.full
        unsafe_b = space.property_set([0, 1])
        assert index.audit(safe_b).is_safe
        verdict = index.audit(unsafe_b)
        assert verdict.is_unsafe and verdict.witness is not None


class TestPossibilisticAuditor:
    def test_matches_brute_force_randomised(self):
        rnd = random.Random(42)
        space = WorldSpace(5)
        raw_sets = [[0, 1, 2], [1, 2, 3, 4], [0, 3], [2, 4]]
        k = closed_knowledge(space, raw_sets)
        auditor = PossibilisticAuditor.from_knowledge(k)
        for _ in range(60):
            a = space.property_set([w for w in space.worlds() if rnd.random() < 0.5])
            b = space.property_set(
                [w for w in space.worlds() if rnd.random() < 0.6] or [0]
            )
            expected = brute_force_audit(k, a, b)
            got = auditor.audit(a, b)
            assert got.status == expected.status, (a, b)
            assert auditor.audit_uncached(a, b).status == expected.status

    def test_audit_many_amortisation(self):
        space = WorldSpace(4)
        auditor = PossibilisticAuditor.from_family(space.full, PowerSetFamily(space))
        a = space.property_set([0])
        disclosures = [space.full, space.property_set([0, 1]), ~a]
        verdicts = auditor.audit_many(a, disclosures)
        assert [v.is_safe for v in verdicts] == [True, False, True]

    def test_unsafe_witness_is_actionable(self):
        space = WorldSpace(4)
        auditor = PossibilisticAuditor.from_family(space.full, PowerSetFamily(space))
        a = space.property_set([0, 1])
        b = space.property_set([0, 2])
        verdict = auditor.audit(a, b)
        assert verdict.is_unsafe
        # The witness class is a region of Ā that B misses entirely.
        assert verdict.witness.isdisjoint(b)


class TestIntervalCacheBound:
    """The LRU bound on the interval memo: eviction costs recomputation only."""

    def _random_queries(self, space, seed, count=400):
        rnd = random.Random(seed)
        size = space.size
        return [
            (rnd.randrange(size), rnd.randrange(size)) for _ in range(count)
        ]

    def test_eviction_keeps_intervals_identical(self):
        space = WorldSpace(5)
        raw_sets = [[0, 1, 2], [1, 2, 3, 4], [0, 3], [2, 4], [0, 1, 2, 3, 4]]
        k = closed_knowledge(space, raw_sets)
        unbounded = ExplicitIntervalIndex(k)
        tiny = ExplicitIntervalIndex(k, cache_capacity=4)
        for w1, w2 in self._random_queries(space, seed=21):
            assert tiny.interval(w1, w2) == unbounded.interval(w1, w2)
        assert tiny.cache_evictions > 0
        assert len(tiny._interval_cache) <= tiny.cache_capacity
        assert unbounded.cache_evictions == 0

    def test_eviction_keeps_verdicts_identical(self):
        space = WorldSpace(4)
        family = PowerSetFamily(space)
        roomy = PossibilisticAuditor.from_family(space.full, family)
        tight = PossibilisticAuditor(
            FamilyIntervalOracle(space.full, family, cache_capacity=2)
        )
        rnd = random.Random(8)
        for _ in range(40):
            a = space.property_set(
                [w for w in space.worlds() if rnd.random() < 0.5] or [0]
            )
            b = space.property_set(
                [w for w in space.worlds() if rnd.random() < 0.6] or [1]
            )
            assert tight.audit(a, b).status == roomy.audit(a, b).status, (a, b)
        assert tight._oracle.cache_evictions > 0

    def test_cache_stats_and_clear(self):
        space = WorldSpace(3)
        oracle = FamilyIntervalOracle(space.full, PowerSetFamily(space))
        oracle.interval(0, 1)
        oracle.interval(0, 1)
        stats = oracle.cache_stats()
        assert stats.hits == 1 and stats.misses == 1
        assert oracle.cache_stats() is oracle.cache_info()
        oracle.cache_clear()
        assert oracle.cache_stats().misses == 0
        assert oracle.cache_evictions == 0

    def test_capacity_validation(self):
        space = WorldSpace(3)
        with pytest.raises(ValueError):
            FamilyIntervalOracle(
                space.full, PowerSetFamily(space), cache_capacity=0
            )

"""Reproduction tests for Figure 1 / Example 4.9."""

from __future__ import annotations

import pytest

from repro.core import safe_possibilistic
from repro.possibilistic import Figure1Scenario, safe_via_partition
from repro.possibilistic.figure1 import (
    EXPECTED_MINIMAL_CORNERS,
    GRID_HEIGHT,
    GRID_WIDTH,
    OMEGA_1,
    OMEGA_2,
    OMEGA_2_PRIME,
)


@pytest.fixture(scope="module")
def scenario():
    return Figure1Scenario.build()


class TestFigure1:
    def test_grid_dimensions(self, scenario):
        assert scenario.space.width == GRID_WIDTH == 14
        assert scenario.space.height == GRID_HEIGHT == 7

    def test_prose_interval_example(self, scenario):
        """"the interval I_K(ω₁, ω₂) is the … rectangle from (1,1) to (4,4)"."""
        interval = scenario.interval_example()
        assert interval == scenario.space.rectangle(1, 1, 4, 4)

    def test_prose_interval_example_prime(self, scenario):
        """"for ω₁ and ω₂′, the interval … is the rectangle from (1,1) to (9,3)"."""
        interval = scenario.interval_example_prime()
        assert interval == scenario.space.rectangle(1, 1, 9, 3)

    def test_exactly_three_minimal_intervals(self, scenario):
        """"one of the three minimal intervals … the other two are the
        rectangles (1,1)−(5,3) and (1,1)−(6,2)"."""
        assert scenario.minimal_corners() == sorted(EXPECTED_MINIMAL_CORNERS)

    def test_minimal_intervals_disjoint_inside_outside_set(self, scenario):
        """"the three minimal intervals … are disjoint inside Ā"."""
        classes = scenario.delta_classes()
        assert len(classes) == 3
        for i, c1 in enumerate(classes):
            for c2 in classes[i + 1 :]:
                assert c1.isdisjoint(c2)

    def test_safety_characterisation_at_omega1(self, scenario):
        """"A disclosed set B is private, assuming ω* = ω₁, iff B intersects
        each of these three intervals inside Ā"."""
        space = scenario.space
        audited = scenario.audited
        classes = scenario.delta_classes()
        # B touching all three hatched regions (plus ω₁ itself) is safe.
        picks = [min(cls.sorted_members()) for cls in classes]
        b_good = space.property_set([space.world_id(OMEGA_1)] + picks)
        assert safe_via_partition(scenario.oracle, audited, b_good)
        # Dropping any one region makes it unsafe.
        for skip in range(3):
            members = [space.world_id(OMEGA_1)] + [
                p for i, p in enumerate(picks) if i != skip
            ]
            b_bad = space.property_set(members)
            assert not safe_via_partition(scenario.oracle, audited, b_bad)

    def test_every_knowledge_set_escaping_a_contains_a_minimal_interval(
        self, scenario
    ):
        """"Every set S such that (ω₁,S) ∈ K and S ⊄ A … must contain at
        least one of the three minimal intervals" — spot-checked over all
        rectangles containing ω₁."""
        space = scenario.space
        audited = scenario.audited
        minimal = [item.interval for item in scenario.minimal_intervals()]
        ox, oy = OMEGA_1
        count = 0
        for x0 in range(0, ox + 1):
            for y0 in range(0, oy + 1):
                for x1 in range(ox, space.width):
                    for y1 in range(oy, space.height):
                        s = space.rectangle(x0, y0, x1, y1)
                        if not s <= audited:
                            count += 1
                            assert any(m <= s for m in minimal), (x0, y0, x1, y1)
        assert count > 50  # the check was not vacuous

    def test_ascii_rendering_shape(self, scenario):
        art = scenario.render_ascii()
        lines = art.splitlines()
        assert len(lines) == GRID_HEIGHT + 2
        assert all(len(line) == GRID_WIDTH + 2 for line in lines)
        assert "@" in art and "#" in art and "." in art

    def test_partition_matches_brute_force_definition(self, scenario):
        """Full Section 4 pipeline agrees with Definition 3.1 on the grid.

        Materialising all rectangles paired with all their worlds is large
        but feasible once per module.
        """
        from repro.core import PossibilisticKnowledge

        space = scenario.space
        rectangles = list(scenario.family)
        k = PossibilisticKnowledge.product(space.full, rectangles)
        audited = scenario.audited
        test_bs = [
            space.rectangle(0, 0, 6, 6),
            space.rectangle(1, 1, 13, 6) | space.singleton((0, 0)),
            ~scenario.outside,
            space.full,
        ]
        for b in test_bs:
            assert safe_via_partition(scenario.oracle, audited, b) == (
                safe_possibilistic(k, audited, b)
            )

"""Unit tests for the resilience primitives and the typed error hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebraic.sdp import AffineSystem, solve_psd_feasibility
from repro.audit import AuditPolicy, DisclosureEvent, DisclosureLog, PriorAssumption
from repro.core.verdict import AuditVerdict
from repro.db import parse_boolean_query
from repro.exceptions import (
    BudgetExhaustedError,
    MalformedEventError,
    PolicyError,
    ReproError,
    SolverConfigurationError,
)
from repro.runtime import (
    BreakerState,
    Budget,
    CircuitBreaker,
    DecisionOutcome,
    RetryPolicy,
    RuntimeStats,
    faults,
)

QUERY = parse_boolean_query("EXISTS(SELECT * FROM t WHERE a = 'b')")


class TestBudget:
    def test_unlimited_never_expires(self):
        budget = Budget.unlimited()
        assert not budget.limited
        assert not budget.expired
        assert budget.remaining() == float("inf")
        budget.check("anything")  # no raise

    def test_fake_clock_deadline(self):
        now = [0.0]
        budget = Budget(5.0, clock=lambda: now[0])
        assert budget.limited and not budget.expired
        assert budget.remaining() == pytest.approx(5.0)
        now[0] = 4.9
        assert not budget.expired
        now[0] = 5.0
        assert budget.expired
        assert budget.remaining() == 0.0

    def test_zero_budget_is_born_expired(self):
        assert Budget(0.0).expired

    def test_check_raises_typed_with_stage(self):
        budget = Budget(0.0)
        with pytest.raises(BudgetExhaustedError) as info:
            budget.check("exact")
        assert info.value.stage == "exact"
        assert isinstance(info.value, ReproError)

    def test_negative_budget_rejected(self):
        with pytest.raises(BudgetExhaustedError):
            Budget(-1.0)


class TestRetryPolicy:
    def test_seeded_delays_are_reproducible_and_capped(self):
        a = RetryPolicy(max_attempts=5, base=0.01, cap=0.2, seed=42)
        b = RetryPolicy(max_attempts=5, base=0.01, cap=0.2, seed=42)
        delays = [a.next_delay() for _ in range(8)]
        assert delays == [b.next_delay() for _ in range(8)]
        assert all(0.01 <= d <= 0.2 for d in delays)
        a.reset()
        assert [a.next_delay() for _ in range(8)] == delays

    def test_call_retries_then_succeeds(self):
        sleeps = []
        policy = RetryPolicy(max_attempts=3, sleep=sleeps.append)
        attempts = []

        def flaky(attempt):
            attempts.append(attempt)
            if attempt < 3:
                raise OSError("transient")
            return "done"

        assert policy.call(flaky, retryable=(OSError,)) == "done"
        assert attempts == [1, 2, 3]
        assert len(sleeps) == 2

    def test_call_exhausts_and_raises_last_error(self):
        policy = RetryPolicy(max_attempts=2, sleep=lambda _: None)
        with pytest.raises(OSError):
            policy.call(
                lambda attempt: (_ for _ in ()).throw(OSError("still down")),
                retryable=(OSError,),
            )

    def test_unretryable_errors_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5, sleep=lambda _: None)
        calls = []

        def wrong(attempt):
            calls.append(attempt)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(wrong, retryable=(OSError,))
        assert calls == [1]


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        breaker.record_success()  # resets the consecutive count
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1

    def test_open_short_circuits_then_probes(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_after=2)
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()  # recovery window reached → HALF_OPEN
        assert breaker.short_circuits == 2
        assert breaker.allow()  # the probe goes through
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_after=1)
        breaker.record_failure()
        assert not breaker.allow()  # window done → HALF_OPEN
        assert breaker.allow()  # probe
        breaker.record_failure()  # probe failed
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestFaultInjector:
    def test_parse_spec_rates_and_caps(self):
        injector = faults.FaultInjector.parse(
            "worker-crash:1,solver-timeout:0.25:3", seed=7
        )
        fired = sum(injector.fire(faults.WORKER_CRASH) for _ in range(5))
        assert fired == 5  # rate 1, no cap
        fired = sum(injector.fire(faults.SOLVER_TIMEOUT) for _ in range(1000))
        assert fired == 3  # capped by max_fires

    def test_same_seed_same_schedule(self):
        a = faults.FaultInjector({"nonconvergence": 0.5}, seed=3)
        b = faults.FaultInjector({"nonconvergence": 0.5}, seed=3)
        schedule = [a.fire(faults.NONCONVERGENCE) for _ in range(64)]
        assert schedule == [b.fire(faults.NONCONVERGENCE) for _ in range(64)]
        assert any(schedule) and not all(schedule)

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            faults.FaultRule(site="disk-on-fire")
        with pytest.raises(ValueError):
            faults.FaultRule(site=faults.WORKER_CRASH, rate=1.5)

    def test_inject_context_restores_previous_plan(self):
        faults.uninstall()
        assert not faults.fire(faults.WORKER_CRASH)
        with faults.inject("worker-crash:1"):
            assert faults.fire(faults.WORKER_CRASH)
            with faults.inject("solver-timeout:1"):
                assert not faults.fire(faults.WORKER_CRASH)
                assert faults.fire(faults.SOLVER_TIMEOUT)
            assert faults.fire(faults.WORKER_CRASH)
        assert faults.active() is None


class TestDecisionOutcome:
    def test_with_degradation_accumulates(self):
        outcome = DecisionOutcome(
            verdict=AuditVerdict.unknown("test"), stages=("criteria",)
        )
        assert not outcome.degraded
        once = outcome.with_degradation("breaker-pinned")
        twice = once.with_degradation("pool-lost:serial-recovery")
        assert twice.degraded
        assert twice.degradation == "breaker-pinned;pool-lost:serial-recovery"
        assert twice.stages[-1] == "pool-lost:serial-recovery"

    def test_runtime_stats_merge_and_flags(self):
        a = RuntimeStats(pool_failures=1, budget_exhausted=2)
        b = RuntimeStats(pool_failures=2, breaker_trips=1)
        merged = a.merge(b)
        assert merged.pool_failures == 3
        assert merged.budget_exhausted == 2
        assert merged.breaker_trips == 1
        assert merged.any_degradation
        assert not RuntimeStats().any_degradation
        assert str(RuntimeStats()) == "clean"


class TestTypedExceptions:
    def test_malformed_event_bad_user(self):
        with pytest.raises(MalformedEventError):
            DisclosureEvent(time=0, user="", query=QUERY)
        with pytest.raises(MalformedEventError):
            DisclosureEvent(time=0, user="alice", query="not-a-query")

    def test_log_record_attaches_event_index(self):
        log = DisclosureLog()
        log.record(0, "alice", QUERY)
        with pytest.raises(MalformedEventError) as info:
            log.record(1, "", QUERY)
        assert info.value.event_index == 1
        assert "event #1" in str(info.value)
        assert isinstance(info.value, ValueError)  # back-compat contract

    def test_log_rejects_non_events_with_index(self):
        with pytest.raises(MalformedEventError) as info:
            DisclosureLog([DisclosureEvent(0, "a", QUERY), "garbage"])
        assert info.value.event_index == 1

    def test_policy_validates_and_coerces_assumption(self):
        policy = AuditPolicy(audit_query=QUERY, assumption="product")
        assert policy.assumption is PriorAssumption.PRODUCT
        with pytest.raises(PolicyError):
            AuditPolicy(audit_query=QUERY, assumption="psychic")
        with pytest.raises(PolicyError):
            AuditPolicy(audit_query="SELECT *", assumption="product")
        with pytest.raises(PolicyError):
            AuditPolicy(audit_query=QUERY, name="")

    def test_solver_configuration_errors_are_typed_valueerrors(self):
        system = AffineSystem(dimension=4)
        system.add_constraint({0: 1.0}, 1.0)
        with pytest.raises(SolverConfigurationError):
            solve_psd_feasibility([], system)
        with pytest.raises(SolverConfigurationError):
            solve_psd_feasibility([-2], system)
        with pytest.raises(SolverConfigurationError):
            solve_psd_feasibility([2], system, max_iterations=0)
        with pytest.raises(ValueError):  # typed errors stay catchable as before
            solve_psd_feasibility([2], system, tolerance=0.0)


class TestBreakerRegistry:
    def test_lazy_per_key_creation_with_shared_thresholds(self):
        from repro.runtime import BreakerRegistry

        registry = BreakerRegistry(failure_threshold=2, recovery_after=4)
        assert len(registry) == 0 and "a" not in registry
        breaker = registry.for_key("a")
        assert breaker is registry.for_key("a")  # stable per key
        assert breaker.failure_threshold == 2
        assert breaker.recovery_after == 4
        assert "a" in registry and registry.keys() == ("a",)

    def test_keys_trip_independently(self):
        from repro.runtime import BreakerRegistry

        registry = BreakerRegistry(failure_threshold=2)
        for _ in range(2):
            registry.for_key("noisy").record_failure()
        assert registry.for_key("noisy").state is BreakerState.OPEN
        assert registry.for_key("quiet").state is BreakerState.CLOSED
        assert registry.for_key("quiet").allow()  # neighbour unaffected
        assert registry.open_keys == ("noisy",)
        assert registry.total_trips == 1
        assert registry.states() == {"noisy": "open", "quiet": "closed"}

    def test_single_breaker_is_the_one_key_case(self):
        """API-compatibility: registry.for_key(k) behaves exactly like a
        bare CircuitBreaker with the same thresholds."""
        from repro.runtime import BreakerRegistry

        registry = BreakerRegistry(failure_threshold=3, recovery_after=2)
        keyed = registry.for_key(None)
        bare = CircuitBreaker(failure_threshold=3, recovery_after=2)
        script = ["fail", "fail", "fail", "allow", "allow", "allow", "ok"]
        for step in script:
            if step == "fail":
                assert keyed.record_failure() == bare.record_failure()
            elif step == "allow":
                assert keyed.allow() == bare.allow()
            else:
                keyed.record_success(), bare.record_success()
            assert keyed.state is bare.state

    def test_thresholds_validated(self):
        from repro.runtime import BreakerRegistry

        with pytest.raises(ValueError):
            BreakerRegistry(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerRegistry(recovery_after=0)

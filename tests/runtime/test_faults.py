"""Seeded fault-injection suite for the resilience layer.

The contract under test: every injected fault class — worker crash
mid-batch, task-dispatch pickle failure, solver timeout, forced SDP
nonconvergence, budget exhaustion — yields verdict *statuses* identical to
a clean serial run (budgets may soundly weaken decided verdicts to
UNKNOWN, never flip them), records its degradation on the report's
``runtime_stats`` and per-finding ``DecisionOutcome``, and never lets an
exception escape ``audit_log``.

``REPRO_FAULTS_SEED`` (the ``make chaos-smoke`` matrix) varies the fault
schedules; every assertion here is seed-independent unless it pins its own
seed explicitly.
"""

from __future__ import annotations

import os

import pytest

from repro.audit import (
    AuditPolicy,
    AuditReport,
    BatchAuditEngine,
    DisclosureLog,
    OfflineAuditor,
)
from repro.core.verdict import Verdict
from repro.db import parse_boolean_query
from repro.perf.bench import AUDIT_QUERY, build_mixed_density_log, build_registry
from repro.runtime import CircuitBreaker, faults

#: Seed for the chaos matrix (varied by `make chaos-smoke`).
ENV_SEED = int(os.environ.get(faults.ENV_SEED, "0"))


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """No fault plan may leak between tests (or out of this module)."""
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def registry():
    return build_registry(background_rows=16)


@pytest.fixture(scope="module")
def mixed_log(registry):
    return build_mixed_density_log(registry, n_events=30, seed=11)


def make_policy(name="faults-test"):
    return AuditPolicy(audit_query=parse_boolean_query(AUDIT_QUERY), name=name)


def statuses(report: AuditReport):
    return [finding.verdict.status for finding in report.findings]


def clean_statuses(universe, policy, log, **kwargs):
    """Reference statuses: serial engine, no faults installed."""
    engine = BatchAuditEngine(universe, policy, n_workers=1, **kwargs)
    return statuses(engine.audit_log(log))


# -- the SOS-reaching workload ----------------------------------------------------
#
# The registry's candidate worlds are {0..7} (three candidate records); a
# query's disclosed set is its equal-answer set, which always contains the
# actual world 3.  The pairs below are exhaustively verified to pass every
# cheap criterion *and* the optimizer inconclusively, so their decisions
# reach the certificate stage — the stage the solver-timeout injector and
# the circuit breaker act on.  A/B sets are encoded as DNF over the
# per-candidate EXISTS coordinates, so this is an end-to-end DB-layer path.

_PATIENTS = ("Bob", "Carol", "Dana")
_SOS_AUDIT = (1, 2, 3, 5)
_SOS_REACHING = ((0, 1, 3, 6, 7), (0, 1, 3, 7), (0, 3, 7))
_CRITERIA_DECIDED = ((1, 3, 5, 7), (0, 1, 2, 3))


def _exists(patient):
    return f"EXISTS(SELECT * FROM diagnoses WHERE patient = '{patient}')"


def _dnf(worlds):
    """A boolean query true exactly on ``worlds`` (bit k ↔ candidate k real)."""
    terms = []
    for w in worlds:
        literals = [
            _exists(p) if (w >> bit) & 1 else f"NOT {_exists(p)}"
            for bit, p in enumerate(_PATIENTS)
        ]
        terms.append("(" + " AND ".join(literals) + ")")
    return " OR ".join(terms)


def sos_policy():
    return AuditPolicy(audit_query=parse_boolean_query(_dnf(_SOS_AUDIT)), name="sos")


def sos_log():
    log = DisclosureLog()
    for t, b in enumerate(_SOS_REACHING + _CRITERIA_DECIDED):
        log.record(t, f"user{t}", parse_boolean_query(_dnf(b)))
    return log


def test_dnf_encoding_compiles_to_the_intended_sets(registry):
    audited = registry.compile_boolean(parse_boolean_query(_dnf(_SOS_AUDIT)))
    assert tuple(sorted(audited.members)) == _SOS_AUDIT


class TestWorkerCrash:
    def test_total_pool_loss_recovers_serially_verdict_identical(
        self, registry, mixed_log
    ):
        policy = make_policy()
        reference = clean_statuses(registry, policy, mixed_log)
        engine = BatchAuditEngine(
            registry, policy, n_workers=2, parallel_threshold=0
        )
        with faults.inject("worker-crash:1", seed=ENV_SEED):
            report = engine.audit_log(mixed_log)
        assert statuses(report) == reference
        stats = report.runtime_stats
        n_unique = engine.cache.misses
        assert stats.pool_failures >= 1
        assert stats.tasks_recovered_serial == n_unique
        assert stats.degraded_decisions == n_unique
        # Every decided finding records the recovery in its provenance.
        for finding in report.findings:
            assert finding.outcome is not None
            if finding.outcome.stages[-1:] != ("verdict-cache",):
                assert finding.outcome.degraded
                assert "serial-recovery" in finding.outcome.degradation

    def test_serial_engine_never_crashes_itself(self, registry, mixed_log):
        policy = make_policy()
        reference = clean_statuses(registry, policy, mixed_log)
        engine = BatchAuditEngine(registry, policy, n_workers=1)
        with faults.inject("worker-crash:1", seed=ENV_SEED):
            report = engine.audit_log(mixed_log)
        # The probe is gated on being a pool worker: serial runs are immune.
        assert statuses(report) == reference
        assert not report.runtime_stats.any_degradation


class TestPickleFailure:
    def test_partial_loss_keeps_completed_verdicts(self, registry, mixed_log):
        """A dispatch failure mid-submission loses only the unsubmitted tasks.

        Seed 1 is pinned: its schedule fires the (rate-0.5, max-1) probe on
        the third submission, so exactly two tasks complete in the first
        pool round and everything else is resubmitted once.
        """
        policy = make_policy()
        reference = clean_statuses(registry, policy, mixed_log)
        engine = BatchAuditEngine(
            registry, policy, n_workers=2, parallel_threshold=0
        )
        with faults.inject("pickle-failure:0.5:1", seed=1):
            report = engine.audit_log(mixed_log)
        assert statuses(report) == reference
        stats = report.runtime_stats
        assert stats.faults_injected == 1
        assert stats.pool_failures == 1
        assert stats.pool_retries == 1
        # Two tasks were submitted (and kept!) before the injected failure.
        assert stats.tasks_resubmitted == engine.cache.misses - 2
        assert stats.tasks_recovered_serial == 0
        assert engine.pool_engaged

    def test_persistent_dispatch_failure_degrades_to_serial(
        self, registry, mixed_log
    ):
        policy = make_policy()
        reference = clean_statuses(registry, policy, mixed_log)
        engine = BatchAuditEngine(
            registry, policy, n_workers=2, parallel_threshold=0
        )
        with faults.inject("pickle-failure:1", seed=ENV_SEED):
            report = engine.audit_log(mixed_log)
        assert statuses(report) == reference
        assert report.runtime_stats.tasks_recovered_serial == engine.cache.misses


class TestSolverTimeout:
    def test_certificate_failures_keep_verdicts_and_trip_breaker(self, registry):
        policy = sos_policy()
        log = sos_log()
        reference = clean_statuses(registry, policy, log)
        breaker = CircuitBreaker(failure_threshold=1, recovery_after=100)
        engine = BatchAuditEngine(
            registry, policy, n_workers=1, use_sos=True, breaker=breaker
        )
        with faults.inject("solver-timeout:1", seed=ENV_SEED):
            report = engine.audit_log(log)
        assert statuses(report) == reference
        stats = report.runtime_stats
        # The first certificate-stage decision failed and tripped the
        # breaker; every later task of the batch was pinned to the exact
        # path (so exactly one certificate failure total).
        assert stats.certificate_failures == 1
        assert stats.breaker_trips == 1
        assert stats.breaker_pinned == engine.cache.misses - 1
        pinned = [
            f
            for f in report.findings
            if f.outcome and f.outcome.degradation
            and "breaker-pinned" in f.outcome.degradation
        ]
        assert len(pinned) >= 1

    def test_without_breaker_every_certificate_fails_soundly(self, registry):
        policy = sos_policy()
        log = sos_log()
        reference = clean_statuses(registry, policy, log)
        breaker = CircuitBreaker(failure_threshold=10_000)  # effectively off
        engine = BatchAuditEngine(
            registry, policy, n_workers=1, use_sos=True, breaker=breaker
        )
        with faults.inject("solver-timeout:1", seed=ENV_SEED):
            report = engine.audit_log(log)
        assert statuses(report) == reference
        stats = report.runtime_stats
        assert stats.certificate_failures == len(_SOS_REACHING)
        assert stats.breaker_trips == 0
        assert stats.breaker_pinned == 0
        failed = [
            f
            for f in report.findings
            if f.verdict.details.get("certificate_stage") == "failed"
        ]
        assert len(failed) == len(_SOS_REACHING)
        for finding in failed:
            assert finding.verdict.status in (Verdict.SAFE, Verdict.UNSAFE)
            assert any(
                "sos failed" in stage for stage in finding.outcome.stages
            )


class TestNonconvergence:
    def test_nonconvergent_sdp_is_inconclusive_not_an_error(self, registry):
        policy = sos_policy()
        log = sos_log()
        reference = clean_statuses(registry, policy, log)
        engine = BatchAuditEngine(registry, policy, n_workers=1, use_sos=True)
        with faults.inject("nonconvergence:1", seed=ENV_SEED):
            report = engine.audit_log(log)
        assert statuses(report) == reference
        # "Solver found nothing" is a clean inconclusive, not a failure:
        # the exact stage decides and the breaker never hears about it.
        assert report.runtime_stats.certificate_failures == 0
        assert report.runtime_stats.breaker_trips == 0


class TestBudget:
    def test_zero_budget_is_sound_and_typed(self, registry):
        # The SOS workload needs the optimizer/exact stages, so a dead
        # budget actually bites (the mixed log is criteria-decided and
        # would sail through unchanged).
        policy = sos_policy()
        log = sos_log()
        reference = clean_statuses(registry, policy, log)
        engine = BatchAuditEngine(registry, policy, n_workers=1, decision_budget=0.0)
        report = engine.audit_log(log)
        for clean, starved in zip(reference, statuses(report)):
            # Budgets degrade soundly: a decided status either survives
            # (criteria are always run) or weakens to UNKNOWN — never flips.
            assert starved in (clean, Verdict.UNKNOWN)
        assert report.runtime_stats.budget_exhausted >= 1
        assert report.runtime_stats.degraded_decisions >= 1
        starved_unknowns = [
            f for f in report.findings if f.verdict.status is Verdict.UNKNOWN
        ]
        assert starved_unknowns  # the SOS-reaching pairs ran out of budget
        for finding in starved_unknowns:
            assert finding.verdict.method == "budget-exhausted"
            assert "budget" in (finding.outcome.degradation or "")

    def test_generous_budget_changes_nothing(self, registry, mixed_log):
        policy = make_policy()
        reference = clean_statuses(registry, policy, mixed_log)
        engine = BatchAuditEngine(registry, policy, n_workers=1, decision_budget=60.0)
        report = engine.audit_log(mixed_log)
        assert statuses(report) == reference
        assert report.runtime_stats.budget_exhausted == 0
        assert not report.runtime_stats.any_degradation

    def test_offline_auditor_budget_passthrough(self, registry):
        auditor = OfflineAuditor(registry, sos_policy())
        report = auditor.audit_log(sos_log(), decision_budget=0.0)
        assert report.runtime_stats is not None
        assert report.runtime_stats.budget_exhausted >= 1


class TestChaosMatrix:
    def test_mixed_fault_plan_is_verdict_identical(self, registry):
        """Crashes, timeouts and nonconvergence together: provenance moves,
        verdicts do not (no budget in the plan, so full identity holds)."""
        policy = sos_policy()
        log = sos_log()
        reference = clean_statuses(registry, policy, log)
        engine = BatchAuditEngine(
            registry,
            policy,
            n_workers=2,
            parallel_threshold=0,
            use_sos=True,
        )
        plan = "worker-crash:0.4,solver-timeout:0.6,nonconvergence:0.5"
        with faults.inject(plan, seed=ENV_SEED):
            report = engine.audit_log(log)
        assert statuses(report) == reference
        for finding in report.findings:
            assert finding.outcome is not None

    def test_no_exception_escapes_audit_log(self, registry, mixed_log):
        for site in faults.KNOWN_SITES:
            auditor = OfflineAuditor(registry, make_policy(name=f"chaos-{site}"))
            with faults.inject(f"{site}:1", seed=ENV_SEED):
                report = auditor.audit_log(mixed_log, n_workers=2)
            assert isinstance(report, AuditReport)
            assert len(report.findings) == len(mixed_log)


class TestProvenance:
    def test_clean_run_outcomes_are_attached_and_undegraded(
        self, registry, mixed_log
    ):
        engine = BatchAuditEngine(registry, make_policy(), n_workers=1)
        report = engine.audit_log(mixed_log)
        assert not report.runtime_stats.any_degradation
        for finding in report.findings:
            assert finding.outcome is not None
            assert not finding.outcome.degraded
            assert finding.outcome.stages  # pipeline trace is never empty
            assert finding.outcome.verdict is finding.verdict

    def test_warm_rerun_provenance_is_the_cache(self, registry, mixed_log):
        engine = BatchAuditEngine(registry, make_policy(), n_workers=1)
        engine.audit_log(mixed_log)
        warm = engine.audit_log(mixed_log)
        for finding in warm.findings:
            assert finding.outcome.stages == ("verdict-cache",)

    def test_env_plan_activates_and_deactivates(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_PLAN, "solver-timeout:1")
        monkeypatch.setenv(faults.ENV_SEED, "3")
        assert faults.active() is not None
        assert faults.fire(faults.SOLVER_TIMEOUT)
        assert not faults.fire(faults.WORKER_CRASH)
        monkeypatch.delenv(faults.ENV_PLAN)
        assert faults.active() is None
        assert not faults.fire(faults.SOLVER_TIMEOUT)


class TestStoreWrite:
    """The store-write fault site: a failed flush degrades to recomputation."""

    def test_failed_flush_verdict_identical_and_counted(
        self, registry, mixed_log, tmp_path
    ):
        from repro.audit import VerdictStore

        policy = make_policy()
        reference = clean_statuses(registry, policy, mixed_log)
        store = VerdictStore(tmp_path / "store.json")
        engine = BatchAuditEngine(registry, policy, n_workers=1, store=store)
        with faults.inject("store-write:1", seed=ENV_SEED):
            report = engine.audit_log(mixed_log)
        assert statuses(report) == reference
        assert store.stats.write_failures >= 1
        assert report.runtime_stats.store_failures >= 1
        assert not store.path.exists()  # nothing partial on disk

    def test_next_clean_flush_recovers(self, registry, mixed_log, tmp_path):
        from repro.audit import VerdictStore

        policy = make_policy()
        store = VerdictStore(tmp_path / "store.json")
        engine = BatchAuditEngine(registry, policy, n_workers=1, store=store)
        with faults.inject("store-write:1:1", seed=ENV_SEED):
            engine.audit_log(mixed_log)
        assert store.stats.write_failures == 1
        # Fault budget spent: the same engine's next audit flushes cleanly
        # and the next process inherits every verdict.
        engine.audit_log(mixed_log)
        assert store.path.exists()
        reloaded = VerdictStore(tmp_path / "store.json")
        assert reloaded.stats.loaded == store.stats.stored

    def test_incremental_chaos_run_stays_equivalent(
        self, registry, mixed_log, tmp_path
    ):
        from repro.audit import OfflineAuditor, VerdictStore

        policy = make_policy()
        reference = clean_statuses(registry, policy, mixed_log)
        store = VerdictStore(tmp_path / "store.json")
        auditor = OfflineAuditor(registry, policy)
        with faults.inject("store-write:0.5", seed=ENV_SEED):
            report = auditor.audit_log_incremental(mixed_log, store=store)
        assert statuses(report) == reference


class TestStoreSqlWrite:
    """The store-sql-write site: per-shard commit failures on the SQLite
    backend degrade that shard's appends to the next flush — verdicts are
    never wrong, pending rows are never lost, partial progress is safe."""

    def test_failed_shard_commits_verdict_identical_and_counted(
        self, registry, mixed_log, tmp_path
    ):
        from repro.audit import SqliteVerdictStore

        policy = make_policy()
        reference = clean_statuses(registry, policy, mixed_log)
        store = SqliteVerdictStore(tmp_path / "store")
        engine = BatchAuditEngine(registry, policy, n_workers=1, store=store)
        with faults.inject("store-sql-write:1", seed=ENV_SEED):
            report = engine.audit_log(mixed_log)
        assert statuses(report) == reference
        assert store.stats.write_failures >= 1
        assert report.runtime_stats.store_failures >= 1

    def test_failed_shards_keep_verdicts_pending_and_recover(
        self, registry, mixed_log, tmp_path
    ):
        from repro.audit import SqliteVerdictStore

        policy = make_policy()
        store = SqliteVerdictStore(tmp_path / "store")
        engine = BatchAuditEngine(registry, policy, n_workers=1, store=store)
        with faults.inject("store-sql-write:1", seed=ENV_SEED):
            engine.audit_log(mixed_log)
        failed = store.stats.write_failures
        assert failed >= 1
        # Every verdict the failed shards could not commit is still
        # pending in memory — visible to this process's probes.
        stored_total = store.stats.stored
        assert len(store) == stored_total
        # The next clean flush lands them on disk for other processes.
        assert store.flush()
        store.close()
        reloaded = SqliteVerdictStore(tmp_path / "store")
        assert len(reloaded) == stored_total

    def test_partial_flush_is_safe_progress(self, registry, mixed_log, tmp_path):
        """A probabilistic per-shard fault leaves committed shards intact
        and failed shards pending — never a torn or wrong row."""
        from repro.audit import OfflineAuditor, SqliteVerdictStore

        policy = make_policy()
        reference = clean_statuses(registry, policy, mixed_log)
        store = SqliteVerdictStore(tmp_path / "store")
        auditor = OfflineAuditor(registry, policy)
        with faults.inject("store-sql-write:0.5", seed=ENV_SEED):
            report = auditor.audit_log_incremental(mixed_log, store=store)
        assert statuses(report) == reference
        assert store.flush()  # lands any survivors once the fault lifts
        store.close()
        reloaded = SqliteVerdictStore(tmp_path / "store")
        assert len(reloaded) == store.stats.stored
        assert reloaded.stats.load_failures == 0


class TestNativeLoad:
    """The native-load fault site: a failed kernel import degrades, never decides."""

    @pytest.fixture(autouse=True)
    def restore_backend(self):
        from repro import _native

        yield
        _native.configure(None)

    def test_auto_falls_back_under_fault(self):
        from repro import _native

        with faults.inject("native-load:1", seed=ENV_SEED):
            backend = _native.configure("auto")
        assert backend.name == "numpy-fallback"
        assert backend.fused_split is None
        assert backend.load_error == "fault-injected: native-load"

    def test_require_raises_under_fault(self):
        from repro import _native
        from repro.exceptions import NativeBackendError

        with faults.inject("native-load:1", seed=ENV_SEED):
            with pytest.raises(NativeBackendError):
                _native.configure("require")

    def test_fallback_is_verdict_identical(self, registry, mixed_log):
        from repro import _native

        policy = make_policy()
        reference = clean_statuses(registry, policy, mixed_log)
        with faults.inject("native-load:1", seed=ENV_SEED):
            _native.configure("auto")
            engine = BatchAuditEngine(registry, policy, n_workers=1)
            report = engine.audit_log(mixed_log)
        assert statuses(report) == reference
        assert report.runtime_stats.native_backend == "numpy-fallback"

"""Chaos sites for the symbolic decision backend: load failure and timeout.

Same contract as the rest of the fault matrix (``make chaos-smoke`` runs
this module under several ``REPRO_FAULTS_SEED`` values): an injected
``symbolic-load`` or ``symbolic-timeout`` fault may move a decision's
*provenance* — which backend decided, which degradations were counted —
but never its verdict status, and never silently.  Every assertion here is
seed-independent: the injected rates are 1.0, so the schedule does not
depend on the chaos seed.
"""

from __future__ import annotations

import pytest

from repro.audit import (
    AuditPolicy,
    BatchAuditEngine,
    DisclosureLog,
    PriorAssumption,
)
from repro.db import CandidateUniverse, ColumnType, Database, TableSchema
from repro.db.query import AtLeast, ColumnCompare, Comparison, Exists, column_eq
from repro.exceptions import SymbolicBackendError
from repro.runtime import Budget, faults
from repro.symbolic import SymbolicPair, configure, enabled
from repro.symbolic.decide import METHOD_TIMEOUT, SUBCUBES, audit_symbolic
from repro.symbolic.formula import var

if not enabled():
    pytest.skip(
        "symbolic backend disabled (REPRO_SYMBOLIC=off)",
        allow_module_level=True,
    )


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """No fault plan (or faulted backend) may leak between tests."""
    faults.uninstall()
    configure()
    yield
    faults.uninstall()
    configure()


def build_scenario(n: int = 6):
    db = Database()
    db.create_table(TableSchema("t", (("v", ColumnType.INTEGER),)))
    records = [db.insert("t", v=i) for i in range(n // 2)]
    records += [db.hypothetical_record("t", v=i) for i in range(n // 2, n)]
    universe = CandidateUniverse(db, records)
    policy = AuditPolicy(
        audit_query=Exists("t", column_eq("v", 0)),
        assumption=PriorAssumption.POSSIBILISTIC_SUBCUBES,
        name="symbolic-faults",
    )
    log = DisclosureLog()
    log.record(1, "alice", AtLeast("t", ColumnCompare("v", Comparison.LE, 3), 2))
    log.record(2, "bob", Exists("t", column_eq("v", 1)))
    log.record(3, "carol", AtLeast("t", ColumnCompare("v", Comparison.LE, 5), 3))
    return universe, policy, log


def statuses(report):
    return [finding.verdict.status for finding in report.findings]


class TestLoadFault:
    def test_engine_degrades_to_mask_with_identical_verdicts(self):
        universe, policy, log = build_scenario()
        clean = statuses(
            BatchAuditEngine(
                universe, policy, decision_backend="mask"
            ).audit_log(log)
        )

        faults.install(faults.FaultInjector.parse("symbolic-load:1.0"))
        backend = configure("auto")
        assert backend.engine is None
        assert backend.load_error == "fault-injected: symbolic-load"

        report = BatchAuditEngine(
            universe, policy, decision_backend="symbolic"
        ).audit_log(log)
        assert statuses(report) == clean  # provenance moves, verdicts don't
        assert report.backend_counts == {"mask": len(log)}
        assert report.runtime_stats.symbolic_degraded == len(log)
        for finding in report.findings:
            assert "symbolic-unavailable:mask" in finding.outcome.degradation

    def test_require_mode_raises_typed_error(self):
        faults.install(faults.FaultInjector.parse("symbolic-load:1.0"))
        with pytest.raises(SymbolicBackendError):
            configure("require")


class TestTimeoutFault:
    def test_standalone_audit_reports_solver_timeout(self):
        faults.install(faults.FaultInjector.parse("symbolic-timeout:1.0"))
        pair = SymbolicPair(var(1), var(2), 4)
        verdict = audit_symbolic(SUBCUBES, pair, budget=Budget(5.0))
        assert not verdict.is_decided
        assert verdict.method == METHOD_TIMEOUT

    def test_engine_falls_back_to_mask_with_identical_verdicts(self):
        universe, policy, log = build_scenario()
        clean = statuses(
            BatchAuditEngine(
                universe, policy, decision_backend="mask"
            ).audit_log(log)
        )

        faults.install(faults.FaultInjector.parse("symbolic-timeout:1.0"))
        report = BatchAuditEngine(
            universe, policy, decision_backend="symbolic"
        ).audit_log(log)
        assert statuses(report) == clean
        assert report.backend_counts == {"mask": len(log)}
        assert report.runtime_stats.symbolic_degraded == len(log)
        for finding in report.findings:
            assert "symbolic-timeout:mask" in finding.outcome.degradation

    def test_bounded_fault_recovers(self):
        """After the fire cap, symbolic decisions resume (per-site cap)."""
        universe, policy, log = build_scenario()
        faults.install(
            faults.FaultInjector.parse("symbolic-timeout:1.0:1")
        )
        report = BatchAuditEngine(
            universe, policy, decision_backend="symbolic"
        ).audit_log(log)
        assert all(s.value in ("safe", "unsafe") for s in statuses(report))
        # One decision timed out and fell back; the rest stayed symbolic.
        assert report.backend_counts.get("mask", 0) >= 1
        assert report.runtime_stats.symbolic_degraded >= 1
        assert sum(report.backend_counts.values()) == len(log)

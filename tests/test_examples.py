"""Smoke tests: every shipped example must run cleanly end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they show"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    required = {
        "quickstart",
        "hospital_audit",
        "rectangle_worlds",
        "monotone_queries",
        "sos_certificates",
        "online_strategies",
        "flexibility_study",
    }
    assert required <= names

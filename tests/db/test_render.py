"""Round-trip tests for SQL rendering: AST → text → AST."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    AtLeast,
    ColumnCompare,
    Comparison,
    ContainsRecord,
    Exists,
    Implies,
    Literal,
    Select,
    column_eq,
    parse_boolean_query,
    parse_select_query,
    render_select,
    to_sql,
)
from repro.db.query import RowAnd, RowNot, RowOr, RowTrue
from repro.exceptions import QueryError


# -- strategies building random parseable ASTs --------------------------------

_columns = st.sampled_from(["age", "name", "ward"])
_ops = st.sampled_from(list(Comparison))
_values = st.one_of(
    st.integers(-100, 100),
    st.booleans(),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126, exclude_characters="\\"),
        max_size=8,
    ),
)

_comparisons = st.builds(ColumnCompare, _columns, _ops, _values)

_predicates = st.recursive(
    _comparisons,
    lambda inner: st.one_of(
        st.builds(RowAnd, inner, inner),
        st.builds(RowOr, inner, inner),
        st.builds(RowNot, inner),
    ),
    max_leaves=5,
)

_atoms = st.one_of(
    st.builds(Exists, st.sampled_from(["patients", "visits"]), _predicates),
    st.builds(
        AtLeast,
        st.sampled_from(["patients", "visits"]),
        _predicates,
        st.integers(0, 5),
    ),
    st.builds(Literal, st.booleans()),
)

_boolean_queries = st.recursive(
    _atoms,
    lambda inner: st.one_of(
        st.builds(lambda q: ~q, inner),
        st.builds(lambda a, b: a & b, inner, inner),
        st.builds(lambda a, b: a | b, inner, inner),
        st.builds(Implies, inner, inner),
    ),
    max_leaves=5,
)


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(_boolean_queries)
    def test_boolean_query_round_trip(self, query):
        text = to_sql(query)
        reparsed = parse_boolean_query(text)
        assert to_sql(reparsed) == text  # canonical after one round

    @settings(max_examples=80, deadline=None)
    @given(
        st.sampled_from(["patients", "visits"]),
        _predicates,
        st.lists(_columns, max_size=2, unique=True),
    )
    def test_select_round_trip(self, table, predicate, columns):
        select = Select(table=table, predicate=predicate, columns=tuple(columns))
        text = render_select(select)
        reparsed = parse_select_query(text)
        assert render_select(reparsed) == text

    def test_select_star_without_where(self):
        select = Select(table="t", predicate=RowTrue())
        assert render_select(select) == "SELECT * FROM t"
        assert render_select(parse_select_query("SELECT * FROM t")) == "SELECT * FROM t"


class TestSemanticsPreserved:
    @settings(max_examples=60, deadline=None)
    @given(_boolean_queries)
    def test_round_trip_preserves_evaluation(self, query):
        """The reparsed query evaluates identically on a concrete database."""
        from repro.db import ColumnType, Database, TableSchema

        db = Database()
        db.create_table(
            TableSchema.build(
                "patients",
                age=ColumnType.INTEGER,
                name=ColumnType.TEXT,
                ward=ColumnType.INTEGER,
            )
        )
        db.create_table(
            TableSchema.build(
                "visits",
                age=ColumnType.INTEGER,
                name=ColumnType.TEXT,
                ward=ColumnType.INTEGER,
            )
        )
        db.insert("patients", age=30, name="Bob", ward=3)
        db.insert("visits", age=44, name="Eve", ward=1)
        view = db.actual_view()
        reparsed = parse_boolean_query(to_sql(query))
        try:
            expected = query.evaluate(view)
        except QueryError:
            # Type-incomparable literals raise identically on both sides.
            with pytest.raises(QueryError):
                reparsed.evaluate(view)
            return
        assert reparsed.evaluate(view) == expected


class TestUnrenderable:
    def test_contains_record_raises(self):
        from repro.db import ColumnType, Database, TableSchema

        db = Database()
        db.create_table(TableSchema.build("t", x=ColumnType.INTEGER))
        record = db.insert("t", x=1)
        with pytest.raises(QueryError):
            to_sql(ContainsRecord(record))


class TestScenarioRoundTrip:
    def test_dump_then_load_is_behaviourally_identical(self):
        import json

        from repro.audit import OfflineAuditor
        from repro.io import dump_scenario, example_scenario_document, load_scenario

        original = load_scenario(example_scenario_document())
        document = dump_scenario(original)
        json.dumps(document)  # must be JSON-serialisable
        reloaded = load_scenario(document)
        report_a = OfflineAuditor(original.universe, original.policy).audit_log(
            original.log
        )
        report_b = OfflineAuditor(reloaded.universe, reloaded.policy).audit_log(
            reloaded.log
        )
        assert [f.verdict.status for f in report_a.findings] == [
            f.verdict.status for f in report_b.findings
        ]
        assert report_a.suspicious_users == report_b.suspicious_users

"""Tests for the synthetic workload generator."""

from __future__ import annotations

import pytest

from repro.audit import AuditPolicy, OfflineAuditor, PriorAssumption
from repro.db import generate_disclosure_log, generate_registry, generate_workload
from repro.db.compile import CandidateUniverse


class TestGenerateRegistry:
    def test_deterministic_under_seed(self):
        db1, c1 = generate_registry(seed=7)
        db2, c2 = generate_registry(seed=7)
        assert [r.values for r in c1] == [r.values for r in c2]

    def test_different_seeds_differ(self):
        _, c1 = generate_registry(seed=1, n_patients=6)
        _, c2 = generate_registry(seed=2, n_patients=6)
        assert [r.values for r in c1] != [r.values for r in c2]

    def test_hypothetical_records_not_inserted(self):
        db, candidates = generate_registry(n_hypothetical=2, seed=3)
        inserted = set(db.all_records())
        hypothetical = [r for r in candidates if r not in inserted]
        assert len(hypothetical) == 2

    def test_candidate_cap(self):
        db, candidates = generate_registry(
            n_patients=16, n_hypothetical=2, diagnosis_probability=1.0, seed=0
        )
        assert len(candidates) <= 16

    def test_never_empty_actual_world(self):
        db, candidates = generate_registry(
            n_patients=2, diagnosis_probability=0.0, seed=0
        )
        assert len(db.all_records()) >= 1


class TestGenerateLog:
    def test_event_count_and_users(self):
        db, candidates = generate_registry(seed=5)
        universe = CandidateUniverse(db, candidates)
        log = generate_disclosure_log(universe, n_events=10, n_users=3, seed=5)
        assert len(log) == 10
        assert all(e.user.startswith("user") for e in log)

    def test_queries_evaluate(self):
        db, candidates = generate_registry(seed=6)
        universe = CandidateUniverse(db, candidates)
        log = generate_disclosure_log(universe, n_events=20, seed=6)
        view = db.actual_view()
        for event in log:
            assert event.query.evaluate(view) in (True, False)

    def test_deterministic(self):
        db, candidates = generate_registry(seed=8)
        universe = CandidateUniverse(db, candidates)
        log1 = generate_disclosure_log(universe, seed=9)
        log2 = generate_disclosure_log(universe, seed=9)
        assert [str(e.query) for e in log1] == [str(e.query) for e in log2]


class TestGenerateWorkload:
    def test_end_to_end_auditable(self):
        workload = generate_workload(seed=11)
        policy = AuditPolicy(
            audit_query=workload.audit_query,
            assumption=PriorAssumption.PRODUCT,
        )
        report = OfflineAuditor(workload.universe, policy).audit_log(workload.log)
        assert len(report.findings) == len(workload.log)
        assert all(f.verdict.is_decided for f in report.findings)

    def test_audit_query_is_true_in_actual_world(self):
        workload = generate_workload(seed=12)
        assert workload.audit_query.evaluate(workload.database.actual_view())

    def test_sensitive_target_metadata(self):
        workload = generate_workload(seed=13)
        target = workload.universe.candidates[0]
        assert target["patient"] == workload.sensitive_patient
        assert target["disease"] == workload.sensitive_disease

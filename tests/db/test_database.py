"""Tests for schemas, the database, and record-level views."""

from __future__ import annotations

import pytest

from repro.db import ColumnType, Database, TableSchema
from repro.exceptions import QueryError


@pytest.fixture
def hospital():
    db = Database()
    db.create_table(
        TableSchema.build(
            "patients",
            name=ColumnType.TEXT,
            age=ColumnType.INTEGER,
            hiv=ColumnType.BOOLEAN,
        )
    )
    return db


class TestSchema:
    def test_build_and_lookup(self):
        schema = TableSchema.build("t", a=ColumnType.TEXT, b=ColumnType.INTEGER)
        assert schema.column_names == ("a", "b")
        assert schema.column_type("b") is ColumnType.INTEGER
        with pytest.raises(QueryError):
            schema.column_type("c")

    def test_invalid_names(self):
        with pytest.raises(QueryError):
            TableSchema.build("bad name", a=ColumnType.TEXT)
        with pytest.raises(QueryError):
            TableSchema.build("t")

    def test_type_validation(self):
        assert ColumnType.TEXT.validate("x") == "x"
        assert ColumnType.REAL.validate(3) == 3.0
        assert ColumnType.BOOLEAN.validate(True) is True
        with pytest.raises(QueryError):
            ColumnType.INTEGER.validate(True)  # bools are not ints here
        with pytest.raises(QueryError):
            ColumnType.TEXT.validate(5)

    def test_row_validation(self):
        schema = TableSchema.build("t", a=ColumnType.TEXT, b=ColumnType.INTEGER)
        assert schema.validate_row({"a": "x", "b": 1}) == {"a": "x", "b": 1}
        with pytest.raises(QueryError):
            schema.validate_row({"a": "x"})
        with pytest.raises(QueryError):
            schema.validate_row({"a": "x", "b": 1, "c": 2})


class TestDatabase:
    def test_insert_and_rows(self, hospital):
        rec = hospital.insert("patients", name="Bob", age=42, hiv=True)
        assert rec["name"] == "Bob"
        assert hospital.rows("patients") == (rec,)
        assert hospital.record(rec.record_id) == rec

    def test_duplicate_table_rejected(self, hospital):
        with pytest.raises(QueryError):
            hospital.create_table(TableSchema.build("patients", x=ColumnType.TEXT))

    def test_unknown_table(self, hospital):
        with pytest.raises(QueryError):
            hospital.rows("nope")

    def test_record_ids_are_unique(self, hospital):
        a = hospital.insert("patients", name="A", age=1, hiv=False)
        b = hospital.insert("patients", name="B", age=2, hiv=False)
        assert a.record_id != b.record_id

    def test_hypothetical_record_not_inserted(self, hospital):
        ghost = hospital.hypothetical_record("patients", name="X", age=9, hiv=True)
        assert ghost not in hospital.all_records()
        assert ghost.record_id not in {r.record_id for r in hospital.all_records()}

    def test_record_column_access(self, hospital):
        rec = hospital.insert("patients", name="Bob", age=42, hiv=True)
        with pytest.raises(QueryError):
            rec["salary"]


class TestViews:
    def test_view_membership(self, hospital):
        a = hospital.insert("patients", name="A", age=1, hiv=False)
        b = hospital.insert("patients", name="B", age=2, hiv=True)
        view = hospital.view([a])
        assert view.contains(a) and not view.contains(b)
        assert view.rows("patients") == (a,)
        assert len(view) == 1

    def test_actual_view(self, hospital):
        a = hospital.insert("patients", name="A", age=1, hiv=False)
        b = hospital.insert("patients", name="B", age=2, hiv=True)
        assert set(hospital.actual_view().rows("patients")) == {a, b}

    def test_view_with_hypothetical_record(self, hospital):
        ghost = hospital.hypothetical_record("patients", name="X", age=9, hiv=True)
        view = hospital.view([ghost])
        assert view.contains(ghost)

"""Tests for the query → PropertySet compiler (CandidateUniverse)."""

from __future__ import annotations

import pytest

from repro.db import (
    CandidateUniverse,
    ColumnType,
    Database,
    Exists,
    Select,
    TableSchema,
    column_eq,
    parse_boolean_query,
)
from repro.db.query import RowTrue
from repro.exceptions import QueryError


@pytest.fixture
def setting():
    db = Database()
    db.create_table(
        TableSchema.build(
            "facts", patient=ColumnType.TEXT, kind=ColumnType.TEXT
        )
    )
    r1 = db.insert("facts", patient="Bob", kind="hiv")
    r2 = db.insert("facts", patient="Bob", kind="transfusion")
    universe = CandidateUniverse(db, [r1, r2])
    return db, universe, r1, r2


class TestUniverse:
    def test_space_dimensions(self, setting):
        _, universe, r1, r2 = setting
        assert universe.space.n == 2
        assert universe.coordinate_of(r1) == 1
        assert universe.coordinate_of(r2) == 2

    def test_world_view_roundtrip(self, setting):
        _, universe, r1, r2 = setting
        for world in universe.space.worlds():
            assert universe.world_of(universe.view_of(world)) == world

    def test_actual_world_has_all_candidates(self, setting):
        _, universe, _, _ = setting
        assert universe.actual_world() == universe.space.world_id("11")

    def test_duplicate_candidates_rejected(self, setting):
        db, _, r1, _ = setting
        with pytest.raises(QueryError):
            CandidateUniverse(db, [r1, r1])

    def test_empty_universe_rejected(self, setting):
        db, _, _, _ = setting
        with pytest.raises(QueryError):
            CandidateUniverse(db, [])

    def test_non_candidate_coordinate_rejected(self, setting):
        db, universe, _, _ = setting
        ghost = db.hypothetical_record("facts", patient="X", kind="hiv")
        with pytest.raises(QueryError):
            universe.coordinate_of(ghost)


class TestCompileBoolean:
    def test_hiv_example_sets(self, setting):
        """The §1.1 example compiles to exactly the paper's table of worlds."""
        _, universe, r1, r2 = setting
        space = universe.space
        a = universe.compile_boolean(
            Exists("facts", column_eq("kind", "hiv"))
        )
        assert a == space.property_set(["10", "11"])  # r1 present
        b = universe.compile_boolean(
            Exists("facts", column_eq("kind", "hiv")).implies(
                Exists("facts", column_eq("kind", "transfusion"))
            )
        )
        # B rules out exactly the ✗-cell: r1 present, r2 absent.
        assert b == ~space.property_set(["10"])

    def test_presence_matches_coordinate(self, setting):
        _, universe, r1, _ = setting
        assert universe.presence(r1) == universe.space.coordinate_set(1)

    def test_compile_with_parser(self, setting):
        _, universe, _, _ = setting
        query = parse_boolean_query(
            "EXISTS(SELECT * FROM facts WHERE kind = 'hiv')"
        )
        assert universe.compile_boolean(query) == universe.space.property_set(
            ["10", "11"]
        )

    def test_hypothetical_candidates(self, setting):
        """Imaginary records participate as coordinates (the paper's
        "real or imaginary" critical records)."""
        db, _, r1, r2 = setting
        ghost = db.hypothetical_record("facts", patient="Eve", kind="hiv")
        universe = CandidateUniverse(db, [r1, r2, ghost])
        a = universe.compile_boolean(Exists("facts", column_eq("kind", "hiv")))
        # A holds whenever r1 or the ghost is present: 6 of 8 worlds.
        assert len(a) == 6
        # The actual world has only the inserted records.
        assert universe.actual_world() == universe.space.world_id("110")


class TestCompileAnswer:
    def test_boolean_answer_set(self, setting):
        """For a Boolean query whose actual answer is yes, the answer set is
        the query's property itself."""
        _, universe, _, _ = setting
        query = Exists("facts", column_eq("kind", "hiv"))
        assert universe.compile_answer(query) == universe.compile_boolean(query)

    def test_boolean_negative_answer_set(self, setting):
        """If the actual answer is no, the answer set is the complement."""
        _, universe, _, _ = setting
        query = Exists("facts", column_eq("kind", "dialysis"))
        assert universe.compile_answer(query) == universe.space.full  # never true

    def test_select_answer_groups_equal_outputs(self, setting):
        _, universe, r1, _ = setting
        query = Select("facts", RowTrue(), columns=("kind",))
        answer_set = universe.compile_answer(query)
        # Only the actual world yields exactly {hiv, transfusion}.
        assert answer_set == universe.space.property_set(["11"])

    def test_answer_from_alternate_world(self, setting):
        _, universe, _, _ = setting
        query = Exists("facts", column_eq("kind", "hiv"))
        empty_world = universe.space.world_id("00")
        answer_set = universe.compile_answer(query, actual_world=empty_world)
        assert answer_set == ~universe.compile_boolean(query)

    def test_callable_queries_supported(self, setting):
        _, universe, _, _ = setting
        count_rows = lambda view: len(view)
        answer_set = universe.compile_answer(count_rows)
        # Worlds with exactly 2 present candidates: just "11".
        assert answer_set == universe.space.property_set(["11"])

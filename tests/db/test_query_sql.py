"""Tests for the query AST, the SQL-ish parser, and evaluation semantics."""

from __future__ import annotations

import pytest

from repro.db import (
    AtLeast,
    ColumnType,
    Comparison,
    ContainsRecord,
    Database,
    Exists,
    Implies,
    Literal,
    Select,
    TableSchema,
    column_eq,
    parse_boolean_query,
    parse_select_query,
)
from repro.db.query import ColumnCompare, RowTrue
from repro.exceptions import ParseError, QueryError


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        TableSchema.build(
            "visits",
            patient=ColumnType.TEXT,
            year=ColumnType.INTEGER,
            hiv=ColumnType.BOOLEAN,
        )
    )
    database.insert("visits", patient="Bob", year=2005, hiv=False)
    database.insert("visits", patient="Bob", year=2007, hiv=True)
    database.insert("visits", patient="Eve", year=2006, hiv=False)
    return database


class TestRowPredicates:
    def test_comparisons(self, db):
        rows = db.rows("visits")
        pred = ColumnCompare("year", Comparison.GE, 2006)
        assert [pred.matches(r) for r in rows] == [False, True, True]

    def test_connectives(self, db):
        rows = db.rows("visits")
        pred = column_eq("patient", "Bob") & ColumnCompare("hiv", Comparison.EQ, True)
        assert sum(pred.matches(r) for r in rows) == 1
        pred_or = column_eq("patient", "Eve") | column_eq("patient", "Bob")
        assert all(pred_or.matches(r) for r in rows)
        assert not (~pred_or).matches(rows[0])

    def test_incomparable_types(self, db):
        pred = ColumnCompare("patient", Comparison.LT, 5)
        with pytest.raises(QueryError):
            pred.matches(db.rows("visits")[0])


class TestBooleanQueries:
    def test_exists(self, db):
        query = Exists("visits", column_eq("patient", "Bob"))
        assert query.evaluate(db.actual_view())
        empty = db.view([])
        assert not query.evaluate(empty)

    def test_at_least(self, db):
        query = AtLeast("visits", RowTrue(), 3)
        assert query.evaluate(db.actual_view())
        assert not AtLeast("visits", RowTrue(), 4).evaluate(db.actual_view())

    def test_contains_record(self, db):
        rec = db.rows("visits")[0]
        query = ContainsRecord(rec)
        assert query.evaluate(db.actual_view())
        assert not query.evaluate(db.view(db.rows("visits")[1:]))

    def test_implies_semantics(self, db):
        hiv = Exists("visits", column_eq("hiv", True))
        eve = Exists("visits", column_eq("patient", "Eve"))
        query = hiv.implies(eve)
        assert query.evaluate(db.actual_view())
        # Remove Eve: antecedent true, consequent false.
        only_bob = db.view([r for r in db.rows("visits") if r["patient"] == "Bob"])
        assert not query.evaluate(only_bob)
        # Remove all HIV rows: antecedent false ⇒ implication true.
        no_hiv = db.view([r for r in db.rows("visits") if not r["hiv"]])
        assert query.evaluate(no_hiv)

    def test_connective_composition(self, db):
        t, f = Literal(True), Literal(False)
        view = db.actual_view()
        assert (t & t).evaluate(view)
        assert not (t & f).evaluate(view)
        assert (t | f).evaluate(view)
        assert (~f).evaluate(view)


class TestSelect:
    def test_projection(self, db):
        query = Select("visits", column_eq("patient", "Bob"), columns=("year",))
        assert query.evaluate(db.actual_view()) == frozenset({(2005,), (2007,)})

    def test_star(self, db):
        query = Select("visits", column_eq("patient", "Eve"))
        results = query.evaluate(db.actual_view())
        assert results == frozenset({("Eve", 2006, False)})

    def test_output_changes_with_view(self, db):
        query = Select("visits", RowTrue(), columns=("patient",))
        full = query.evaluate(db.actual_view())
        partial = query.evaluate(db.view(db.rows("visits")[:1]))
        assert partial < full


class TestParser:
    def test_exists_roundtrip(self, db):
        query = parse_boolean_query(
            "EXISTS(SELECT * FROM visits WHERE patient = 'Bob' AND hiv = TRUE)"
        )
        assert isinstance(query, Exists)
        assert query.evaluate(db.actual_view())

    def test_implies_parsing(self, db):
        query = parse_boolean_query(
            "EXISTS(SELECT * FROM visits WHERE hiv = TRUE) IMPLIES "
            "EXISTS(SELECT * FROM visits WHERE patient = 'Eve')"
        )
        assert isinstance(query, Implies)
        assert query.evaluate(db.actual_view())

    def test_count_parsing(self, db):
        query = parse_boolean_query("COUNT(visits WHERE patient = 'Bob') >= 2")
        assert isinstance(query, AtLeast)
        assert query.evaluate(db.actual_view())

    def test_not_and_parentheses(self, db):
        query = parse_boolean_query(
            "NOT (EXISTS(SELECT * FROM visits WHERE year > 2010) OR FALSE)"
        )
        assert query.evaluate(db.actual_view())

    def test_operator_precedence(self):
        # AND binds tighter than OR; IMPLIES is loosest.
        query = parse_boolean_query("TRUE OR FALSE AND FALSE IMPLIES FALSE")
        # Parsed as (TRUE OR (FALSE AND FALSE)) IMPLIES FALSE = FALSE.
        db = Database()
        db.create_table(TableSchema.build("t", a=ColumnType.TEXT))
        assert not query.evaluate(db.actual_view())

    def test_select_parsing(self, db):
        query = parse_select_query(
            "SELECT patient, year FROM visits WHERE hiv = FALSE AND year <= 2006"
        )
        assert query.columns == ("patient", "year")
        results = query.evaluate(db.actual_view())
        assert results == frozenset({("Bob", 2005), ("Eve", 2006)})

    def test_string_escapes(self):
        query = parse_select_query(r"SELECT * FROM t WHERE name = 'O\'Brien'")
        assert query.predicate.value == "O'Brien"

    @pytest.mark.parametrize(
        "bad",
        [
            "EXISTS(SELECT * FROM )",
            "SELECT FROM t",
            "COUNT(t) >= 'x'",
            "TRUE AND",
            "EXISTS(SELECT * FROM t) garbage",
            "WHERE x = 1",
        ],
    )
    def test_malformed_queries_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_boolean_query(bad)

    def test_real_literals(self, db):
        query = parse_boolean_query("EXISTS(SELECT * FROM visits WHERE year >= 2006.5)")
        assert query.evaluate(db.actual_view())

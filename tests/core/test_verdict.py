"""Tests for the AuditVerdict/Verdict types."""

from __future__ import annotations

import pytest

from repro.core import AuditVerdict, Verdict


class TestVerdictEnum:
    def test_truthiness_is_forbidden(self):
        """Tri-state verdicts must not be used in boolean context."""
        with pytest.raises(TypeError):
            bool(Verdict.SAFE)
        with pytest.raises(TypeError):
            if Verdict.UNKNOWN:
                pass


class TestAuditVerdict:
    def test_constructors(self):
        safe = AuditVerdict.safe("cancellation", match_vectors=5)
        assert safe.is_safe and not safe.is_unsafe and safe.is_decided
        assert safe.details["match_vectors"] == 5

        unsafe = AuditVerdict.unsafe("box-necessary", witness="prior")
        assert unsafe.is_unsafe and unsafe.witness == "prior"

        unknown = AuditVerdict.unknown("pipeline-exhausted")
        assert not unknown.is_decided

    def test_str_mentions_method_and_evidence(self):
        safe = AuditVerdict.safe("sos", certificate=object())
        assert "SAFE" in str(safe) and "sos" in str(safe)
        assert "certificate" in str(safe)
        unsafe = AuditVerdict.unsafe("optimizer", witness=object())
        assert "UNSAFE" in str(unsafe) and "witness" in str(unsafe)

    def test_equality_ignores_details(self):
        v1 = AuditVerdict.safe("m", note=1)
        v2 = AuditVerdict.safe("m", note=2)
        assert v1 == v2  # details are diagnostic, not identity

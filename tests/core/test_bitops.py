"""Unit and property tests for the low-level bit utilities."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import _bitops as bo


class TestPopcountAndBits:
    def test_popcount_small_values(self):
        assert [bo.popcount(x) for x in range(8)] == [0, 1, 1, 2, 1, 2, 2, 3]

    @given(st.integers(min_value=0, max_value=2**30))
    def test_popcount_matches_bin(self, x):
        assert bo.popcount(x) == bin(x).count("1")

    @given(st.integers(min_value=0, max_value=2**12 - 1))
    def test_bits_roundtrip(self, x):
        assert bo.from_bits(bo.bits_of(x, 12)) == x

    def test_from_string_paper_convention(self):
        # Paper writes coordinate 1 leftmost: "011" means ω[1]=0, ω[2]=1, ω[3]=1.
        w = bo.from_string("011")
        assert bo.bits_of(w, 3) == (0, 1, 1)
        assert bo.to_string(w, 3) == "011"

    @given(st.integers(min_value=0, max_value=255))
    def test_string_roundtrip(self, x):
        assert bo.from_string(bo.to_string(x, 8)) == x

    def test_popcount_dispatch(self):
        """The selected branch and the 3.9 fallback agree on Ω-sized masks."""
        mask = (1 << 4096) - (1 << 100)
        assert bo.popcount(mask) == bin(mask).count("1") == 3996
        if hasattr(int, "bit_count"):  # 3.10+: dispatch must pick the C path
            assert bo.popcount(mask) == mask.bit_count()


class TestPackedMaskHelpers:
    @given(st.integers(min_value=0, max_value=2**200 - 1))
    def test_iter_bits_ascending_and_complete(self, mask):
        bits = list(bo.iter_bits(mask))
        assert bits == sorted(bits)
        assert bits == [i for i in range(mask.bit_length()) if (mask >> i) & 1]

    def test_iter_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            list(bo.iter_bits(-1))

    @given(st.sets(st.integers(min_value=0, max_value=63)))
    def test_mask_of_roundtrip(self, worlds):
        assert set(bo.iter_bits(bo.mask_of(worlds, 64))) == worlds

    def test_mask_of_bounds_checked(self):
        with pytest.raises(ValueError):
            bo.mask_of([64], 64)
        with pytest.raises(ValueError):
            bo.mask_of([-1], 64)

    @given(st.integers(min_value=0, max_value=6), st.integers(min_value=1, max_value=128))
    def test_stripe_mask_selects_odd_blocks(self, log_block, total):
        block = 1 << log_block
        stripe = bo.stripe_mask(block, total)
        assert stripe == bo.mask_of(
            [p for p in range(total) if (p // block) % 2 == 1], total
        )

    def test_stripe_mask_is_hypercube_coordinate(self):
        # block = 2^i selects exactly the worlds with coordinate bit i set.
        for n, i in [(4, 0), (4, 3), (6, 2)]:
            stripe = bo.stripe_mask(1 << i, 1 << n)
            assert set(bo.iter_bits(stripe)) == {
                w for w in range(1 << n) if (w >> i) & 1
            }

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_box_mask_matches_box_members(self, u, v):
        star, agreed = bo.match_key(u, v)
        assert set(bo.iter_bits(bo.box_mask(star, agreed))) == set(
            bo.box_members(star, agreed, 8)
        )


class TestPartialOrder:
    def test_leq_examples(self):
        assert bo.leq(0b001, 0b011)
        assert bo.leq(0, 0b111)
        assert not bo.leq(0b100, 0b011)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_leq_is_subset_order(self, x, y):
        as_sets = set(i for i in range(8) if (x >> i) & 1) <= set(
            i for i in range(8) if (y >> i) & 1
        )
        assert bo.leq(x, y) == as_sets

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_comparable_symmetric(self, x, y):
        assert bo.comparable(x, y) == bo.comparable(y, x)


class TestSubsetEnumeration:
    @given(st.integers(0, 2**10 - 1))
    def test_iter_subsets_counts(self, mask):
        subs = list(bo.iter_subsets(mask))
        assert len(subs) == 2 ** bo.popcount(mask)
        assert len(set(subs)) == len(subs)
        assert all(sub & ~mask == 0 for sub in subs)
        assert 0 in subs and mask in subs

    @given(st.integers(0, 2**6 - 1))
    def test_iter_supersets(self, mask):
        sups = list(bo.iter_supersets(mask, 6))
        assert len(sups) == 2 ** (6 - bo.popcount(mask))
        assert all(sup & mask == mask for sup in sups)


class TestMatchVectors:
    def test_paper_example(self):
        # Pair (01011, 01101) maps to 01**1 in the paper's Definition 5.8.
        u = bo.from_string("01011")
        v = bo.from_string("01101")
        star, agreed = bo.match_key(u, v)
        assert bo.match_vector_string(star, agreed, 5) == "01**1"

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_match_key_symmetric(self, u, v):
        assert bo.match_key(u, v) == bo.match_key(v, u)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_box_contains_both_endpoints(self, u, v):
        star, agreed = bo.match_key(u, v)
        box = set(bo.box_members(star, agreed, 8))
        assert u in box and v in box
        assert len(box) == 2 ** bo.popcount(star)

    def test_parse_roundtrip(self):
        for text in ["010", "***", "1*0", "0*1"]:
            star, agreed = bo.parse_match_vector(text)
            assert bo.match_vector_string(star, agreed, len(text)) == text

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            bo.parse_match_vector("01x")

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4])
    def test_all_match_vectors_count(self, n):
        keys = list(bo.all_match_vectors(n))
        assert len(keys) == 3**n
        assert len(set(keys)) == 3**n
        # Every key must be well-formed: agreed bits never overlap stars.
        assert all(star & agreed == 0 for star, agreed in keys)

    def test_box_members_of_all_stars_is_everything(self):
        star, agreed = bo.parse_match_vector("***")
        assert sorted(bo.box_members(star, agreed, 3)) == list(range(8))


class TestHammingBall:
    def test_radius_zero(self):
        assert bo.hamming_ball(0b101, 0, 3) == [0b101]

    def test_radius_one_size(self):
        assert len(bo.hamming_ball(0, 1, 4)) == 5

    def test_full_radius_is_everything(self):
        assert len(bo.hamming_ball(0b11, 4, 4)) == 16

    @given(st.integers(0, 15), st.integers(0, 4))
    def test_ball_membership(self, center, radius):
        ball = set(bo.hamming_ball(center, radius, 4))
        for x in range(16):
            assert (x in ball) == (bo.popcount(x ^ center) <= radius)

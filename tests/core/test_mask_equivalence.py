"""Randomized cross-checks: the packed-mask backend vs a frozenset reference.

The bitmask representation inside :class:`PropertySet` is an internal
encoding choice; semantically every operation must agree with the naive
sets-of-ints formulation.  These tests drive both backends over seeded
random instances — Boolean operators, subset relations, and end-to-end
``Safe_K`` verdicts (Definition 3.1) — plus the margin/minimal-interval
pipeline against :mod:`repro.possibilistic._reference`.
"""

from __future__ import annotations

import random

import pytest

from repro._bitops import mask_of
from repro.core import (
    HypercubeSpace,
    PossibilisticKnowledge,
    PropertySet,
    WorldSpace,
    safe_possibilistic,
)
from repro.possibilistic import _reference
from repro.possibilistic.families import SubcubeFamily
from repro.possibilistic.intervals import FamilyIntervalOracle
from repro.possibilistic.margins import SafetyMarginIndex
from repro.possibilistic.minimal import interval_partition, minimal_intervals_to

N_INSTANCES = 200


def _random_subset(rnd, size, allow_empty=True):
    lo = 0 if allow_empty else 1
    return frozenset(rnd.sample(range(size), rnd.randint(lo, size)))


class TestBooleanAlgebraEquivalence:
    """All operators of the set algebra, mask backend vs ``frozenset``."""

    def test_operators_match_frozenset_semantics(self):
        rnd = random.Random(1729)
        space = WorldSpace(13)
        universe = frozenset(range(space.size))
        for _ in range(N_INSTANCES):
            ra = _random_subset(rnd, space.size)
            rb = _random_subset(rnd, space.size)
            a = space.property_set(ra)
            b = space.property_set(rb)

            assert (a & b).members == ra & rb
            assert (a | b).members == ra | rb
            assert (a - b).members == ra - rb
            assert (a ^ b).members == ra ^ rb
            assert (~a).members == universe - ra

    def test_relations_cardinality_and_membership(self):
        rnd = random.Random(4104)
        space = WorldSpace(13)
        for _ in range(N_INSTANCES):
            ra = _random_subset(rnd, space.size)
            rb = _random_subset(rnd, space.size)
            a = space.property_set(ra)
            b = space.property_set(rb)

            assert (a <= b) == (ra <= rb)
            assert (a < b) == (ra < rb)
            assert (a >= b) == (ra >= rb)
            assert (a > b) == (ra > rb)
            assert (a == b) == (ra == rb)
            assert a.isdisjoint(b) == ra.isdisjoint(rb)
            assert len(a) == len(ra)
            assert bool(a) == bool(ra)
            assert sorted(a) == sorted(ra)
            for w in range(space.size):
                assert (w in a) == (w in ra)

    def test_mask_round_trip(self):
        rnd = random.Random(2_718)
        space = WorldSpace(11)
        for _ in range(50):
            ra = _random_subset(rnd, space.size)
            a = space.from_mask(mask_of(ra, space.size))
            assert a.members == ra
            assert a.mask == mask_of(ra, space.size)


class TestSafeKEquivalence:
    """End-to-end Definition 3.1 verdicts on random ``(A, B, K)`` instances."""

    def test_safe_k_matches_reference(self):
        rnd = random.Random(31_008)
        space = WorldSpace(10)
        disagreements = 0
        safe_count = 0
        for _ in range(N_INSTANCES):
            ra = _random_subset(rnd, space.size)
            rb = _random_subset(rnd, space.size)
            pairs = []
            for _ in range(rnd.randint(1, 6)):
                s = _random_subset(rnd, space.size, allow_empty=False)
                pairs.append((rnd.choice(sorted(s)), s))
            knowledge = PossibilisticKnowledge.from_tuples(space, pairs)
            audited = space.property_set(ra)
            disclosed = space.property_set(rb)

            expected = _reference.ref_safe_possibilistic(pairs, ra, rb)
            actual = safe_possibilistic(knowledge, audited, disclosed)
            disagreements += expected != actual
            safe_count += expected
        assert disagreements == 0
        # The workload must exercise both verdicts to mean anything.
        assert 0 < safe_count < N_INSTANCES


class TestMarginPipelineEquivalence:
    """Minimal intervals, partitions and margins vs the reference pipeline."""

    @pytest.mark.parametrize("seed", [3, 14, 159])
    def test_margin_sweep_matches_reference(self, seed):
        rnd = random.Random(seed)
        space = HypercubeSpace(5)
        candidates = sorted(rnd.sample(range(space.size), 4))
        ra = frozenset(rnd.sample(range(space.size), space.size // 2)) | {
            candidates[0]
        }
        audited = space.property_set(ra)

        oracle = FamilyIntervalOracle(
            space.property_set(candidates), SubcubeFamily(space)
        )
        index = SafetyMarginIndex(oracle, audited, require_tight=False)
        ref_oracle = _reference.RefSubcubeOracle(space.n, candidates)
        ref_margins = _reference.ref_margin_index(ref_oracle, ra)

        assert {
            w1: frozenset(index.margin(w1)) for w1 in ra & set(candidates)
        } == ref_margins

        for _ in range(40):
            rb = _random_subset(rnd, space.size)
            disclosed = space.property_set(rb)
            assert index.test(disclosed) == _reference.ref_margin_test(
                ref_margins, ra, rb
            )

    def test_minimal_intervals_match_reference(self):
        rnd = random.Random(926)
        space = HypercubeSpace(4)
        candidates = sorted(rnd.sample(range(space.size), 3))
        oracle = FamilyIntervalOracle(
            space.property_set(candidates), SubcubeFamily(space)
        )
        ref_oracle = _reference.RefSubcubeOracle(space.n, candidates)
        for _ in range(30):
            rt = _random_subset(rnd, space.size, allow_empty=False)
            target = space.property_set(rt)
            origin = rnd.choice(candidates)

            expected = _reference.ref_minimal_intervals_to(ref_oracle, origin, rt)
            actual = minimal_intervals_to(oracle, origin, target)
            assert {frozenset(item.interval) for item in actual} == set(expected)

            ref_classes, ref_inf = _reference.ref_interval_partition(
                ref_oracle, origin, rt
            )
            partition = interval_partition(oracle, origin, target)
            assert {frozenset(cls) for cls in partition.classes} == set(ref_classes)
            assert frozenset(partition.unreachable) == ref_inf
            assert partition.is_partition_of(target)

"""Tests for K-preserving disclosures and composition (Def 3.9, Prop 3.10)."""

from __future__ import annotations

import itertools

import pytest

from repro.core import (
    Distribution,
    PossibilisticKnowledge,
    ProbabilisticKnowledge,
    WorldSpace,
    audit_disclosure_sequence_possibilistic,
    compose_disclosures_possibilistic,
    compose_disclosures_probabilistic,
    is_preserving_possibilistic,
    is_preserving_probabilistic,
    preserving_cache_clear,
    preserving_cache_stats,
    safe_possibilistic,
)
from tests.conftest import all_subsets


class TestPossibilisticPreservation:
    def test_full_k_preserves_everything(self):
        """Ω_poss is preserved by every disclosure: S∩B stays a valid pair."""
        space = WorldSpace(3)
        k = PossibilisticKnowledge.full(space)
        for b in all_subsets(space):
            if b:
                assert is_preserving_possibilistic(k, b)

    def test_remark_4_2_counterexample(self):
        """K = Ω ⊗ {Ω} is not preserved by proper subsets."""
        space = WorldSpace(3)
        k = PossibilisticKnowledge.product(space.full, [space.full])
        b = space.property_set([0, 2])
        assert not is_preserving_possibilistic(k, b)
        assert is_preserving_possibilistic(k, space.full)

    def test_prop_3_10_part1_intersection(self):
        """B₁, B₂ K-preserving ⇒ B₁∩B₂ K-preserving — exhaustively verified."""
        space = WorldSpace(3)
        sigma = [
            space.property_set(s)
            for s in ([0], [1], [2], [0, 1], [1, 2], [0, 2], [0, 1, 2])
        ]
        k = PossibilisticKnowledge.product(space.full, sigma)
        preserving = [
            b for b in all_subsets(space) if b and is_preserving_possibilistic(k, b)
        ]
        for b1, b2 in itertools.combinations(preserving, 2):
            meet = b1 & b2
            if meet:
                assert is_preserving_possibilistic(k, meet), (b1, b2)

    def test_prop_3_10_part2_composition(self):
        """Safe B₁, safe B₂, one preserving ⇒ Safe(B₁∩B₂) — exhaustively verified."""
        space = WorldSpace(3)
        k = PossibilisticKnowledge.full(space)
        subsets = [b for b in all_subsets(space) if b]
        for a in all_subsets(space):
            for b1, b2 in itertools.product(subsets, subsets):
                if not (b1 & b2):
                    continue
                composable, _ = compose_disclosures_possibilistic(k, a, b1, b2)
                if composable:
                    assert safe_possibilistic(k, a, b1 & b2), (a, b1, b2)

    def test_composition_reports_reason(self):
        space = WorldSpace(3)
        k = PossibilisticKnowledge.full(space)
        a = space.property_set([0])
        unsafe_b = space.property_set([0])  # reveals A to an ignorant user? A∩B≠∅, A∪B≠Ω
        ok, reason = compose_disclosures_possibilistic(k, a, unsafe_b, space.full)
        assert not ok and "B1" in reason

    def test_remark_4_2_composition_failure(self):
        """Without preservation, two individually safe disclosures can compose unsafely.

        The paper's Remark 4.2: Ω = {1,2,3}, K = Ω ⊗ {Ω}, A = {3};
        B₁ = {1,3} and B₂ = {2,3} are each safe but B₁∩B₂ = {3} is not.
        """
        space = WorldSpace(3)
        k = PossibilisticKnowledge.product(space.full, [space.full])
        a = space.property_set([2])  # world "3" of the paper → id 2
        b1 = space.property_set([0, 2])
        b2 = space.property_set([1, 2])
        assert safe_possibilistic(k, a, b1)
        assert safe_possibilistic(k, a, b2)
        assert not safe_possibilistic(k, a, b1 & b2)
        composable, reason = compose_disclosures_possibilistic(k, a, b1, b2)
        assert not composable and "preserving" in reason


class TestProbabilisticPreservation:
    def _closed_family_k(self, space):
        """A K closed under conditioning: uniforms on every non-empty subset."""
        family = [
            Distribution.uniform_on(s) for s in all_subsets(space) if s
        ]
        return ProbabilisticKnowledge.product(space.full, family)

    def test_uniform_family_is_preserved(self):
        space = WorldSpace(3)
        k = self._closed_family_k(space)
        for b in all_subsets(space):
            if b:
                assert is_preserving_probabilistic(k, b)

    def test_single_distribution_not_preserved(self):
        space = WorldSpace(3)
        k = ProbabilisticKnowledge.product(space.full, [Distribution.uniform(space)])
        b = space.property_set([0, 1])
        assert not is_preserving_probabilistic(k, b)

    def test_composition_probabilistic(self):
        space = WorldSpace(3)
        k = self._closed_family_k(space)
        a = space.property_set([0])
        b1 = space.property_set([1, 2])  # disjoint from A: safe
        b2 = space.full
        ok, reason = compose_disclosures_probabilistic(k, a, b1, b2)
        assert ok


class TestDisclosureSequence:
    def test_cumulative_intersection_audit(self):
        space = WorldSpace(4)
        k = PossibilisticKnowledge.full(space)
        a = space.property_set([0])
        b1 = space.property_set([0, 1, 2])
        b2 = space.property_set([0, 1, 3])
        results = audit_disclosure_sequence_possibilistic(k, a, [b1, b2])
        assert len(results) == 2
        cumulative, step_safe, cumulative_safe = results[-1]
        assert cumulative == space.property_set([0, 1])
        # Each individual step is unsafe against an unrestricted K since
        # A∩Bᵢ ≠ ∅ and A∪Bᵢ ≠ Ω (Thm 3.11).
        assert not step_safe and not cumulative_safe

    def test_safe_sequence(self):
        space = WorldSpace(4)
        k = PossibilisticKnowledge.full(space)
        a = space.property_set([0])
        b1 = space.property_set([1, 2, 3])
        results = audit_disclosure_sequence_possibilistic(k, a, [b1])
        assert results[0][1] and results[0][2]


class TestPreservingMemo:
    """The (K-fingerprint, B-mask) memo behind is_preserving_*."""

    def setup_method(self):
        preserving_cache_clear()

    def teardown_method(self):
        preserving_cache_clear()

    def test_repeat_checks_hit(self):
        space = WorldSpace(3)
        k = PossibilisticKnowledge.full(space)
        b = space.property_set([0, 1])
        first = is_preserving_possibilistic(k, b)
        stats = preserving_cache_stats()
        misses = stats.misses
        assert is_preserving_possibilistic(k, b) is first
        assert stats.hits >= 1
        assert stats.misses == misses  # no recomputation

    def test_memo_discriminates_by_knowledge(self):
        """Two different K over the same space must not share entries."""
        space = WorldSpace(3)
        full = PossibilisticKnowledge.full(space)
        ignorant = PossibilisticKnowledge.product(space.full, [space.full])
        b = space.property_set([0, 2])
        assert is_preserving_possibilistic(full, b)
        assert not is_preserving_possibilistic(ignorant, b)
        # And again, now from the memo.
        assert is_preserving_possibilistic(full, b)
        assert not is_preserving_possibilistic(ignorant, b)

    def test_clear_resets_counters(self):
        space = WorldSpace(3)
        k = PossibilisticKnowledge.full(space)
        is_preserving_possibilistic(k, space.full)
        preserving_cache_clear()
        stats = preserving_cache_stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_probabilistic_memoised_too(self):
        space = WorldSpace(3)
        k = ProbabilisticKnowledge.product(
            space.full, [Distribution.uniform(space)]
        )
        b = space.property_set([0, 1])
        first = is_preserving_probabilistic(k, b)
        hits_before = preserving_cache_stats().hits
        assert is_preserving_probabilistic(k, b) is first
        assert preserving_cache_stats().hits == hits_before + 1


class TestSequenceFastPath:
    """audit_disclosure_sequence_possibilistic's Prop 3.10 shortcut."""

    def test_matches_direct_per_step_decisions(self):
        import random

        rnd = random.Random(13)
        space = WorldSpace(4)
        k = PossibilisticKnowledge.full(space)
        for _ in range(25):
            a = space.property_set(
                [w for w in space.worlds() if rnd.random() < 0.4] or [0]
            )
            seq = [
                space.property_set(
                    [w for w in space.worlds() if rnd.random() < 0.7] or [0]
                )
                for _ in range(4)
            ]
            results = audit_disclosure_sequence_possibilistic(k, a, seq)
            cumulative = space.full
            for disclosed, (cum, step_safe, cum_safe) in zip(seq, results):
                cumulative = cumulative & disclosed
                assert cum == cumulative
                assert step_safe == safe_possibilistic(k, a, disclosed)
                assert cum_safe == safe_possibilistic(k, a, cumulative)

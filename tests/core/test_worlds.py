"""Tests for world spaces and the property-set algebra."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import GridSpace, HypercubeSpace, LabeledSpace, PropertySet, WorldSpace, quadrants
from repro.exceptions import SpaceMismatchError


class TestWorldSpace:
    def test_size_and_iteration(self):
        space = WorldSpace(5)
        assert len(space) == 5
        assert list(space.worlds()) == [0, 1, 2, 3, 4]

    def test_rejects_empty_space(self):
        with pytest.raises(ValueError):
            WorldSpace(0)

    def test_world_id_bounds(self):
        space = WorldSpace(3)
        assert space.world_id(2) == 2
        with pytest.raises(ValueError):
            space.world_id(3)
        with pytest.raises(TypeError):
            space.world_id("nope")

    def test_equality_by_structure(self):
        assert WorldSpace(4) == WorldSpace(4)
        assert WorldSpace(4) != WorldSpace(5)
        assert HypercubeSpace(2) != GridSpace(2, 2)  # same size, different type

    def test_check_same_raises(self):
        with pytest.raises(SpaceMismatchError):
            WorldSpace(4).check_same(WorldSpace(5))


class TestHypercubeSpace:
    def test_size_is_power_of_two(self):
        assert HypercubeSpace(4).size == 16

    def test_bit_string_designators(self):
        space = HypercubeSpace(3)
        w = space.world_id("110")
        assert space.world_label(w) == "110"
        assert space.world_id((1, 1, 0)) == w

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            HypercubeSpace(3).world_id("10")

    def test_refuses_huge_dimension(self):
        with pytest.raises(ValueError):
            HypercubeSpace(30)

    def test_lattice_operations(self):
        space = HypercubeSpace(3)
        u, v = space.world_id("110"), space.world_id("011")
        assert space.world_label(space.meet(u, v)) == "010"
        assert space.world_label(space.join(u, v)) == "111"
        assert space.leq(space.meet(u, v), u)
        assert not space.leq(u, v)

    def test_coordinate_set(self):
        space = HypercubeSpace(3)
        x2 = space.coordinate_set(2)
        assert len(x2) == 4
        assert all(space.world_label(w)[1] == "1" for w in x2)
        with pytest.raises(ValueError):
            space.coordinate_set(0)

    def test_coordinate_names(self):
        space = HypercubeSpace(2, coordinate_names=["hiv", "transfusion"])
        w = space.world_id("10")
        assert space.records_present(w) == ("hiv",)
        with pytest.raises(ValueError):
            HypercubeSpace(2, coordinate_names=["only-one"])

    def test_subcube(self):
        space = HypercubeSpace(3)
        cube = space.subcube("1*0")
        assert set(space.world_label(w) for w in cube) == {"100", "110"}
        with pytest.raises(ValueError):
            space.subcube("1*")


class TestGridSpace:
    def test_figure1_dimensions(self):
        grid = GridSpace(14, 7)
        assert grid.size == 98

    def test_pixel_designators(self):
        grid = GridSpace(4, 3)
        w = grid.world_id((2, 1))
        assert grid.coordinates(w) == (2, 1)
        assert grid.world_label(w) == "(2,1)"
        with pytest.raises(ValueError):
            grid.world_id((4, 0))

    def test_rectangle_membership(self):
        grid = GridSpace(5, 5)
        rect = grid.rectangle(1, 1, 3, 2)
        assert len(rect) == 3 * 2
        assert (2, 1) in rect and (0, 0) not in rect

    def test_rectangle_clipped_to_grid(self):
        grid = GridSpace(3, 3)
        rect = grid.rectangle(1, 1, 10, 10)
        assert len(rect) == 4

    def test_rectangle_rejects_bad_corners(self):
        with pytest.raises(ValueError):
            GridSpace(3, 3).rectangle(2, 0, 1, 1)

    def test_ellipse_contains_centre(self):
        grid = GridSpace(10, 10)
        ell = grid.ellipse(5, 5, 2, 3)
        assert (5, 5) in ell
        assert (0, 0) not in ell


class TestLabeledSpace:
    def test_labels(self):
        space = LabeledSpace(["alice", "bob", "cindy"])
        assert space.world_id("bob") == 1
        assert space.label_of(2) == "cindy"

    def test_distinct_labels_required(self):
        with pytest.raises(ValueError):
            LabeledSpace(["x", "x"])


class TestPropertySetAlgebra:
    def test_boolean_operations(self):
        space = WorldSpace(6)
        a = space.property_set([0, 1, 2])
        b = space.property_set([2, 3])
        assert sorted(a & b) == [2]
        assert sorted(a | b) == [0, 1, 2, 3]
        assert sorted(a - b) == [0, 1]
        assert sorted(a ^ b) == [0, 1, 3]
        assert sorted(~a) == [3, 4, 5]

    def test_subset_comparisons(self):
        space = WorldSpace(4)
        small = space.property_set([1])
        big = space.property_set([1, 2])
        assert small <= big and small < big
        assert big >= small and big > small
        assert not big <= small

    def test_containment_and_len(self):
        space = WorldSpace(4)
        a = space.property_set([0, 3])
        assert 0 in a and 1 not in a
        assert len(a) == 2 and bool(a)
        assert not space.empty

    def test_full_and_empty(self):
        space = WorldSpace(3)
        assert space.full.is_full()
        assert not space.empty.is_full()
        assert (~space.empty) == space.full

    def test_cross_space_operations_rejected(self):
        a = WorldSpace(3).full
        b = WorldSpace(4).full
        with pytest.raises(SpaceMismatchError):
            _ = a & b

    def test_hashable_and_eq(self):
        space = WorldSpace(4)
        assert space.property_set([1, 2]) == space.property_set([2, 1])
        assert len({space.property_set([1]), space.property_set([1])}) == 1

    def test_repr_small_and_large(self):
        space = WorldSpace(12)
        assert "PropertySet" in repr(space.property_set([1]))
        assert "..." in repr(space.property_set(range(12)))

    def test_out_of_range_member_rejected(self):
        with pytest.raises(ValueError):
            PropertySet(WorldSpace(2), [5])


class TestQuadrants:
    def test_partition(self):
        space = HypercubeSpace(3)
        a = space.property_set(["011", "100", "110", "111"])
        b = space.property_set(["010", "101", "110", "111"])
        ab, a_not_b, not_a_b, neither = quadrants(a, b)
        assert sorted(ab.labels()) == ["110", "111"]
        assert sorted(a_not_b.labels()) == ["011", "100"]
        assert sorted(not_a_b.labels()) == ["010", "101"]
        assert sorted(neither.labels()) == ["000", "001"]
        union = ab | a_not_b | not_a_b | neither
        assert union.is_full()

    @given(st.sets(st.integers(0, 7)), st.sets(st.integers(0, 7)))
    def test_quadrants_always_partition(self, xs, ys):
        space = HypercubeSpace(3)
        a, b = space.property_set(xs), space.property_set(ys)
        cells = quadrants(a, b)
        assert sum(len(c) for c in cells) == space.size
        for i, c1 in enumerate(cells):
            for c2 in cells[i + 1 :]:
                assert c1.isdisjoint(c2)

"""Property tests for the E20 word-array mask kernels.

Every word-array operation is checked against its big-int reference on
randomly drawn masks: the two representations must be interchangeable
bit-for-bit, and the byte-LUT popcount path must agree with NumPy's
``bitwise_count`` wherever both exist.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import _bitops as bo

#: Sizes straddling the word boundary: sub-word, exact words, ragged tail.
SIZES = [1, 7, 63, 64, 65, 128, 200, 300]


def masks(size: int):
    return st.integers(min_value=0, max_value=(1 << size) - 1)


class TestWordConversion:
    @given(st.data())
    def test_roundtrip(self, data):
        size = data.draw(st.sampled_from(SIZES))
        mask = data.draw(masks(size))
        words = bo.mask_to_words(mask, size)
        assert words.dtype == np.uint64
        assert words.shape == (bo.n_words(size),)
        assert bo.words_to_mask(words) == mask

    @given(st.data())
    def test_bulk_matches_per_mask(self, data):
        size = data.draw(st.sampled_from(SIZES))
        values = data.draw(st.lists(masks(size), min_size=0, max_size=8))
        bulk = bo.masks_to_words(values, size)
        assert bulk.shape == (len(values), bo.n_words(size))
        for row, mask in zip(bulk, values):
            np.testing.assert_array_equal(row, bo.mask_to_words(mask, size))

    def test_oversized_mask_rejected(self):
        with pytest.raises(ValueError):
            bo.mask_to_words(1 << 64, 64)
        with pytest.raises(ValueError):
            bo.mask_to_words(-1, 64)

    def test_word_layout_is_little_endian(self):
        words = bo.mask_to_words((1 << 64) | 1, 65)
        assert list(words) == [1, 1]


class TestPopcounts:
    @given(st.data())
    def test_popcount_words_matches_bigint(self, data):
        size = data.draw(st.sampled_from(SIZES))
        mask = data.draw(masks(size))
        assert bo.popcount_words(bo.mask_to_words(mask, size)) == bo.popcount(mask)

    @given(st.data())
    def test_lut_path_matches_bigint(self, data):
        # The fallback must hold even when bitwise_count exists — it is the
        # only popcount on older NumPy and never allowed to rot.
        size = data.draw(st.sampled_from(SIZES))
        mask = data.draw(masks(size))
        words = bo.mask_to_words(mask, size)
        assert bo._popcount_words_lut(words) == bo.popcount(mask)

    @given(st.data())
    def test_popcount_rows_matches_per_row(self, data):
        size = data.draw(st.sampled_from(SIZES))
        values = data.draw(st.lists(masks(size), min_size=1, max_size=6))
        rows = bo.masks_to_words(values, size)
        got = bo.popcount_rows(rows)
        assert got.tolist() == [bo.popcount(m) for m in values]

    @given(st.data())
    def test_and_popcount_matches_bigint(self, data):
        size = data.draw(st.sampled_from(SIZES))
        a = data.draw(masks(size))
        b = data.draw(masks(size))
        got = bo.and_popcount_words(
            bo.mask_to_words(a, size), bo.mask_to_words(b, size)
        )
        assert got == bo.popcount(a & b)


class TestAndNotSweep:
    @given(st.data())
    def test_matches_bigint_containment(self, data):
        size = data.draw(st.sampled_from(SIZES))
        rows_masks = data.draw(st.lists(masks(size), min_size=1, max_size=8))
        b = data.draw(masks(size))
        rows = bo.masks_to_words(rows_masks, size)
        b_words = bo.mask_to_words(b, size)
        got = bo.andnot_any_rows(rows, b_words)
        expected = [m & ~b != 0 for m in rows_masks]
        assert got.tolist() == expected

    def test_empty_matrix(self):
        rows = bo.masks_to_words([], 128)
        got = bo.andnot_any_rows(rows, bo.mask_to_words(0, 128))
        assert got.shape == (0,)

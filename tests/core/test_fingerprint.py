"""Cross-process stability of ``PropertySet.fingerprint``.

The audit engine's verdict cache keys decisions by these digests, and the
parallel fan-out compares fingerprints computed in *different* worker
processes.  Python's built-in ``hash`` is salted per process, so these
tests pin the fingerprint scheme three ways: exact digests recorded here
(any change to the scheme must show up as an explicit test edit), equality
across construction routes, and a subprocess recomputation with a fresh
interpreter (fresh hash salt).
"""

from __future__ import annotations

import subprocess
import sys

from repro.core import GridSpace, HypercubeSpace, WorldSpace

#: Pinned digests: changing the fingerprint scheme invalidates every
#: persisted/verdict-cache key, so it must be a deliberate, visible choice.
PINNED = {
    "worldspace": "b4a768649134fefcca994ee4b5e7caf1",
    "hypercube": "acd9bbdd6e07720b4df6896f3047cfb9",
    "grid": "9c2d3a249fa7b44e4cba97b338a5bced",
    "empty": "17740602db360b4566ce20713fab6a07",
}

_SNIPPET = """
from repro.core import GridSpace, HypercubeSpace, WorldSpace
print(WorldSpace(6).property_set({0, 3, 5}).fingerprint())
print(HypercubeSpace(3).property_set({1, 2, 7}).fingerprint())
print(GridSpace(4, 3).property_set({0, 11}).fingerprint())
print(WorldSpace(6).empty.fingerprint())
"""


def _current_digests():
    return {
        "worldspace": WorldSpace(6).property_set({0, 3, 5}).fingerprint(),
        "hypercube": HypercubeSpace(3).property_set({1, 2, 7}).fingerprint(),
        "grid": GridSpace(4, 3).property_set({0, 11}).fingerprint(),
        "empty": WorldSpace(6).empty.fingerprint(),
    }


class TestFingerprintStability:
    def test_pinned_digests(self):
        assert _current_digests() == PINNED

    def test_construction_route_does_not_matter(self):
        space = WorldSpace(9)
        via_iterable = space.property_set([7, 2, 2, 5])
        via_mask = space.from_mask((1 << 2) | (1 << 5) | (1 << 7))
        via_algebra = space.property_set({2, 5}) | space.singleton(7)
        assert via_iterable.fingerprint() == via_mask.fingerprint()
        assert via_iterable.fingerprint() == via_algebra.fingerprint()

    def test_distinct_content_distinct_digest(self):
        space = WorldSpace(9)
        seen = {space.property_set(s).fingerprint() for s in [(0,), (1,), (0, 1), ()]}
        assert len(seen) == 4
        # Same members in a structurally different space must not collide:
        # the digest covers the space, not just the mask bytes.
        assert (
            HypercubeSpace(2).property_set({1, 2}).fingerprint()
            != GridSpace(2, 2).property_set({1, 2}).fingerprint()
        )

    def test_stable_across_processes(self):
        """A fresh interpreter (fresh hash salt) reproduces the digests."""
        out = subprocess.run(
            [sys.executable, "-c", _SNIPPET],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.split() == [
            PINNED["worldspace"],
            PINNED["hypercube"],
            PINNED["grid"],
            PINNED["empty"],
        ]

"""Tests for lattice operations on hypercube properties (Section 5 preliminaries)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    HypercubeSpace,
    down_closure,
    is_down_set,
    is_up_set,
    join_set,
    maximal_elements,
    meet_set,
    minimal_elements,
    monotone_mask,
    up_closure,
    xor_mask,
)
from repro.exceptions import SpaceMismatchError
from repro.core.worlds import WorldSpace


def cube(n):
    return HypercubeSpace(n)


subsets3 = st.sets(st.integers(0, 7))
subsets4 = st.sets(st.integers(0, 15))


class TestUpDownSets:
    def test_examples(self):
        space = cube(3)
        assert is_up_set(space.property_set(["111"]))
        assert is_down_set(space.property_set(["000", "001"]))
        assert not is_down_set(space.property_set(["001", "011"]))

    def test_up_set_with_all_but_bottom(self):
        space = cube(3)
        s = space.where(lambda w: w != 0)
        assert is_up_set(s)
        assert not is_down_set(s)

    def test_empty_and_full_are_both(self):
        space = cube(3)
        for s in (space.empty, space.full):
            assert is_up_set(s) and is_down_set(s)

    @given(subsets3)
    def test_up_closure_is_up_set(self, xs):
        space = cube(3)
        s = space.property_set(xs)
        closed = up_closure(s)
        assert is_up_set(closed)
        assert s <= closed

    @given(subsets3)
    def test_down_closure_is_down_set(self, xs):
        space = cube(3)
        s = space.property_set(xs)
        closed = down_closure(s)
        assert is_down_set(closed)
        assert s <= closed

    @given(subsets3)
    def test_closure_idempotent(self, xs):
        space = cube(3)
        s = space.property_set(xs)
        assert up_closure(up_closure(s)) == up_closure(s)
        assert down_closure(down_closure(s)) == down_closure(s)

    @given(subsets3)
    def test_complement_duality(self, xs):
        """A is an up-set iff its complement is a down-set."""
        space = cube(3)
        s = space.property_set(xs)
        assert is_up_set(s) == is_down_set(~s)

    def test_requires_hypercube(self):
        with pytest.raises(SpaceMismatchError):
            is_up_set(WorldSpace(4).full)


class TestMeetJoinSets:
    def test_theorem_53_notation(self):
        space = cube(2)
        a = space.property_set(["10"])
        b = space.property_set(["01"])
        assert meet_set(a, b) == space.property_set(["00"])
        assert join_set(a, b) == space.property_set(["11"])

    @given(subsets3, subsets3)
    def test_meet_join_sizes(self, xs, ys):
        space = cube(3)
        a, b = space.property_set(xs), space.property_set(ys)
        if a and b:
            assert len(meet_set(a, b)) <= len(a) * len(b)
            assert len(join_set(a, b)) <= len(a) * len(b)
        else:
            assert not meet_set(a, b) and not join_set(a, b)

    @given(subsets3)
    def test_meet_with_bottom(self, xs):
        space = cube(3)
        a = space.property_set(xs)
        bottom = space.property_set([0])
        if a:
            assert meet_set(a, bottom) == bottom
            assert join_set(a, bottom) == a


class TestXorMask:
    @given(subsets4, st.integers(0, 15))
    def test_involution(self, xs, z):
        space = cube(4)
        a = space.property_set(xs)
        assert xor_mask(z, xor_mask(z, a)) == a

    @given(subsets4, st.integers(0, 15))
    def test_preserves_size(self, xs, z):
        space = cube(4)
        a = space.property_set(xs)
        assert len(xor_mask(z, a)) == len(a)

    def test_full_flip_swaps_up_and_down(self):
        space = cube(3)
        up = space.property_set(["111", "110", "011", "101"])
        assert is_up_set(up)
        flipped = xor_mask(7, up)
        assert is_down_set(flipped)

    def test_bad_mask_rejected(self):
        space = cube(2)
        with pytest.raises(ValueError):
            xor_mask(9, space.full)


class TestExtremalElements:
    def test_minimal_maximal(self):
        space = cube(3)
        s = space.property_set(["001", "011", "110", "100"])
        assert set(minimal_elements(s).labels()) == {"001", "100"}
        assert set(maximal_elements(s).labels()) == {"011", "110"}

    @given(subsets3)
    def test_minimal_generate_up_closure(self, xs):
        space = cube(3)
        s = space.property_set(xs)
        assert up_closure(minimal_elements(s)) == up_closure(s)

    @given(subsets3)
    def test_maximal_generate_down_closure(self, xs):
        space = cube(3)
        s = space.property_set(xs)
        assert down_closure(maximal_elements(s)) == down_closure(s)


class TestMonotoneMask:
    def test_upset_downset_needs_zero_mask(self):
        space = cube(3)
        a = up_closure(space.property_set(["100"]))
        b = down_closure(space.property_set(["011"]))
        assert monotone_mask(a, b) == 0

    def test_flip_found(self):
        space = cube(3)
        a = up_closure(space.property_set(["100"]))
        b = down_closure(space.property_set(["011"]))
        z = 0b101
        flipped_a, flipped_b = xor_mask(z, a), xor_mask(z, b)
        found = monotone_mask(flipped_a, flipped_b)
        assert found is not None
        assert is_up_set(xor_mask(found, flipped_a))
        assert is_down_set(xor_mask(found, flipped_b))

    def test_no_mask_exists(self):
        space = cube(2)
        # A = {11, 00} can never be made an up-set by coordinate flips:
        # any mask leaves two antichain-extremes both inside.
        a = space.property_set(["11", "00"])
        b = space.property_set(["01"])
        assert monotone_mask(a, b) is None

    @given(subsets4, subsets4)
    def test_mask_soundness(self, xs, ys):
        """Whenever a mask is returned, it really works (exhaustive check)."""
        space = cube(4)
        a, b = space.property_set(xs), space.property_set(ys)
        z = monotone_mask(a, b)
        if z is not None:
            assert is_up_set(xor_mask(z, a))
            assert is_down_set(xor_mask(z, b))

    @given(st.sets(st.integers(0, 7)), st.sets(st.integers(0, 7)))
    def test_mask_completeness_n3(self, xs, ys):
        """Whenever some mask works (exhaustive search), monotone_mask finds one."""
        space = cube(3)
        a, b = space.property_set(xs), space.property_set(ys)
        exists = any(
            is_up_set(xor_mask(z, a)) and is_down_set(xor_mask(z, b))
            for z in range(8)
        )
        assert (monotone_mask(a, b) is not None) == exists

"""Tests for the core Distribution type and knowledge acquisition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Distribution, HypercubeSpace, WorldSpace, mix
from repro.exceptions import InvalidDistributionError


@st.composite
def distributions(draw, size=8):
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=size,
            max_size=size,
        ).filter(lambda ws: sum(ws) > 1e-6)
    )
    return Distribution(WorldSpace(size), weights, normalize=True)


class TestConstruction:
    def test_validates_length(self):
        with pytest.raises(InvalidDistributionError):
            Distribution(WorldSpace(3), [0.5, 0.5])

    def test_validates_sum(self):
        with pytest.raises(InvalidDistributionError):
            Distribution(WorldSpace(2), [0.7, 0.7])

    def test_validates_nonnegative(self):
        with pytest.raises(InvalidDistributionError):
            Distribution(WorldSpace(2), [1.5, -0.5])

    def test_normalize(self):
        d = Distribution(WorldSpace(4), [1, 1, 2, 0], normalize=True)
        assert d.mass(2) == pytest.approx(0.5)

    def test_normalize_zero_mass_rejected(self):
        with pytest.raises(InvalidDistributionError):
            Distribution(WorldSpace(2), [0, 0], normalize=True)

    def test_probs_read_only(self):
        d = Distribution.uniform(WorldSpace(4))
        with pytest.raises(ValueError):
            d.probs[0] = 1.0

    def test_uniform(self):
        d = Distribution.uniform(WorldSpace(5))
        assert d.mass(3) == pytest.approx(0.2)

    def test_uniform_on(self):
        space = WorldSpace(5)
        support = space.property_set([1, 3])
        d = Distribution.uniform_on(support)
        assert d.mass(1) == pytest.approx(0.5)
        assert d.mass(0) == 0.0
        with pytest.raises(InvalidDistributionError):
            Distribution.uniform_on(space.empty)

    def test_point_mass(self):
        d = Distribution.point_mass(WorldSpace(3), 2)
        assert d.mass(2) == 1.0
        assert d.support().members == frozenset([2])

    def test_from_mapping_with_labels(self):
        space = HypercubeSpace(2)
        d = Distribution.from_mapping(space, {"10": 0.25, "01": 0.75})
        assert d.mass("10") == pytest.approx(0.25)

    def test_random_is_valid(self):
        rng = np.random.default_rng(1)
        d = Distribution.random(WorldSpace(6), rng)
        assert d.probs.sum() == pytest.approx(1.0)


class TestEventProbability:
    def test_prob_of_event(self):
        space = WorldSpace(4)
        d = Distribution(space, [0.1, 0.2, 0.3, 0.4])
        assert d.prob(space.property_set([1, 3])) == pytest.approx(0.6)
        assert d.prob(space.empty) == 0.0
        assert d.prob(space.full) == pytest.approx(1.0)

    @given(distributions())
    def test_prob_additivity(self, d):
        space = d.space
        a = space.property_set([0, 1, 2])
        b = space.property_set([5, 6])
        assert d.prob(a | b) == pytest.approx(d.prob(a) + d.prob(b))

    @given(distributions())
    def test_prob_complement(self, d):
        a = d.space.property_set([0, 3, 4])
        assert d.prob(a) + d.prob(~a) == pytest.approx(1.0)


class TestConditioning:
    def test_conditional_paper_semantics(self):
        """P(ω|B) = P(ω)/P[B] on B and 0 outside (Section 3.3)."""
        space = WorldSpace(3)
        d = Distribution(space, [0.2, 0.3, 0.5])
        b = space.property_set([1, 2])
        post = d.conditional(b)
        assert post.mass(0) == 0.0
        assert post.mass(1) == pytest.approx(0.375)
        assert post.mass(2) == pytest.approx(0.625)

    def test_conditional_on_null_event_rejected(self):
        space = WorldSpace(3)
        d = Distribution.point_mass(space, 0)
        with pytest.raises(InvalidDistributionError):
            d.conditional(space.property_set([1]))

    def test_conditional_prob(self):
        space = WorldSpace(4)
        d = Distribution.uniform(space)
        a = space.property_set([0, 1])
        b = space.property_set([1, 2])
        assert d.conditional_prob(a, b) == pytest.approx(0.5)

    @given(distributions())
    def test_conditioning_is_idempotent(self, d):
        b = d.space.property_set([0, 1, 2, 3])
        if d.prob(b) > 1e-9:
            once = d.conditional(b)
            twice = once.conditional(b)
            assert once.allclose(twice, atol=1e-9)

    @given(distributions())
    def test_chain_conditioning_equals_intersection(self, d):
        """Acquiring B1 then B2 equals acquiring B1 ∩ B2 (Section 3.3)."""
        space = d.space
        b1 = space.property_set([0, 1, 2, 3, 4])
        b2 = space.property_set([2, 3, 4, 5])
        if d.prob(b1 & b2) > 1e-9:
            assert d.conditional(b1).conditional(b2).allclose(
                d.conditional(b1 & b2), atol=1e-9
            )


class TestSupportAndComparison:
    def test_support(self):
        space = WorldSpace(4)
        d = Distribution(space, [0.5, 0.0, 0.5, 0.0])
        assert sorted(d.support()) == [0, 2]

    def test_considers_possible(self):
        d = Distribution(WorldSpace(2), [1.0, 0.0])
        assert d.considers_possible(0)
        assert not d.considers_possible(1)

    def test_distance_linf(self):
        space = WorldSpace(2)
        d1 = Distribution(space, [1.0, 0.0])
        d2 = Distribution(space, [0.6, 0.4])
        assert d1.distance_linf(d2) == pytest.approx(0.4)

    def test_eq_and_hash(self):
        space = WorldSpace(3)
        d1 = Distribution(space, [0.2, 0.3, 0.5])
        d2 = Distribution(space, [0.2, 0.3, 0.5])
        assert d1 == d2 and hash(d1) == hash(d2)

    def test_as_dict_sparse(self):
        d = Distribution(WorldSpace(4), [0.0, 1.0, 0.0, 0.0])
        assert d.as_dict() == {1: 1.0}


class TestMix:
    def test_endpoint_weights(self):
        space = WorldSpace(3)
        d1 = Distribution.point_mass(space, 0)
        d2 = Distribution.point_mass(space, 2)
        assert mix(d1, d2, 0.0) == d1
        assert mix(d1, d2, 1.0) == d2

    def test_liftability_perturbation(self):
        """Mixing with uniform gives full support while staying ε-close (Def 3.7)."""
        space = WorldSpace(10)
        d = Distribution.point_mass(space, 0)
        eps = 1e-3
        lifted = mix(d, Distribution.uniform(space), eps)
        assert lifted.support().is_full()
        assert d.distance_linf(lifted) < eps

    def test_weight_validation(self):
        space = WorldSpace(2)
        d = Distribution.uniform(space)
        with pytest.raises(ValueError):
            mix(d, d, 1.5)

"""Tests for the Section 3 privacy predicates, including Theorem 3.11.

The closed-form characterisations are validated against brute-force
quantification over explicit second-level knowledge sets, exactly as the
definitions read.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Distribution,
    HypercubeSpace,
    PossibilisticKnowledge,
    ProbabilisticKnowledge,
    WorldSpace,
    possibilistic_violation,
    probabilistic_violation,
    safe_c_pi,
    safe_c_sigma,
    safe_pi,
    safe_possibilistic,
    safe_probabilistic,
    safe_unrestricted,
    safe_unrestricted_known_world,
    safety_gap,
    unconditionally_private,
)
from tests.conftest import all_subsets


class TestPossibilisticDefinition:
    def test_revealing_disclosure_is_unsafe(self):
        """If the user knew B ⇒ A, disclosing B reveals A."""
        space = WorldSpace(4)
        a = space.property_set([0, 1])
        b = space.property_set([0, 2])
        # User considers 0 and 3 possible: learning B leaves {0} ⊆ A.
        k = PossibilisticKnowledge.from_tuples(space, [(0, [0, 3])])
        assert not safe_possibilistic(k, a, b)
        witness = possibilistic_violation(k, a, b)
        assert witness is not None and witness.world == 0

    def test_already_knowing_a_is_not_a_gain(self):
        """No gain if the user knew A before the disclosure (S ⊆ A)."""
        space = WorldSpace(4)
        a = space.property_set([0, 1])
        b = space.property_set([0, 2])
        k = PossibilisticKnowledge.from_tuples(space, [(0, [0, 1])])
        assert safe_possibilistic(k, a, b)
        assert possibilistic_violation(k, a, b) is None

    def test_pairs_outside_b_are_discarded(self):
        """Pairs with ω ∉ B are inconsistent with the disclosure."""
        space = WorldSpace(4)
        a = space.property_set([0])
        b = space.property_set([1])
        k = PossibilisticKnowledge.from_tuples(space, [(0, [0, 1])])
        # The only pair has ω = 0 ∉ B, so the predicate holds vacuously.
        assert safe_possibilistic(k, a, b)

    def test_shrinking_k_preserves_safety(self):
        """Remark 3.2: Safe_K(A,B) and K' ⊆ K imply Safe_K'(A,B)."""
        space = WorldSpace(3)
        k = PossibilisticKnowledge.full(space)
        for a in all_subsets(space):
            for b in all_subsets(space):
                if not b:
                    continue
                if safe_possibilistic(k, a, b):
                    smaller = k.restrict(lambda pair: pair.world == 0)
                    if len(smaller) > 0:
                        assert safe_possibilistic(smaller, a, b)

    def test_prop_3_3_matches_product(self):
        """Safe_{C,Σ} (Prop 3.3) agrees with Def 3.1 on the product C ⊗ Σ."""
        space = WorldSpace(4)
        sigma = [
            space.property_set(s)
            for s in ([0, 1], [1, 2, 3], [0, 2], [0, 1, 2, 3])
        ]
        candidates = space.property_set([0, 2])
        k = PossibilisticKnowledge.product(candidates, sigma)
        for a in all_subsets(space):
            for b in all_subsets(space):
                if not (b & candidates):
                    continue  # disclosure inconsistent with auditor's C
                assert safe_c_sigma(candidates, sigma, a, b) == safe_possibilistic(
                    k, a, b
                ), (a, b)


class TestProbabilisticDefinition:
    def test_gain_detected(self):
        space = WorldSpace(4)
        a = space.property_set([0])
        b = space.property_set([0, 1])
        k = ProbabilisticKnowledge.product(space.full, [Distribution.uniform(space)])
        assert not safe_probabilistic(k, a, b)
        worst = probabilistic_violation(k, a, b)
        assert worst is not None
        assert worst[1] == pytest.approx(0.25)

    def test_loss_is_allowed(self):
        """The paper's headline flexibility: confidence loss is not a breach."""
        space = HypercubeSpace(2)
        a = space.coordinate_set(1)
        b = ~space.coordinate_set(1) | space.coordinate_set(2)
        priors = [
            Distribution(space, [0.25, 0.25, 0.25, 0.25]),
            Distribution(space, [0.1, 0.6, 0.1, 0.2]),
            Distribution(space, [0.05, 0.05, 0.45, 0.45]),
        ]
        k = ProbabilisticKnowledge.product(space.full, priors)
        assert safe_probabilistic(k, a, b)

    def test_prop_3_6_matches_definition(self):
        """Safe_{C,Π} (Prop 3.6) agrees with Def 3.4 on the product C ⊗ Π."""
        rng = np.random.default_rng(7)
        space = WorldSpace(4)
        family = [Distribution.random(space, rng) for _ in range(8)]
        candidates = space.property_set([0, 3])
        k = ProbabilisticKnowledge.product(candidates, family)
        for a in all_subsets(space):
            for b in all_subsets(space):
                if not (b & candidates):
                    continue
                assert safe_c_pi(candidates, family, a, b) == safe_probabilistic(
                    k, a, b
                ), (a, b)

    def test_safety_gap_identity(self):
        """P[A]P[B] − P[AB] = P[AB̄]P[ĀB] − P[AB]P[ĀB̄] (the cancellation identity)."""
        rng = np.random.default_rng(3)
        space = WorldSpace(8)
        for _ in range(25):
            d = Distribution.random(space, rng)
            a = space.property_set([0, 2, 4, 6])
            b = space.property_set([1, 2, 5, 6])
            lhs = safety_gap(d, a, b)
            rhs = d.prob(a & ~b) * d.prob(~a & b) - d.prob(a & b) * d.prob(~a & ~b)
            assert lhs == pytest.approx(rhs, abs=1e-12)

    def test_safe_pi_full_support_family(self):
        space = WorldSpace(3)
        family = [Distribution.uniform(space)]
        a = space.property_set([0])
        b = space.property_set([0, 1])
        assert not safe_pi(family, a, b)
        assert safe_pi(family, a, ~a | b)  # a superset of Ā keeps gap ≥ 0? verified below

    def test_safe_pi_disjoint_is_safe(self):
        space = WorldSpace(3)
        family = [Distribution.uniform(space)]
        a = space.property_set([0])
        b = space.property_set([1, 2])
        assert safe_pi(family, a, b)


class TestTheorem311:
    """Theorem 3.11 validated by exhaustive brute force on small spaces."""

    @pytest.mark.parametrize("size", [2, 3, 4])
    def test_possibilistic_unrestricted(self, size):
        space = WorldSpace(size)
        k = PossibilisticKnowledge.full(space)
        for a in all_subsets(space):
            for b in all_subsets(space):
                if not b:
                    continue
                expected = safe_unrestricted(a, b)
                assert safe_possibilistic(k, a, b) == expected, (a, b)

    @pytest.mark.parametrize("size", [2, 3])
    def test_known_world_possibilistic(self, size):
        space = WorldSpace(size)
        for omega in space.worlds():
            k = PossibilisticKnowledge.known_world(space, omega)
            for a in all_subsets(space):
                for b in all_subsets(space):
                    if omega not in b:
                        continue
                    expected = safe_unrestricted_known_world(a, b, omega)
                    assert safe_possibilistic(k, a, b) == expected, (a, b, omega)

    def test_probabilistic_violating_prior_exists(self):
        """Direct construction: when Thm 3.11's condition fails, some prior violates.

        Failing both disjuncts gives A∩B ≠ ∅ and a world outside A∪B; the
        half-half prior on one world of each strictly gains confidence.
        """
        space = WorldSpace(4)
        found_cases = 0
        for a in all_subsets(space):
            for b in all_subsets(space):
                if not b or safe_unrestricted(a, b):
                    continue
                assert (a & b) and ~(a | b)
                x = min(a & b)
                y = min(~(a | b))
                prior = Distribution.from_mapping(space, {x: 0.5, y: 0.5})
                # ω* = x ∈ B with P(x) > 0: a consistent knowledge world.
                gain = prior.conditional_prob(a, b) - prior.prob(a)
                assert gain > 0, (a, b)
                found_cases += 1
        assert found_cases > 0

    def test_probabilistic_safe_direction(self):
        """When Thm 3.11's condition holds, random priors never violate."""
        rng = np.random.default_rng(11)
        space = WorldSpace(4)
        priors = [Distribution.random(space, rng) for _ in range(10)]
        for a in all_subsets(space):
            for b in all_subsets(space):
                if not b or not safe_unrestricted(a, b):
                    continue
                for prior in priors:
                    if prior.prob(b) <= 0:
                        continue
                    gain = prior.conditional_prob(a, b) - prior.prob(a)
                    assert gain <= 1e-12, (a, b)

    def test_remark_3_12(self):
        """For ω* ∈ A∩B privacy reduces to checking A ∪ B = Ω."""
        space = WorldSpace(3)
        a = space.property_set([0, 1])
        b = space.property_set([0, 2])
        assert unconditionally_private(a, b, 0)  # A ∪ B = Ω here
        b_small = space.property_set([0])
        assert not unconditionally_private(a, b_small, 0)
        with pytest.raises(ValueError):
            unconditionally_private(a, b, 2)  # 2 ∉ A∩B

    def test_actual_world_must_satisfy_b(self):
        space = WorldSpace(3)
        a = space.property_set([0])
        b = space.property_set([1])
        with pytest.raises(ValueError):
            safe_unrestricted_known_world(a, b, 0)

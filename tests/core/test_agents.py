"""Tests for possibilistic and probabilistic agents."""

from __future__ import annotations

import pytest

from repro.core import (
    Distribution,
    HypercubeSpace,
    PossibilisticAgent,
    ProbabilisticAgent,
    WorldSpace,
)
from repro.exceptions import InconsistentKnowledgeError


class TestPossibilisticAgent:
    def test_knows_iff_subset(self):
        space = WorldSpace(4)
        agent = PossibilisticAgent(space.property_set([1, 2]))
        assert agent.knows(space.property_set([0, 1, 2]))
        assert not agent.knows(space.property_set([1]))

    def test_considers_possible(self):
        space = WorldSpace(4)
        agent = PossibilisticAgent(space.property_set([1, 2]))
        assert agent.considers_possible(space.property_set([2, 3]))
        assert not agent.considers_possible(space.property_set([0, 3]))

    def test_empty_knowledge_rejected(self):
        with pytest.raises(InconsistentKnowledgeError):
            PossibilisticAgent(WorldSpace(2).empty)

    def test_learn_intersects(self):
        space = WorldSpace(5)
        agent = PossibilisticAgent(space.property_set([0, 1, 2, 3]))
        learned = agent.learn(space.property_set([2, 3, 4]))
        assert learned.knowledge == space.property_set([2, 3])
        # Original agent is unchanged (immutability).
        assert agent.knowledge == space.property_set([0, 1, 2, 3])

    def test_learn_contradiction_rejected(self):
        space = WorldSpace(3)
        agent = PossibilisticAgent(space.property_set([0]))
        with pytest.raises(InconsistentKnowledgeError):
            agent.learn(space.property_set([1, 2]))

    def test_two_grades_of_confidence(self):
        """Section 3.1: a possibilistic agent either knows A or does not."""
        space = WorldSpace(4)
        a = space.property_set([0, 1])
        b = space.property_set([0, 2])  # learning B here reveals A
        agent = PossibilisticAgent(space.property_set([0, 3]))
        assert not agent.knows(a)
        assert agent.learn(b).knows(a)

    def test_collusion_intersects_knowledge(self):
        """Section 4.1: colluders jointly rule out what either rules out."""
        space = WorldSpace(5)
        alice = PossibilisticAgent(space.property_set([0, 1, 2]), "alice")
        mallory = PossibilisticAgent(space.property_set([1, 2, 3]), "mallory")
        joint = alice.collude(mallory)
        assert joint.knowledge == space.property_set([1, 2])
        assert "alice" in joint.name and "mallory" in joint.name

    def test_contradictory_collusion_rejected(self):
        space = WorldSpace(4)
        a = PossibilisticAgent(space.property_set([0]))
        b = PossibilisticAgent(space.property_set([1]))
        with pytest.raises(InconsistentKnowledgeError):
            a.collude(b)

    def test_is_consistent_with(self):
        space = WorldSpace(3)
        agent = PossibilisticAgent(space.property_set([1]))
        assert agent.is_consistent_with(1)
        assert not agent.is_consistent_with(0)


class TestProbabilisticAgent:
    def test_confidence_is_probability(self):
        space = WorldSpace(4)
        agent = ProbabilisticAgent(Distribution(space, [0.1, 0.2, 0.3, 0.4]))
        assert agent.confidence(space.property_set([2, 3])) == pytest.approx(0.7)

    def test_knows_iff_certain(self):
        space = WorldSpace(3)
        agent = ProbabilisticAgent(Distribution(space, [0.5, 0.5, 0.0]))
        assert agent.knows(space.property_set([0, 1]))
        assert not agent.knows(space.property_set([0]))

    def test_considers_possible(self):
        space = WorldSpace(3)
        agent = ProbabilisticAgent(Distribution(space, [0.5, 0.5, 0.0]))
        assert agent.considers_possible(space.property_set([0]))
        assert not agent.considers_possible(space.property_set([2]))

    def test_learn_conditions(self):
        space = WorldSpace(4)
        agent = ProbabilisticAgent(Distribution.uniform(space))
        learned = agent.learn(space.property_set([0, 1]))
        assert learned.confidence(space.property_set([0])) == pytest.approx(0.5)
        assert learned.confidence(space.property_set([2])) == 0.0

    def test_confidence_gain_hiv_example(self):
        """The §1.1 table: learning "HIV ⇒ transfusion" cannot raise P[HIV]."""
        space = HypercubeSpace(2)  # bit 1 = r1 (HIV), bit 2 = r2 (transfusion)
        a = space.coordinate_set(1)
        b = ~space.coordinate_set(1) | space.coordinate_set(2)
        # Any prior with full support works; pick a lopsided one.
        prior = Distribution(space, [0.4, 0.3, 0.2, 0.1])
        agent = ProbabilisticAgent(prior)
        assert agent.confidence_gain(a, b) <= 1e-12

    def test_confidence_gain_positive_case(self):
        space = WorldSpace(4)
        agent = ProbabilisticAgent(Distribution.uniform(space))
        a = space.property_set([0])
        b = space.property_set([0, 1])
        assert agent.confidence_gain(a, b) == pytest.approx(0.25)

    def test_possibilistic_shadow(self):
        space = WorldSpace(4)
        agent = ProbabilisticAgent(Distribution(space, [0.5, 0.0, 0.5, 0.0]))
        shadow = agent.possibilistic_shadow()
        assert shadow.knowledge == space.property_set([0, 2])

    def test_is_consistent_with(self):
        space = WorldSpace(2)
        agent = ProbabilisticAgent(Distribution(space, [1.0, 0.0]))
        assert agent.is_consistent_with(0)
        assert not agent.is_consistent_with(1)

"""Tests for knowledge worlds and second-level knowledge sets (Section 2)."""

from __future__ import annotations

import pytest

from repro.core import (
    Distribution,
    PossibilisticKnowledge,
    PossibilisticKnowledgeWorld,
    ProbabilisticKnowledge,
    ProbabilisticKnowledgeWorld,
    WorldSpace,
    power_set,
)
from repro.exceptions import EmptyKnowledgeError, InconsistentKnowledgeError


class TestKnowledgeWorlds:
    def test_consistency_enforced_possibilistic(self):
        """Remark 2.3: every agent considers the actual world possible."""
        space = WorldSpace(3)
        PossibilisticKnowledgeWorld(1, space.property_set([0, 1]))  # fine
        with pytest.raises(InconsistentKnowledgeError):
            PossibilisticKnowledgeWorld(2, space.property_set([0, 1]))

    def test_consistency_enforced_probabilistic(self):
        space = WorldSpace(3)
        d = Distribution(space, [0.5, 0.5, 0.0])
        ProbabilisticKnowledgeWorld(0, d)  # fine
        with pytest.raises(InconsistentKnowledgeError):
            ProbabilisticKnowledgeWorld(2, d)

    def test_probabilistic_shadow_consistency(self):
        """(ω, P) is consistent iff (ω, supp(P)) is (Remark 2.3)."""
        space = WorldSpace(3)
        d = Distribution(space, [0.5, 0.5, 0.0])
        pair = ProbabilisticKnowledgeWorld(1, d)
        shadow = pair.possibilistic_shadow()
        assert shadow.world == 1
        assert shadow.knowledge == space.property_set([0, 1])


class TestPossibilisticKnowledge:
    def test_empty_rejected(self):
        with pytest.raises(EmptyKnowledgeError):
            PossibilisticKnowledge(WorldSpace(2), [])

    def test_product_drops_inconsistent_pairs(self):
        """Definition 2.5: C ⊗ Σ = (C × Σ) ∩ Ω_poss."""
        space = WorldSpace(3)
        candidates = space.property_set([0, 1])
        sigma = [space.property_set([0]), space.property_set([1, 2])]
        k = PossibilisticKnowledge.product(candidates, sigma)
        pairs = {(p.world, p.knowledge.members) for p in k}
        assert pairs == {
            (0, frozenset([0])),
            (1, frozenset([1, 2])),
        }

    def test_inconsistent_product_rejected(self):
        space = WorldSpace(3)
        with pytest.raises(EmptyKnowledgeError):
            PossibilisticKnowledge.product(
                space.property_set([0]), [space.property_set([1])]
            )

    def test_full_enumerates_omega_poss(self):
        space = WorldSpace(3)
        k = PossibilisticKnowledge.full(space)
        # |Ω_poss| = Σ_ω #{S : ω ∈ S} = 3 · 2² = 12.
        assert len(k) == 12
        assert all(pair.world in pair.knowledge for pair in k)

    def test_known_world(self):
        space = WorldSpace(3)
        k = PossibilisticKnowledge.known_world(space, 1)
        assert k.worlds() == space.property_set([1])
        assert len(k) == 4  # subsets of Ω containing world 1

    def test_projections(self):
        space = WorldSpace(3)
        k = PossibilisticKnowledge.from_tuples(
            space, [(0, [0, 1]), (1, [0, 1]), (2, [2])]
        )
        assert k.worlds() == space.property_set([0, 1, 2])
        assert len(k.knowledge_sets()) == 2

    def test_restrict(self):
        space = WorldSpace(3)
        k = PossibilisticKnowledge.full(space)
        smaller = k.restrict(lambda pair: pair.world == 0)
        assert smaller.worlds() == space.property_set([0])
        assert len(smaller) == 4


class TestIntersectionClosure:
    def test_power_set_product_is_closed(self):
        space = WorldSpace(3)
        k = PossibilisticKnowledge.full(space)
        assert k.is_intersection_closed()

    def test_detects_open_family(self):
        space = WorldSpace(3)
        # {0,1} and {1,2} both paired with world 1, but {1} missing.
        k = PossibilisticKnowledge.from_tuples(
            space, [(1, [0, 1]), (1, [1, 2])]
        )
        assert not k.is_intersection_closed()

    def test_closure_adds_missing_meets(self):
        space = WorldSpace(3)
        k = PossibilisticKnowledge.from_tuples(space, [(1, [0, 1]), (1, [1, 2])])
        closed = k.intersection_closure()
        assert closed.is_intersection_closed()
        assert PossibilisticKnowledgeWorld(1, space.property_set([1])) in closed
        # Closure is minimal: only the one missing meet is added.
        assert len(closed) == 3

    def test_closure_idempotent(self):
        space = WorldSpace(4)
        k = PossibilisticKnowledge.from_tuples(
            space, [(0, [0, 1, 2]), (0, [0, 2, 3]), (0, [0, 1, 3])]
        )
        once = k.intersection_closure()
        assert once.intersection_closure() == once

    def test_different_worlds_not_intersected(self):
        """Def 4.3 only intersects sets paired with the same world."""
        space = WorldSpace(4)
        k = PossibilisticKnowledge.from_tuples(space, [(0, [0, 1]), (1, [1, 2])])
        assert k.is_intersection_closed()

    def test_require_raises(self):
        from repro.exceptions import NotIntersectionClosedError

        space = WorldSpace(3)
        k = PossibilisticKnowledge.from_tuples(space, [(1, [0, 1]), (1, [1, 2])])
        with pytest.raises(NotIntersectionClosedError):
            k.require_intersection_closed()


class TestProbabilisticKnowledge:
    def test_product_drops_zero_mass_worlds(self):
        space = WorldSpace(3)
        d = Distribution(space, [0.5, 0.5, 0.0])
        k = ProbabilisticKnowledge.product(space.full, [d])
        assert len(k) == 2  # worlds 0 and 1 only

    def test_empty_rejected(self):
        space = WorldSpace(2)
        with pytest.raises(EmptyKnowledgeError):
            ProbabilisticKnowledge(space, [])

    def test_shadow(self):
        space = WorldSpace(3)
        d = Distribution(space, [0.5, 0.5, 0.0])
        k = ProbabilisticKnowledge.product(space.full, [d])
        shadow = k.possibilistic_shadow()
        assert all(pair.knowledge == space.property_set([0, 1]) for pair in shadow)


class TestPowerSet:
    def test_counts_nonempty_subsets(self):
        assert len(power_set(WorldSpace(3))) == 7

    def test_guard_against_explosion(self):
        with pytest.raises(ValueError):
            power_set(WorldSpace(40))

"""Tests for the JSON scenario loader and the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.audit import OfflineAuditor, PriorAssumption
from repro.exceptions import ParseError, QueryError
from repro.io import Scenario, example_scenario_document, load_scenario


class TestLoadScenario:
    def test_example_document_loads(self):
        scenario = load_scenario(example_scenario_document())
        assert isinstance(scenario, Scenario)
        assert scenario.universe.space.n == 2
        assert len(scenario.log) == 3
        assert scenario.policy.assumption is PriorAssumption.PRODUCT

    def test_loads_from_json_string(self):
        text = json.dumps(example_scenario_document())
        scenario = load_scenario(text)
        assert scenario.policy.name == "bob-hiv-leak"

    def test_loads_from_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(example_scenario_document()))
        scenario = load_scenario(path)
        assert len(scenario.universe.candidates) == 2

    def test_hypothetical_records(self):
        document = example_scenario_document()
        document["records"].append(
            {
                "table": "facts",
                "values": {"patient": "Eve", "kind": "hiv_positive"},
                "present": False,
            }
        )
        scenario = load_scenario(document)
        assert scenario.universe.space.n == 3
        assert len(scenario.database.all_records()) == 2  # Eve not inserted

    def test_audit_result_matches_direct_construction(self):
        scenario = load_scenario(example_scenario_document())
        report = OfflineAuditor(scenario.universe, scenario.policy).audit_log(
            scenario.log
        )
        assert report.suspicious_users == ("mallory",)

    def test_missing_sections_rejected(self):
        with pytest.raises(QueryError):
            load_scenario({"tables": {}, "records": []})  # no policy

    def test_unknown_column_type_rejected(self):
        document = example_scenario_document()
        document["tables"]["facts"]["patient"] = "varchar"
        with pytest.raises(QueryError):
            load_scenario(document)

    def test_unknown_assumption_rejected(self):
        document = example_scenario_document()
        document["policy"]["assumption"] = "differential-privacy"
        with pytest.raises(QueryError):
            load_scenario(document)

    def test_malformed_query_rejected(self):
        document = example_scenario_document()
        document["log"][0]["query"] = "SELECT FROM WHERE"
        with pytest.raises(ParseError):
            load_scenario(document)

    def test_record_missing_table_rejected(self):
        document = example_scenario_document()
        document["records"].append({"values": {"patient": "X", "kind": "y"}})
        with pytest.raises(QueryError):
            load_scenario(document)


class TestCli:
    @pytest.fixture
    def scenario_path(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(example_scenario_document()))
        return str(path)

    def test_audit_command(self, scenario_path, capsys):
        exit_code = main(["audit", scenario_path])
        output = capsys.readouterr().out
        assert exit_code == 1  # mallory is flagged
        assert "suspicion falls on: mallory" in output

    def test_check_command_safe(self, scenario_path, capsys):
        exit_code = main([
            "check", scenario_path, "--query",
            "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'hiv_positive')"
            " IMPLIES "
            "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'transfusion')",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "SAFE" in output

    def test_check_command_unsafe(self, scenario_path, capsys):
        exit_code = main([
            "check", scenario_path, "--query",
            "EXISTS(SELECT * FROM facts WHERE patient = 'Bob' AND kind = 'hiv_positive')",
        ])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "UNSAFE" in output and "witness" in output

    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "mallory" in output

    def test_figure1_command(self, capsys):
        assert main(["figure1"]) == 0
        output = capsys.readouterr().out
        assert "(1, 1, 4, 4)" in output

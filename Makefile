PYTHON ?= python
export PYTHONPATH := src

.PHONY: test chaos-smoke bench bench-smoke bench-all

test:
	$(PYTHON) -m pytest -x -q

# Seeded chaos matrix: the fault-injection suite replayed under several
# fault schedules (including the store-write and store-sql-write sites).
# Verdicts must stay identical at every seed.
chaos-smoke:
	for seed in 0 1 2; do \
		echo "== chaos seed $$seed =="; \
		REPRO_FAULTS_SEED=$$seed $(PYTHON) -m pytest tests/runtime -x -q || exit 1; \
	done

bench:
	$(PYTHON) -m repro.perf.bench

# Down-scaled E14–E19 sanity run for CI: tiny workloads, throwaway output.
bench-smoke:
	$(PYTHON) -m repro.perf.bench --smoke --output BENCH_smoke.json

bench-all:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest -q

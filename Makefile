PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-all

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m repro.perf.bench

# Down-scaled E14/E15 sanity run for CI: tiny workloads, throwaway output.
bench-smoke:
	$(PYTHON) -m repro.perf.bench --smoke --output BENCH_smoke.json

bench-all:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest -q

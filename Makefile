PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-all

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m repro.perf.bench

bench-all:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest -q

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test chaos-smoke serve-smoke bench bench-smoke bench-all build-native

# Best-effort build of the E20 compiled kernels into src/ (optional: the
# NumPy fallback is verdict-identical when this fails or is skipped).
build-native:
	$(PYTHON) setup.py build_ext --inplace

test:
	$(PYTHON) -m pytest -x -q

# Seeded chaos matrix: the fault-injection suite replayed under several
# fault schedules (including the store-write, store-sql-write and
# native-load sites), plus the gateway chaos matrix (conn-drop,
# journal-torn-write, slow-tenant, drain-flush, and the scale-out sites:
# commit-fsync-fail crashes a group-commit round with every verdict in
# it withheld, executor-crash SIGKILLs a worker process mid-batch).
# Verdicts must stay identical at every seed.
chaos-smoke:
	for seed in 0 1 2; do \
		echo "== chaos seed $$seed =="; \
		REPRO_FAULTS_SEED=$$seed $(PYTHON) -m pytest tests/runtime tests/service -x -q || exit 1; \
	done

# End-to-end gateway smoke: boot `repro serve` on ephemeral ports, replay
# a 1k-event two-tenant trace over real sockets, SIGTERM, assert a clean
# drain with full per-tenant accounting.  A second leg reruns with
# `--workers 2` and `kill -9`s the owning executor mid-replay: every
# event must still decide, and the footer must show the restart + replay.
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

bench:
	$(PYTHON) -m repro.perf.bench

# Down-scaled E14–E20 sanity run for CI: tiny workloads, throwaway output.
bench-smoke:
	$(PYTHON) -m repro.perf.bench --smoke --output BENCH_smoke.json

bench-all:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest -q
